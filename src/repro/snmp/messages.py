"""SNMPv1 message model (RFC 1067 subset).

A :class:`Message` wraps a community string and one :class:`Pdu`; a PDU
carries a request id, error status/index and variable bindings.  Values in
bindings follow the Python mapping of :mod:`repro.asn1`: int (INTEGER /
Counter / Gauge / TimeTicks), bytes (OCTET STRING / IpAddress), ``None``
(NULL) and :class:`~repro.mib.oid.Oid` / int tuples (OBJECT IDENTIFIER).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import SnmpError
from repro.mib.oid import Oid, OidLike

SNMP_VERSION_1 = 0  # version-1 is encoded as INTEGER 0


class PduType(IntEnum):
    """Context tags of the RFC 1067 PDUs."""

    GET_REQUEST = 0
    GET_NEXT_REQUEST = 1
    GET_RESPONSE = 2
    SET_REQUEST = 3
    TRAP = 4


class ErrorStatus(IntEnum):
    """RFC 1067 error-status codes."""

    NO_ERROR = 0
    TOO_BIG = 1
    NO_SUCH_NAME = 2
    BAD_VALUE = 3
    READ_ONLY = 4
    GEN_ERR = 5


#: RFC 1067 wire names, shared by manager error messages and the
#: ``repro_snmp_*`` metric labels.
ERROR_STATUS_NAMES = {
    ErrorStatus.NO_ERROR: "noError",
    ErrorStatus.TOO_BIG: "tooBig",
    ErrorStatus.NO_SUCH_NAME: "noSuchName",
    ErrorStatus.BAD_VALUE: "badValue",
    ErrorStatus.READ_ONLY: "readOnly",
    ErrorStatus.GEN_ERR: "genErr",
}


BindValue = Union[int, bytes, None, Tuple[int, ...], Oid]


@dataclass(frozen=True)
class VarBind:
    """One (object instance, value) pair."""

    oid: Oid
    value: BindValue = None

    @classmethod
    def of(cls, oid: OidLike, value: BindValue = None) -> "VarBind":
        return cls(Oid(oid), value)


@dataclass
class Pdu:
    """A request/response PDU."""

    pdu_type: PduType
    request_id: int
    error_status: ErrorStatus = ErrorStatus.NO_ERROR
    error_index: int = 0
    bindings: Tuple[VarBind, ...] = ()

    def oids(self) -> Tuple[Oid, ...]:
        return tuple(binding.oid for binding in self.bindings)

    def is_response(self) -> bool:
        return self.pdu_type == PduType.GET_RESPONSE

    def response(
        self,
        bindings: Optional[Sequence[VarBind]] = None,
        error_status: ErrorStatus = ErrorStatus.NO_ERROR,
        error_index: int = 0,
    ) -> "Pdu":
        """Build the GetResponse answering this request.

        On error, RFC 1067 echoes the request's bindings unchanged.
        """
        if error_status != ErrorStatus.NO_ERROR or bindings is None:
            bindings = self.bindings
        return Pdu(
            pdu_type=PduType.GET_RESPONSE,
            request_id=self.request_id,
            error_status=error_status,
            error_index=error_index,
            bindings=tuple(bindings),
        )


class GenericTrap(IntEnum):
    """RFC 1067 generic-trap codes."""

    COLD_START = 0
    WARM_START = 1
    LINK_DOWN = 2
    LINK_UP = 3
    AUTHENTICATION_FAILURE = 4
    EGP_NEIGHBOR_LOSS = 5
    ENTERPRISE_SPECIFIC = 6


@dataclass
class TrapPdu:
    """The Trap-PDU (RFC 1067): unsolicited agent-to-manager notification.

    Structurally different from the request/response PDUs: it carries the
    agent's enterprise OID and address, the trap codes and a timestamp
    instead of a request id.
    """

    enterprise: Oid
    agent_addr: bytes  # 4-octet IpAddress
    generic_trap: GenericTrap
    specific_trap: int = 0
    time_stamp: int = 0  # TimeTicks
    bindings: Tuple[VarBind, ...] = ()

    def __post_init__(self):
        if len(self.agent_addr) != 4:
            raise SnmpError("trap agent-addr must be 4 octets")


@dataclass
class Message:
    """A community-authenticated SNMP message (request/response or trap)."""

    community: str
    pdu: Union[Pdu, TrapPdu]
    version: int = SNMP_VERSION_1

    def __post_init__(self):
        if self.version != SNMP_VERSION_1:
            raise SnmpError(f"unsupported SNMP version {self.version}")

    def is_trap(self) -> bool:
        return isinstance(self.pdu, TrapPdu)

    @classmethod
    def trap(
        cls,
        community: str,
        enterprise: OidLike,
        agent_addr: bytes,
        generic_trap: GenericTrap,
        specific_trap: int = 0,
        time_stamp: int = 0,
        bindings: Sequence[VarBind] = (),
    ) -> "Message":
        return cls(
            community,
            TrapPdu(
                enterprise=Oid(enterprise),
                agent_addr=agent_addr,
                generic_trap=generic_trap,
                specific_trap=specific_trap,
                time_stamp=time_stamp,
                bindings=tuple(bindings),
            ),
        )

    @classmethod
    def get(
        cls, community: str, request_id: int, oids: Sequence[OidLike]
    ) -> "Message":
        return cls(
            community,
            Pdu(
                PduType.GET_REQUEST,
                request_id,
                bindings=tuple(VarBind.of(oid) for oid in oids),
            ),
        )

    @classmethod
    def get_next(
        cls, community: str, request_id: int, oids: Sequence[OidLike]
    ) -> "Message":
        return cls(
            community,
            Pdu(
                PduType.GET_NEXT_REQUEST,
                request_id,
                bindings=tuple(VarBind.of(oid) for oid in oids),
            ),
        )

    @classmethod
    def set(
        cls,
        community: str,
        request_id: int,
        assignments: Sequence[Tuple[OidLike, BindValue]],
    ) -> "Message":
        return cls(
            community,
            Pdu(
                PduType.SET_REQUEST,
                request_id,
                bindings=tuple(
                    VarBind.of(oid, value) for oid, value in assignments
                ),
            ),
        )
