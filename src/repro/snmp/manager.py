"""The SNMP manager side: request building, response matching, walks.

A manager is transport-agnostic: it hands encoded request octets to a
``send`` callable (supplied by the test, or by the network simulator) and
decodes what comes back.  ``walk`` implements the classic get-next sweep
of a subtree.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import SnmpError
from repro.mib.oid import Oid, OidLike
from repro.snmp.codec import decode_message, encode_message
from repro.snmp.messages import (
    ERROR_STATUS_NAMES,
    BindValue,
    ErrorStatus,
    Message,
    PduType,
    VarBind,
)

#: The transport: request octets in, response octets out.
SendFunction = Callable[[bytes], bytes]


@dataclass
class WalkResult:
    """All bindings collected by a subtree walk."""

    prefix: Oid
    bindings: Tuple[VarBind, ...]
    requests_sent: int

    def values(self) -> dict:
        return {str(binding.oid): binding.value for binding in self.bindings}


class SnmpManager:
    """A management client bound to one community and transport."""

    def __init__(self, community: str, send: SendFunction):
        self._community = community
        self._send = send
        self._request_ids = itertools.count(1)
        self.requests_sent = 0
        self.errors_received = 0

    # ------------------------------------------------------------------
    # Primitive operations.
    # ------------------------------------------------------------------
    def get(self, oids: Sequence[OidLike]) -> Tuple[VarBind, ...]:
        """GetRequest; raises SnmpError on any error-status."""
        message = Message.get(self._community, next(self._request_ids), oids)
        response = self._exchange(message)
        return response.pdu.bindings

    def get_one(self, oid: OidLike) -> BindValue:
        (binding,) = self.get([oid])
        return binding.value

    def get_next(self, oids: Sequence[OidLike]) -> Tuple[VarBind, ...]:
        message = Message.get_next(self._community, next(self._request_ids), oids)
        response = self._exchange(message)
        return response.pdu.bindings

    def set(
        self, assignments: Sequence[Tuple[OidLike, BindValue]]
    ) -> Tuple[VarBind, ...]:
        message = Message.set(self._community, next(self._request_ids), assignments)
        response = self._exchange(message)
        return response.pdu.bindings

    # ------------------------------------------------------------------
    # Composite operations.
    # ------------------------------------------------------------------
    def walk(self, prefix: OidLike, max_steps: int = 100_000) -> WalkResult:
        """Walk all instances under *prefix* with repeated get-next."""
        prefix = Oid(prefix)
        collected: List[VarBind] = []
        current = prefix
        sent = 0
        for _step in range(max_steps):
            message = Message.get_next(
                self._community, next(self._request_ids), [current]
            )
            sent += 1
            try:
                response = self._exchange(message)
            except SnmpError as exc:
                if "noSuchName" in str(exc):
                    break  # walked off the end of the MIB
                raise
            (binding,) = response.pdu.bindings
            if not binding.oid.starts_with(prefix):
                break
            collected.append(binding)
            current = binding.oid
        return WalkResult(prefix, tuple(collected), sent)

    # ------------------------------------------------------------------
    # Exchange plumbing.
    # ------------------------------------------------------------------
    def _exchange(self, message: Message) -> Message:
        self.requests_sent += 1
        o = obs.current()
        if o.enabled:
            o.counter(
                "repro_snmp_manager_requests_total",
                "requests sent by managers, by request type",
                type=message.pdu.pdu_type.name,
            ).inc()
        response = decode_message(self._send(encode_message(message)))
        pdu = response.pdu
        if pdu.pdu_type != PduType.GET_RESPONSE:
            raise SnmpError(f"expected a GetResponse, got {pdu.pdu_type.name}")
        if pdu.request_id != message.pdu.request_id:
            raise SnmpError(
                f"response id {pdu.request_id} does not match request "
                f"{message.pdu.request_id}"
            )
        if pdu.error_status != ErrorStatus.NO_ERROR:
            self.errors_received += 1
            if o.enabled:
                o.counter(
                    "repro_snmp_manager_errors_total",
                    "error responses received by managers, by error-status",
                    status=ERROR_STATUS_NAMES[pdu.error_status],
                ).inc()
            raise SnmpError(
                f"agent returned {ERROR_STATUS_NAMES[pdu.error_status]} "
                f"(index {pdu.error_index})"
            )
        return response
