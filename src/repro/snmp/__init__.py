"""SNMP substrate: a faithful SNMPv1 subset (RFC 1067) over BER.

The prescriptive aspect needs a real management protocol to ship and
enforce configuration ("standard management protocols ... can be used to
incorporate the configuration information into running management
processes").  This package provides:

* :mod:`repro.snmp.messages` — the message model (GetRequest,
  GetNextRequest, GetResponse, SetRequest; error-status codes);
* :mod:`repro.snmp.codec` — BER wire encoding built on
  :mod:`repro.asn1.ber`, tag-compatible with RFC 1067;
* :mod:`repro.snmp.community` — community-based access policy, parsed
  from the ``BartsSnmpd`` configuration the NMSL compiler generates —
  views, access modes, and the NMSL frequency bound as a per-community
  minimum inter-request interval;
* :mod:`repro.snmp.agent` — an agent serving an
  :class:`~repro.mib.instances.InstanceStore` under a policy;
* :mod:`repro.snmp.manager` — a client that builds requests, matches
  responses and walks tables.
"""

from repro.snmp.messages import (
    ErrorStatus,
    GenericTrap,
    Message,
    PduType,
    SNMP_VERSION_1,
    Pdu,
    TrapPdu,
    VarBind,
)
from repro.snmp.codec import decode_message, encode_message
from repro.snmp.community import CommunityGrant, CommunityPolicy
from repro.snmp.agent import NMSL_ENTERPRISE, SnmpAgent
from repro.snmp.manager import SnmpManager, WalkResult

__all__ = [
    "CommunityGrant",
    "CommunityPolicy",
    "ErrorStatus",
    "GenericTrap",
    "Message",
    "NMSL_ENTERPRISE",
    "Pdu",
    "PduType",
    "SNMP_VERSION_1",
    "SnmpAgent",
    "SnmpManager",
    "TrapPdu",
    "VarBind",
    "WalkResult",
    "decode_message",
    "encode_message",
]
