"""Frequency specifications and their interval semantics.

The grammar (paper Figure 4.3)::

    Freq      ::= BoundSpec Float TimeSpec | "infrequent"
    BoundSpec ::= "<" | "<=" | "=" | ">=" | EMPTY     (paper also lists ">")
    TimeSpec  ::= "hours" | "minutes" | "seconds"

A frequency constrains the *inter-arrival period* of queries in seconds.
``frequency >= 5 minutes`` means successive queries are at least 300
seconds apart.  ``infrequent`` is modelled as a large minimum period
(:data:`INFREQUENT_PERIOD_SECONDS`).

Semantics as intervals over the period ``T``:

=================  ==========================
written form       period interval
=================  ==========================
``>= v``           ``[v, inf)``
``> v``            ``(v, inf)``  (kept as ``[v, inf)`` — dense time)
``= v``            ``[v, v]``
``<= v``           ``(0, v]``
``< v``            ``(0, v]``
``infrequent``     ``[3600, inf)``
EMPTY              ``(0, inf)`` (unconstrained)
=================  ==========================

Consistency (used by :mod:`repro.consistency`): a *reference* promising
period interval ``R`` is covered by a *permission* requiring interval ``P``
iff ``R`` is a subset of ``P`` — the client can never query more often than
the server allows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import NmslSemanticError, SourceLocation

#: Seconds per time unit keyword.
TIME_UNITS = {"seconds": 1.0, "minutes": 60.0, "hours": 3600.0}

#: The period assigned to ``frequency infrequent`` (one hour).
INFREQUENT_PERIOD_SECONDS = 3600.0

_BOUND_OPS = ("<", "<=", "=", ">=", ">")


@dataclass(frozen=True)
class FrequencySpec:
    """A frequency clause, normalised to a period interval in seconds.

    ``min_period``/``max_period`` bound the inter-query period; ``None``
    max means unbounded above.  ``source`` preserves the written form for
    reporting.
    """

    min_period: float
    max_period: Optional[float]
    source: str = ""

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------
    @classmethod
    def unconstrained(cls) -> "FrequencySpec":
        return cls(0.0, None, "")

    @classmethod
    def infrequent(cls) -> "FrequencySpec":
        return cls(INFREQUENT_PERIOD_SECONDS, None, "infrequent")

    @classmethod
    def at_most_every(cls, seconds: float) -> "FrequencySpec":
        """Queries no more often than once per *seconds* (period >= s)."""
        return cls(float(seconds), None, f">= {seconds:g} seconds")

    @classmethod
    def exactly_every(cls, seconds: float) -> "FrequencySpec":
        return cls(float(seconds), float(seconds), f"= {seconds:g} seconds")

    @classmethod
    def at_least_every(cls, seconds: float) -> "FrequencySpec":
        """Queries at least once per *seconds* (period <= s)."""
        return cls(0.0, float(seconds), f"<= {seconds:g} seconds")

    @classmethod
    def from_clause(
        cls,
        op: str,
        value: float,
        unit: str,
        location: Optional[SourceLocation] = None,
    ) -> "FrequencySpec":
        """Build from grammar pieces ``BoundSpec Float TimeSpec``.

        *location*, when given, anchors any :class:`NmslSemanticError` at
        the offending token instead of the default ``<input>:1:1``.
        """
        if unit not in TIME_UNITS:
            raise NmslSemanticError(f"unknown time unit {unit!r}", location)
        if value <= 0:
            raise NmslSemanticError(
                f"frequency value must be positive, got {value}", location
            )
        seconds = value * TIME_UNITS[unit]
        source = f"{op + ' ' if op else ''}{value:g} {unit}"
        if op in (">=", ">"):
            return cls(seconds, None, source)
        if op == "=":
            return cls(seconds, seconds, source)
        if op in ("<=", "<"):
            return cls(0.0, seconds, source)
        if op == "":
            return cls(seconds, seconds, source)  # bare value reads as "="
        raise NmslSemanticError(f"unknown frequency bound {op!r}", location)

    # ------------------------------------------------------------------
    # Interval algebra.
    # ------------------------------------------------------------------
    def is_unconstrained(self) -> bool:
        return self.min_period == 0.0 and self.max_period is None

    def covered_by(self, permission: "FrequencySpec") -> bool:
        """Is this (reference) interval a subset of *permission*'s?"""
        if self.min_period < permission.min_period:
            return False
        if permission.max_period is None:
            return True
        if self.max_period is None:
            return False
        return self.max_period <= permission.max_period

    def intersect(self, other: "FrequencySpec") -> Optional["FrequencySpec"]:
        """The tightest interval satisfying both, or None if empty."""
        low = max(self.min_period, other.min_period)
        highs = [h for h in (self.max_period, other.max_period) if h is not None]
        high = min(highs) if highs else None
        if high is not None and low > high:
            return None
        source = " and ".join(s for s in (self.source, other.source) if s)
        return FrequencySpec(low, high, source)

    def max_rate_per_second(self) -> float:
        """The highest query rate this interval permits (1/min_period)."""
        if self.min_period <= 0:
            return math.inf
        return 1.0 / self.min_period

    def describe(self) -> str:
        if self.source:
            return f"frequency {self.source}"
        if self.is_unconstrained():
            return "frequency unconstrained"
        if self.max_period is None:
            return f"period >= {self.min_period:g}s"
        if self.min_period == self.max_period:
            return f"period = {self.min_period:g}s"
        if self.min_period == 0:
            return f"period <= {self.max_period:g}s"
        return f"period in [{self.min_period:g}s, {self.max_period:g}s]"

    def as_tuple(self) -> Tuple[float, Optional[float]]:
        return (self.min_period, self.max_period)
