"""Tokenizer for NMSL specifications.

Token kinds (paper Section 4.1.1: "Tokens are separated by white space or
special character sequences like ``::=`` or ``;``"):

* ``WORD`` — keywords, names and dotted paths (``process``, ``snmpaddr``,
  ``mgmt.mib.ip``, ``wisc-research``, ``4.0.1``).  A word may contain dots,
  hyphens and underscores; a *trailing* dot is split off as ``PERIOD``
  because a period ends a specification (``end type ipAddrTable.``).
* ``STRING`` — double-quoted (``"romano.cs.wisc.edu"``).
* ``NUMBER`` — integer or decimal literal.
* ``PUNCT`` — ``::=  :=  ;  ,  (  )  :  <=  >=  <  >  =  *``.
* ``PERIOD`` — the specification terminator ``.``.

Comments run from ``--`` to end of line.  Tokens carry source offsets so
raw text spans (ASN.1 bodies) can be recovered exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import NmslSyntaxError, SourceLocation

WORD = "WORD"
STRING = "STRING"
NUMBER = "NUMBER"
PUNCT = "PUNCT"
PERIOD = "PERIOD"
EOF = "EOF"

_MULTI_PUNCT = ("::=", ":=", "<=", ">=")
_SINGLE_PUNCT = ";,():<>=*{}[]|"
_WORD_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")


@dataclass(frozen=True)
class NmslToken:
    """One lexical token with location and raw-text offsets."""

    kind: str
    text: str
    location: SourceLocation
    start: int = 0
    end: int = 0

    def matches(self, kind: str, text: str | None = None) -> bool:
        if self.kind != kind:
            return False
        return text is None or self.text == text

    def is_word(self, text: str | None = None) -> bool:
        return self.matches(WORD, text)


class NmslLexer:
    """Streaming tokenizer over NMSL source text."""

    def __init__(self, text: str, filename: str = "<nmsl>"):
        self.text = text
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1

    def _location(self) -> SourceLocation:
        return SourceLocation(self._filename, self._line, self._col)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self.text):
                return
            if self.text[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _skip_blank(self) -> None:
        while self._pos < len(self.text):
            ch = self._peek()
            if ch.isspace():
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            else:
                return

    def tokens(self) -> Iterator[NmslToken]:
        while True:
            self._skip_blank()
            location = self._location()
            start = self._pos
            ch = self._peek()
            if not ch:
                yield NmslToken(EOF, "", location, start, start)
                return
            if ch == '"':
                yield self._lex_string(location, start)
                continue
            matched = False
            for punct in _MULTI_PUNCT:
                if self.text.startswith(punct, self._pos):
                    self._advance(len(punct))
                    yield NmslToken(PUNCT, punct, location, start, self._pos)
                    matched = True
                    break
            if matched:
                continue
            if ch == ".":
                self._advance()
                yield NmslToken(PERIOD, ".", location, start, self._pos)
                continue
            if ch in _SINGLE_PUNCT:
                self._advance()
                yield NmslToken(PUNCT, ch, location, start, self._pos)
                continue
            if ch in _WORD_CHARS:
                yield from self._lex_wordish(location, start)
                continue
            raise NmslSyntaxError(f"unexpected character {ch!r}", location)

    def _lex_string(self, location: SourceLocation, start: int) -> NmslToken:
        self._advance()  # opening quote
        content_start = self._pos
        while self._peek() and self._peek() != '"':
            if self._peek() == "\n":
                raise NmslSyntaxError("newline inside string", location)
            self._advance()
        if not self._peek():
            raise NmslSyntaxError("unterminated string", location)
        text = self.text[content_start : self._pos]
        self._advance()  # closing quote
        return NmslToken(STRING, text, location, start, self._pos)

    def _lex_wordish(self, location: SourceLocation, start: int) -> Iterator[NmslToken]:
        while self._peek() in _WORD_CHARS and self._peek():
            # "--" starts a comment even adjacent to a word.
            if self._peek() == "-" and self._peek(1) == "-":
                break
            self._advance()
        raw = self.text[start : self._pos]
        # Split trailing dots off: they terminate specifications.
        trailing = 0
        while raw.endswith("."):
            raw = raw[:-1]
            trailing += 1
        if not raw:
            # The word was entirely dots; re-emit them as PERIODs.
            for index in range(trailing):
                yield NmslToken(PERIOD, ".", location, start + index, start + index + 1)
            return
        end = start + len(raw)
        yield NmslToken(self._classify(raw), raw, location, start, end)
        for index in range(trailing):
            yield NmslToken(PERIOD, ".", location, end + index, end + index + 1)

    @staticmethod
    def _classify(raw: str) -> str:
        try:
            int(raw)
            return NUMBER
        except ValueError:
            pass
        try:
            float(raw)
            return NUMBER
        except ValueError:
            pass
        return WORD


def tokenize(text: str, filename: str = "<nmsl>") -> List[NmslToken]:
    """Tokenize *text* fully, ending with the EOF token."""
    return list(NmslLexer(text, filename).tokens())
