"""Render a typed Specification back to NMSL source text.

The inverse of compilation: useful for persisting programmatically-built
specifications (the synthetic workload generator), for diffing two
specifications, and as the round-trip invariant the property tests lean
on (``compile(render(spec))`` is semantically equal to ``spec``).

Rendering follows the paper's layout conventions: four-space clause
indentation, one clause per line, quoted names where the name contains
characters outside a plain word.
"""

from __future__ import annotations

from typing import List

from repro.mib.tree import Access
from repro.nmsl.frequency import (
    FrequencySpec,
    INFREQUENT_PERIOD_SECONDS,
    TIME_UNITS,
)
from repro.nmsl.specs import (
    DomainSpec,
    ExportSpec,
    ProcessInvocation,
    ProcessSpec,
    QuerySpec,
    Specification,
    SystemSpec,
    TypeSpec,
    WILDCARD,
)

#: Characters safe in an unquoted NMSL word.
_WORD_SAFE = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def _name(text: str) -> str:
    """Quote a name when it is not a plain word (or could lex oddly)."""
    if text and set(text) <= _WORD_SAFE and not text.endswith("."):
        return text
    return f'"{text}"'


def _frequency(frequency: FrequencySpec) -> str:
    """Render a frequency interval back to clause syntax."""
    low, high = frequency.min_period, frequency.max_period
    if frequency.is_unconstrained():
        return ""
    if low == INFREQUENT_PERIOD_SECONDS and high is None and (
        frequency.source == "infrequent"
    ):
        return "frequency infrequent"
    # Choose the largest unit that yields a whole-ish number.
    def render(seconds: float) -> str:
        for unit in ("hours", "minutes", "seconds"):
            scale = TIME_UNITS[unit]
            value = seconds / scale
            if value >= 1 and abs(value - round(value, 6)) < 1e-9:
                return f"{value:g} {unit}"
        return f"{seconds:g} seconds"

    if high is None:
        return f"frequency >= {render(low)}"
    if low == high:
        return f"frequency = {render(low)}"
    if low == 0:
        return f"frequency <= {render(high)}"
    # A genuine two-sided interval has no single-clause rendering; keep
    # the stronger lower bound (the consistency-relevant side).
    return f"frequency >= {render(low)}"


def _export_lines(export: ExportSpec) -> List[str]:
    lines = [f"    exports {', '.join(export.variables)} to \"{export.to_domain}\""]
    lines.append(f"        access {export.access.value}")
    frequency = _frequency(export.frequency)
    if frequency:
        lines.append(f"        {frequency}")
    lines[-1] += ";"
    return lines


def _query_lines(query: QuerySpec) -> List[str]:
    lines = [f"    queries {query.target}"]
    lines.append(f"        {query.kind} {', '.join(query.requests)}")
    if query.using:
        rendered = ", ".join(f"{path} := {value}" for path, value in query.using)
        lines.append(f"        using {rendered}")
    frequency = _frequency(query.frequency)
    if frequency:
        lines.append(f"        {frequency}")
    lines[-1] += ";"
    return lines


def _invocation(invocation: ProcessInvocation) -> str:
    if not invocation.args:
        return f"    process {invocation.process_name};"
    args = ", ".join(
        "*" if arg == WILDCARD else str(arg) for arg in invocation.args
    )
    return f"    process {invocation.process_name}({args});"


def render_type(spec: TypeSpec) -> str:
    """Render a type spec, regenerating the ASN.1 body from the type tree."""
    from repro.asn1.render import render_type as render_asn1

    body = render_asn1(spec.asn1_type, indent=1)
    lines = [f"type {spec.name} ::=", f"    {body};"]
    if spec.access is not None:
        lines.append(f"    access {spec.access.value};")
    lines.append(f"end type {spec.name}.")
    return "\n".join(lines)


def render_process(spec: ProcessSpec) -> str:
    header = f"process {spec.name}"
    if spec.params:
        rendered = "; ".join(f"{name}: {type_}" for name, type_ in spec.params)
        header += f"({rendered})"
    lines = [header + " ::="]
    if spec.supports:
        lines.append(f"    supports {', '.join(spec.supports)};")
    for proxy in spec.proxies:
        via = f" via {proxy.protocol}" if proxy.protocol else ""
        lines.append(f"    proxies {proxy.target_system}{via};")
    for export in spec.exports:
        lines.extend(_export_lines(export))
    for query in spec.queries:
        lines.extend(_query_lines(query))
    lines.append(f"end process {spec.name}.")
    return "\n".join(lines)


def render_system(spec: SystemSpec) -> str:
    lines = [f"system {_name(spec.name)} ::="]
    if spec.cpu:
        lines.append(f"    cpu {spec.cpu};")
    for interface in spec.interfaces:
        parts = [f"    interface {interface.name} net {interface.network}"]
        if interface.protocols:
            parts.append(f"        protocols {', '.join(interface.protocols)}")
        if interface.if_type:
            parts.append(f"        type {interface.if_type}")
        parts.append(f"        speed {interface.speed_bps} bps;")
        lines.extend(parts)
    if spec.opsys:
        lines.append(f"    opsys {spec.opsys} version {spec.opsys_version};")
    if spec.supports:
        lines.append(f"    supports {', '.join(spec.supports)};")
    for invocation in spec.processes:
        lines.append(_invocation(invocation))
    lines.append(f"end system {_name(spec.name)}.")
    return "\n".join(lines)


def render_domain(spec: DomainSpec) -> str:
    lines = [f"domain {_name(spec.name)} ::="]
    for system in spec.systems:
        lines.append(f"    system {system};")
    for subdomain in spec.subdomains:
        lines.append(f"    domain {subdomain};")
    for invocation in spec.processes:
        lines.append(_invocation(invocation))
    for export in spec.exports:
        lines.extend(_export_lines(export))
    lines.append(f"end domain {_name(spec.name)}.")
    return "\n".join(lines)


def render_specification(spec: Specification) -> str:
    """Render every declaration of the specification."""
    chunks: List[str] = []
    for type_spec in spec.types.values():
        chunks.append(render_type(type_spec))
    for process in spec.processes.values():
        chunks.append(render_process(process))
    for system in spec.systems.values():
        chunks.append(render_system(system))
    for domain in spec.domains.values():
        chunks.append(render_domain(domain))
    return "\n\n".join(chunks) + "\n"
