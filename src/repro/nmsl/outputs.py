"""Basic-language output actions: the ``consistency`` output type.

"Requesting consistency output causes the actions tagged ``consistency``
to be executed, and Prolog rules to be generated" (paper Section 6.2).
Each action renders the facts contributed by one declaration; the
``*`` epilogue action contributes whole-specification facts (the
``data_covers`` closure over mentioned MIB paths and the access-mode
lattice).

Configuration-output actions (``BartsSnmpd`` etc.) are registered by
:mod:`repro.codegen`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.consistency.facts import FactGenerator, FactSet, _atom as atom_text
from repro.nmsl.actions import OutputContext, OutputRegistry
from repro.nmsl.specs import (
    DomainSpec,
    ProcessSpec,
    Specification,
    SystemSpec,
    TypeSpec,
)

CONSISTENCY_TAG = "consistency"

#: Pseudo-decltype for whole-specification epilogue actions.
EPILOGUE = "*"


def _facts(context: OutputContext) -> FactSet:
    """The FactSet for this generation run, built once and cached."""
    cached = context.options.get("facts")
    if cached is None:
        specification = context.specification
        tree = context.options["tree"]
        cached = FactGenerator(specification, tree).generate()
        context.options["facts"] = cached
    return cached


def _select(text: str, pairs) -> str:
    """Lines matching any (prefix, needle) pair."""
    lines = []
    for line in text.splitlines():
        for prefix, needle in pairs:
            if line.startswith(prefix) and needle in line:
                lines.append(line)
                break
    return "\n".join(lines)


def consistency_type_action(context: OutputContext, spec: TypeSpec) -> Optional[str]:
    lines = [f"nm_type({atom_text(spec.name)})."]
    if spec.access is not None:
        lines.append(
            f"type_access({atom_text(spec.name)}, {spec.access.value.lower()})."
        )
    return "\n".join(lines)


def consistency_process_action(
    context: OutputContext, spec: ProcessSpec
) -> Optional[str]:
    full = _facts(context).to_clpr_text()
    name = atom_text(spec.name)
    return _select(
        full,
        (
            ("proc_supports(", f"proc_supports({name},"),
            ("proc_export(", f"proc_export({name},"),
            ("proc_query(", f"proc_query({name},"),
        ),
    )


def consistency_system_action(
    context: OutputContext, spec: SystemSpec
) -> Optional[str]:
    full = _facts(context).to_clpr_text()
    name = atom_text(spec.name)
    return _select(
        full,
        (
            ("instance(", f", {name},"),
            ("inst_arg(", f"@{spec.name}#"),
            ("system_supports(", f"system_supports({name},"),
            ("speed(", f"speed({name},"),
            ("contains(system", f"contains(system({name})"),
        ),
    )


def consistency_domain_action(
    context: OutputContext, spec: DomainSpec
) -> Optional[str]:
    full = _facts(context).to_clpr_text()
    name = atom_text(spec.name)
    return _select(
        full,
        (
            ("contains(domain", f"contains(domain({name}),"),
            ("dom_export(", f"dom_export({name},"),
        ),
    )


def consistency_epilogue_action(
    context: OutputContext, spec: Specification
) -> Optional[str]:
    full = _facts(context).to_clpr_text()
    lines = [
        line
        for line in full.splitlines()
        if line.startswith(("data_covers(", "access_covers("))
    ]
    return "\n".join(lines)


def register_base_outputs(registry: OutputRegistry) -> None:
    """Install the basic-language consistency actions."""
    registry.register(CONSISTENCY_TAG, "type", consistency_type_action)
    registry.register(CONSISTENCY_TAG, "process", consistency_process_action)
    registry.register(CONSISTENCY_TAG, "system", consistency_system_action)
    registry.register(CONSISTENCY_TAG, "domain", consistency_domain_action)
    registry.register(CONSISTENCY_TAG, EPILOGUE, consistency_epilogue_action)
