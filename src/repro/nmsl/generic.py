"""Pass 1: the generalized NMSL grammar of paper Figure 6.1.

The first compiler pass parses *any* specification matching the generic
shape — ``decltype declname [params] ::= clauses end decltype declname .``
— without attempting semantic analysis.  "Any group of tokens will be
accepted by the parsing pass, provided that the group of tokens matches the
basic format of the NMSL grammar"; differentiating the specifications and
clauses is left to pass 2 (the action tables in :mod:`repro.nmsl.actions`).

A clause is the token run up to the next ``;`` at bracket depth 0, so
ASN.1 bodies (with their own parentheses/braces) and parameterised process
invocations pass through untouched; the raw source span of every clause is
preserved for actions that re-parse it (the ASN.1 body of a type spec).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import NmslSyntaxError, SourceLocation
from repro.nmsl.lexer import (
    EOF,
    NUMBER,
    PERIOD,
    PUNCT,
    STRING,
    WORD,
    NmslLexer,
    NmslToken,
)

_OPENERS = {"(": ")", "{": "}", "[": "]"}
_CLOSERS = {")": "(", "}": "{", "]": "["}


@dataclass
class GenericClause:
    """One clause: its tokens (``;`` excluded) and exact source text."""

    tokens: List[NmslToken]
    raw_text: str
    location: SourceLocation

    def first_keyword(self) -> Optional[str]:
        if self.tokens and self.tokens[0].kind == WORD:
            return self.tokens[0].text
        return None


@dataclass
class Declaration:
    """One specification in generalized form."""

    decltype: str
    name: str
    params: List[List[NmslToken]] = field(default_factory=list)
    clauses: List[GenericClause] = field(default_factory=list)
    location: SourceLocation = field(default_factory=SourceLocation)

    def clauses_starting(self, keyword: str) -> List[GenericClause]:
        return [
            clause for clause in self.clauses if clause.first_keyword() == keyword
        ]


class GenericParser:
    """Recursive-descent parser for the Figure 6.1 grammar."""

    def __init__(self, text: str, filename: str = "<nmsl>"):
        self._text = text
        self._tokens = list(NmslLexer(text, filename).tokens())
        self._index = 0

    # ------------------------------------------------------------------
    # Token helpers.
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> NmslToken:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> NmslToken:
        token = self._peek()
        if token.kind != EOF:
            self._index += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> NmslToken:
        token = self._next()
        if not token.matches(kind, text):
            wanted = text if text is not None else kind
            raise NmslSyntaxError(
                f"expected {wanted!r}, found {token.text or token.kind!r}",
                token.location,
            )
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[NmslToken]:
        if self._peek().matches(kind, text):
            return self._next()
        return None

    def at_end(self) -> bool:
        return self._peek().kind == EOF

    # ------------------------------------------------------------------
    # Productions.
    # ------------------------------------------------------------------
    def parse_declarations(self) -> List[Declaration]:
        declarations = []
        while not self.at_end():
            declarations.append(self.parse_declaration())
        return declarations

    def parse_declaration(self) -> Declaration:
        decltype_token = self._expect(WORD)
        name_token = self._next()
        if name_token.kind not in (WORD, STRING):
            raise NmslSyntaxError(
                f"expected a declaration name, found {name_token.text!r}",
                name_token.location,
            )
        params = self._parse_declparams()
        self._expect(PUNCT, "::=")
        clauses = self._parse_clauses()
        self._expect(WORD, "end")
        end_type = self._expect(WORD)
        if end_type.text != decltype_token.text:
            raise NmslSyntaxError(
                f"'end {end_type.text}' does not match "
                f"'{decltype_token.text} {name_token.text}'",
                end_type.location,
            )
        end_name = self._next()
        if end_name.kind not in (WORD, STRING):
            raise NmslSyntaxError(
                f"expected name after 'end {end_type.text}'", end_name.location
            )
        if end_name.text != name_token.text:
            raise NmslSyntaxError(
                f"'end {end_type.text} {end_name.text}' does not match "
                f"declaration of {name_token.text!r}",
                end_name.location,
            )
        self._expect(PERIOD)
        return Declaration(
            decltype=decltype_token.text,
            name=name_token.text,
            params=params,
            clauses=clauses,
            location=decltype_token.location,
        )

    def _parse_declparams(self) -> List[List[NmslToken]]:
        if not self._accept(PUNCT, "("):
            return []
        groups: List[List[NmslToken]] = []
        current: List[NmslToken] = []
        depth = 0
        while True:
            token = self._next()
            if token.kind == EOF:
                raise NmslSyntaxError(
                    "unterminated parameter list", token.location
                )
            if token.matches(PUNCT, "(") or token.matches(PUNCT, "{") or token.matches(PUNCT, "["):
                depth += 1
            elif token.text in _CLOSERS and token.kind == PUNCT:
                if token.text == ")" and depth == 0:
                    break
                depth -= 1
            elif depth == 0 and token.kind == PUNCT and token.text in (",", ";"):
                groups.append(current)
                current = []
                continue
            current.append(token)
        if current or groups:
            groups.append(current)
        return groups

    def _parse_clauses(self) -> List[GenericClause]:
        clauses: List[GenericClause] = []
        while True:
            token = self._peek()
            if token.kind == EOF:
                raise NmslSyntaxError(
                    "specification not terminated by 'end'", token.location
                )
            if token.is_word("end"):
                return clauses
            clauses.append(self._parse_clause())

    def _parse_clause(self) -> GenericClause:
        tokens: List[NmslToken] = []
        depth = 0
        first = self._peek()
        while True:
            token = self._peek()
            if token.kind == EOF:
                raise NmslSyntaxError("clause not terminated by ';'", token.location)
            if depth == 0 and token.matches(PUNCT, ";"):
                self._next()
                break
            if token.kind == PUNCT and token.text in _OPENERS:
                depth += 1
            elif token.kind == PUNCT and token.text in _CLOSERS:
                depth -= 1
                if depth < 0:
                    raise NmslSyntaxError(
                        f"unbalanced {token.text!r} in clause", token.location
                    )
            tokens.append(self._next())
        if not tokens:
            raise NmslSyntaxError("empty clause", first.location)
        raw = self._text[tokens[0].start : tokens[-1].end]
        return GenericClause(tokens=tokens, raw_text=raw, location=first.location)


def parse_generic(text: str, filename: str = "<nmsl>") -> List[Declaration]:
    """Parse *text* into generalized declarations (pass 1)."""
    return GenericParser(text, filename).parse_declarations()
