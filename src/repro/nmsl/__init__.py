"""NMSL — the Network Management Specification Language (the paper's core).

The language has four kinds of specifications (paper Section 4.1):

* **type** — management data types, with embedded ASN.1 bodies (Fig 4.1/4.2);
* **process** — management clients/servers: what they support, export and
  query, with frequencies (Fig 4.3/4.4);
* **system** — network elements: hardware, interfaces, OS, supported MIB
  portion, instantiated processes (Fig 4.5/4.6);
* **domain** — administrative groupings of systems, processes and
  sub-domains, with export permissions (Fig 4.7/4.8).

The compiler is two-pass (paper Section 6): pass 1 parses the *generalized*
grammar of Figure 6.1 (any keyword-shaped specification is accepted); pass 2
runs keyword-dispatched *actions* — generic actions perform semantic checks
and build the typed specification model, output-specific actions generate
consistency facts or configuration output.  The extension mechanism
(Section 6.3) prepends keyword/action table entries, overriding or extending
the base language.
"""

from repro.nmsl.lexer import NmslLexer, NmslToken, tokenize
from repro.nmsl.generic import Declaration, GenericClause, parse_generic
from repro.nmsl.frequency import FrequencySpec, INFREQUENT_PERIOD_SECONDS
from repro.nmsl.specs import (
    DomainSpec,
    ExportSpec,
    InterfaceSpec,
    ProcessInvocation,
    ProcessSpec,
    QuerySpec,
    Specification,
    SystemSpec,
    TypeSpec,
)
from repro.nmsl.compiler import CompilerOptions, NmslCompiler, compile_text
from repro.nmsl.extension import Extension, ExtensionAction, parse_extension
from repro.nmsl.pprint import (
    render_domain,
    render_process,
    render_specification,
    render_system,
)

__all__ = [
    "CompilerOptions",
    "Declaration",
    "DomainSpec",
    "ExportSpec",
    "Extension",
    "ExtensionAction",
    "FrequencySpec",
    "GenericClause",
    "INFREQUENT_PERIOD_SECONDS",
    "InterfaceSpec",
    "NmslCompiler",
    "NmslLexer",
    "NmslToken",
    "ProcessInvocation",
    "ProcessSpec",
    "QuerySpec",
    "Specification",
    "SystemSpec",
    "TypeSpec",
    "compile_text",
    "parse_extension",
    "parse_generic",
    "render_domain",
    "render_process",
    "render_specification",
    "render_system",
    "tokenize",
]
