"""The NMSL extension language (paper Section 6.3).

"The extension input to the NMSL Compiler is a simple list of typed
keywords and actions."  An extension can:

* add clause **keywords** to existing specification types (or override
  where an existing keyword is valid) — prepended to the keyword table;
* add whole new **decltypes** (new kinds of specifications);
* add or override **output actions**, tagged with an output type; an
  extension that specifies an existing keyword and "a single action tagged
  ``DavesSnmpd`` will not override the basic generic action for the
  clause, but it will override an existing action tagged ``DavesSnmpd``"
  — overriding is per output tag only.

Extensions come in two forms: the text format below (parsed by
:func:`parse_extension`), whose actions are ``emit`` templates, and
programmatic :class:`Extension` objects whose actions may be arbitrary
callables.

Text format (one statement per line, ``--`` comments)::

    extension billing;
    keyword billing in process, domain;
    keyword surcharge in process continues;      -- continuation keyword
    decltype organization;
    output consistency for process.billing emit "billing({name}, {arg0}).";
    output BartsSnmpd for process emit "# managed by {name}";

Templates may use ``{name}`` (declaration name), ``{keyword}``, ``{args}``
(space-joined arguments) and ``{arg0}`` ... ``{arg9}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExtensionError
from repro.nmsl.actions import KeywordEntry

#: A clause-level renderer: (declaration name, clause args) -> output text.
ClauseRenderer = Callable[[str, Tuple[str, ...]], str]


@dataclass(frozen=True)
class ExtensionAction:
    """One output-specific action contributed by an extension.

    ``keyword`` of None makes this a declaration-level action (overrides
    the basic action for (tag, decltype)); otherwise it is a clause-level
    action run once per occurrence of the keyword clause.
    Exactly one of ``template`` / ``render`` must be given.
    """

    tag: str
    decltype: str
    keyword: Optional[str] = None
    template: Optional[str] = None
    render: Optional[ClauseRenderer] = None

    def __post_init__(self):
        if (self.template is None) == (self.render is None):
            raise ExtensionError(
                "an extension action needs exactly one of template/render"
            )

    def renderer(self) -> ClauseRenderer:
        if self.render is not None:
            return self.render
        template = self.template or ""

        def from_template(name: str, args: Tuple[str, ...]) -> str:
            values: Dict[str, str] = {
                "name": name,
                "keyword": self.keyword or "",
                "args": " ".join(args),
            }
            for index in range(10):
                values[f"arg{index}"] = args[index] if index < len(args) else ""
            try:
                return template.format(**values)
            except (KeyError, IndexError) as exc:
                raise ExtensionError(
                    f"bad placeholder in template {template!r}: {exc}"
                ) from exc

        return from_template


@dataclass
class Extension:
    """A parsed extension: keywords, decltypes and actions to prepend."""

    name: str
    keywords: Tuple[KeywordEntry, ...] = ()
    decltypes: Tuple[str, ...] = ()
    actions: Tuple[ExtensionAction, ...] = ()


def parse_extension(text: str) -> Extension:
    """Parse the extension-language text format."""
    name: Optional[str] = None
    keywords: List[KeywordEntry] = []
    decltypes: List[str] = []
    actions: List[ExtensionAction] = []

    for raw_line in _statements(text):
        words = raw_line.split()
        if not words:
            continue
        head = words[0]
        if head == "extension":
            if len(words) != 2:
                raise ExtensionError(f"malformed extension statement: {raw_line!r}")
            name = words[1]
        elif head == "keyword":
            keywords.append(_parse_keyword(raw_line, words))
        elif head == "decltype":
            if len(words) != 2:
                raise ExtensionError(f"malformed decltype statement: {raw_line!r}")
            decltypes.append(words[1])
        elif head == "output":
            actions.append(_parse_output(raw_line))
        else:
            raise ExtensionError(f"unknown extension statement: {raw_line!r}")
    if name is None:
        raise ExtensionError("extension text must begin with 'extension <name>;'")
    return Extension(
        name=name,
        keywords=tuple(keywords),
        decltypes=tuple(decltypes),
        actions=tuple(actions),
    )


def _statements(text: str) -> List[str]:
    """Split on ';' at top level, dropping ``--`` comments."""
    lines = []
    for line in text.splitlines():
        comment = line.find("--")
        if comment >= 0:
            line = line[:comment]
        lines.append(line)
    joined = "\n".join(lines)
    statements = []
    current: List[str] = []
    in_string = False
    for ch in joined:
        if ch == '"':
            in_string = not in_string
            current.append(ch)
        elif ch == ";" and not in_string:
            statement = "".join(current).strip()
            if statement:
                statements.append(statement)
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        raise ExtensionError(f"statement not terminated by ';': {tail!r}")
    return statements


def _parse_keyword(raw: str, words: Sequence[str]) -> KeywordEntry:
    # keyword <kw> in <decltype>{, <decltype>} [continues]
    if len(words) < 4 or words[2] != "in":
        raise ExtensionError(f"malformed keyword statement: {raw!r}")
    keyword = words[1]
    rest = words[3:]
    continues = False
    if rest and rest[-1] == "continues":
        continues = True
        rest = rest[:-1]
    decltypes = tuple(
        part for part in (token.strip(",") for token in rest) if part
    )
    if not decltypes:
        raise ExtensionError(f"keyword statement names no decltypes: {raw!r}")
    return KeywordEntry(keyword, decltypes, starts_clause=not continues)


def _parse_output(raw: str) -> ExtensionAction:
    # output <tag> for <decltype>[.<keyword>] emit "<template>"
    words = raw.split(None, 4)
    if len(words) < 5 or words[2] != "for" or not words[4].startswith("emit"):
        raise ExtensionError(f"malformed output statement: {raw!r}")
    tag = words[1]
    target = words[3]
    emit_part = words[4][len("emit") :].strip()
    if not (emit_part.startswith('"') and emit_part.endswith('"') and len(emit_part) >= 2):
        raise ExtensionError(f"output template must be double-quoted: {raw!r}")
    template = emit_part[1:-1]
    decltype, _sep, keyword = target.partition(".")
    return ExtensionAction(
        tag=tag,
        decltype=decltype,
        keyword=keyword or None,
        template=template,
    )
