"""The NMSL Compiler driver (paper Figure 3.1 / Section 6).

``NmslCompiler`` ties the pieces together:

1. **pass 1** — :func:`repro.nmsl.generic.parse_generic` parses the
   generalized grammar;
2. **pass 2** — :class:`repro.nmsl.semantics.SpecificationBuilder` runs
   the generic actions (semantic checks, typed-spec construction);
3. **output** — :meth:`generate` runs the output-specific actions for one
   requested output type ("Each run of the compiler executes the generic
   actions and one type of output specific action").

Extensions are applied at construction: their keyword entries and
decltypes are prepended to the keyword table, their declaration-level
actions prepended to the output registry, and their clause-level actions
installed in the clause-action table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.asn1.types import Asn1Module
from repro.errors import CodegenError, NmslSemanticError
from repro.mib.mib1 import build_mib1
from repro.mib.tree import MibTree
from repro.nmsl.actions import (
    KeywordTable,
    OutputContext,
    OutputRegistry,
)
from repro.nmsl.extension import ClauseRenderer, Extension
from repro.nmsl.generic import Declaration, parse_generic
from repro.nmsl.outputs import EPILOGUE, register_base_outputs
from repro.nmsl.semantics import BuildReport, SpecificationBuilder
from repro.nmsl.specs import Specification


@dataclass
class CompilerOptions:
    """Configuration for a compiler instance.

    ``extension_files`` optionally names the source file of each entry in
    ``extensions`` (same order); the static analyzer uses it to anchor
    dead-extension-entry diagnostics.
    """

    filename: str = "<nmsl>"
    strict: bool = True
    extensions: Tuple[Extension, ...] = ()
    extension_files: Tuple[str, ...] = ()
    register_codegen: bool = True


@dataclass
class CompileResult:
    """Everything produced by one compile run."""

    declarations: List[Declaration]
    specification: Specification
    report: BuildReport

    @property
    def ok(self) -> bool:
        return not self.report.errors


@dataclass
class OutputUnit:
    """One chunk of generated output, attributed to its declaration."""

    name: str
    decltype: str
    text: str


@dataclass
class OutputBundle:
    """All output of one :meth:`NmslCompiler.generate` run."""

    tag: str
    units: List[OutputUnit] = field(default_factory=list)

    def text(self) -> str:
        return "\n".join(unit.text for unit in self.units if unit.text) + "\n"

    def unit_for(self, name: str) -> Optional[OutputUnit]:
        for unit in self.units:
            if unit.name == name:
                return unit
        return None


class NmslCompiler:
    """The NMSL compiler with extension support."""

    def __init__(self, options: Optional[CompilerOptions] = None):
        self.options = options or CompilerOptions()
        self.module = Asn1Module()
        self.tree: MibTree = build_mib1(self.module)
        self.keyword_table = KeywordTable()
        self.registry = OutputRegistry()
        register_base_outputs(self.registry)
        if self.options.register_codegen:
            from repro.codegen import register_all

            register_all(self.registry)
        #: clause-level extension actions: (tag, decltype, keyword) -> renderer
        self.clause_actions: Dict[Tuple[str, str, str], ClauseRenderer] = {}
        self.extension_decltypes: List[str] = []
        for extension in self.options.extensions:
            self.apply_extension(extension)

    # ------------------------------------------------------------------
    # Extensions.
    # ------------------------------------------------------------------
    def apply_extension(self, extension: Extension) -> None:
        """Prepend an extension's tables (paper Section 6.3 semantics)."""
        for entry in extension.keywords:
            self.keyword_table.prepend(entry)
        self.extension_decltypes.extend(extension.decltypes)
        for action in extension.actions:
            if action.keyword is None:
                renderer = action.renderer()

                def decl_action(context, spec, _render=renderer):
                    name = getattr(spec, "name", "")
                    return _render(name, ())

                self.registry.prepend(action.tag, action.decltype, decl_action)
            else:
                key = (action.tag, action.decltype, action.keyword)
                self.clause_actions[key] = action.renderer()

    # ------------------------------------------------------------------
    # Compilation.
    # ------------------------------------------------------------------
    def parse(self, text: str) -> List[Declaration]:
        """Pass 1 only."""
        with obs.current().span("compile.pass1", file=self.options.filename):
            return parse_generic(text, self.options.filename)

    def compile(self, text: str, strict: Optional[bool] = None) -> CompileResult:
        """Pass 1 + pass 2: returns the typed specification."""
        o = obs.current()
        with o.span("compile", file=self.options.filename) as span:
            declarations = self.parse(text)
            builder = SpecificationBuilder(
                self.tree,
                self.module,
                self.keyword_table,
                extension_decltypes=self.extension_decltypes,
            )
            effective_strict = self.options.strict if strict is None else strict
            with o.span("compile.pass2", declarations=len(declarations)):
                specification = builder.build(
                    declarations, strict=effective_strict
                )
            span.annotate(
                declarations=len(declarations),
                errors=len(builder.report.errors),
                warnings=len(builder.report.warnings),
            )
        if o.enabled:
            o.counter("repro_compile_runs_total", "compile invocations").inc()
            if builder.report.errors:
                o.counter(
                    "repro_compile_errors_total", "semantic errors reported"
                ).inc(len(builder.report.errors))
            if builder.report.warnings:
                o.counter(
                    "repro_compile_warnings_total", "semantic warnings reported"
                ).inc(len(builder.report.warnings))
        return CompileResult(
            declarations=declarations,
            specification=specification,
            report=builder.report,
        )

    def analysis_context(self, result: CompileResult):
        """An :class:`AnalysisContext` for this compile, with extension
        tables attached so every static-analysis pass can run."""
        from repro.analysis.context import AnalysisContext

        return AnalysisContext(
            specification=result.specification,
            tree=self.tree,
            filename=self.options.filename,
            extensions=self.options.extensions,
            extension_files=self.options.extension_files,
            extension_decltypes=tuple(self.extension_decltypes),
            keyword_table=self.keyword_table,
        )

    # ------------------------------------------------------------------
    # Output generation.
    # ------------------------------------------------------------------
    def generate(self, tag: str, result: CompileResult) -> OutputBundle:
        """Run the output-specific actions for *tag* over every declaration."""
        o = obs.current()
        with o.span("codegen.generate", tag=tag) as span:
            specification = result.specification
            context = OutputContext(
                specification=specification,
                options={"tree": self.tree, "module": self.module},
            )
            bundle = OutputBundle(tag=tag)
            produced_any = False
            for declaration in result.declarations:
                spec_obj = self._typed_spec_for(specification, declaration)
                chunks: List[str] = []
                action = self.registry.lookup(tag, declaration.decltype)
                if action is not None and spec_obj is not None:
                    context.declaration = declaration
                    if o.enabled:
                        with o.span(
                            "codegen.action",
                            tag=tag,
                            decltype=declaration.decltype,
                            declaration=declaration.name,
                        ):
                            chunk = action(context, spec_obj)
                        o.counter(
                            "repro_codegen_actions_total",
                            "output-specific actions dispatched",
                            tag=tag,
                            decltype=declaration.decltype,
                        ).inc()
                    else:
                        chunk = action(context, spec_obj)
                    if chunk:
                        chunks.append(chunk)
                chunks.extend(
                    self._clause_chunks(tag, declaration, specification)
                )
                if chunks:
                    produced_any = True
                    bundle.units.append(
                        OutputUnit(
                            name=declaration.name,
                            decltype=declaration.decltype,
                            text="\n".join(chunks),
                        )
                    )
            epilogue = self.registry.lookup(tag, EPILOGUE)
            if epilogue is not None:
                context.declaration = None
                chunk = epilogue(context, specification)
                if chunk:
                    produced_any = True
                    bundle.units.append(OutputUnit("", EPILOGUE, chunk))
            if not produced_any and tag not in self.registry.tags():
                known = ", ".join(sorted(set(self.registry.tags())))
                raise CodegenError(
                    f"no output actions registered for tag {tag!r} "
                    f"(known: {known})"
                )
            span.annotate(units=len(bundle.units))
        if o.enabled:
            o.histogram(
                "repro_codegen_generate_seconds",
                _help="per-generator (per-tag) output time",
                tag=tag,
            ).observe(round(span.elapsed, 9))
            o.counter(
                "repro_codegen_units_total",
                "output units produced",
                tag=tag,
            ).inc(len(bundle.units))
        return bundle

    def _clause_chunks(
        self, tag: str, declaration: Declaration, specification: Specification
    ) -> List[str]:
        stored = specification.extension_clauses.get(
            (declaration.decltype, declaration.name), []
        )
        chunks = []
        for keyword, args in stored:
            renderer = self.clause_actions.get((tag, declaration.decltype, keyword))
            if renderer is not None:
                chunks.append(renderer(declaration.name, args))
        return chunks

    @staticmethod
    def _typed_spec_for(specification: Specification, declaration: Declaration):
        table = {
            "type": specification.types,
            "process": specification.processes,
            "system": specification.systems,
            "domain": specification.domains,
        }.get(declaration.decltype)
        if table is None:
            return declaration  # extension decltype: hand over raw declaration
        return table.get(declaration.name)


def compile_text(
    text: str,
    extensions: Sequence[Extension] = (),
    strict: bool = True,
    filename: str = "<nmsl>",
) -> Tuple[NmslCompiler, CompileResult]:
    """Convenience: build a compiler and compile *text* in one call."""
    compiler = NmslCompiler(
        CompilerOptions(
            filename=filename, strict=strict, extensions=tuple(extensions)
        )
    )
    return compiler, compiler.compile(text)
