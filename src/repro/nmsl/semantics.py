"""Pass 2 generic actions: semantic checking and typed-spec construction.

The :class:`SpecificationBuilder` walks generalized declarations, segments
each clause with the keyword table, validates it ("their first task is to
determine if the specifications parsed by the first pass are valid") and
builds the typed model of :mod:`repro.nmsl.specs`.  A final :meth:`link`
phase checks cross-references between specifications (process invocations,
domain membership, query targets).

Errors are collected, not raised one at a time, so an administrator sees
every problem in one run; ``strict`` mode raises at the end when any were
found.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.asn1.parser import parse_type as parse_asn1_type
from repro.asn1.types import Asn1Module
from repro.errors import (
    Asn1Error,
    MibError,
    NmslSemanticError,
    ReproError,
    SourceLocation,
)
from repro.mib.tree import Access, MibTree
from repro.nmsl.actions import KeywordTable, Subclause, segment_clause
from repro.nmsl.frequency import FrequencySpec
from repro.nmsl.generic import Declaration, GenericClause
from repro.nmsl.lexer import NUMBER, PERIOD, PUNCT, STRING, WORD, NmslToken
from repro.nmsl.specs import (
    WILDCARD,
    DomainSpec,
    ExportSpec,
    InterfaceSpec,
    ProcessInvocation,
    ProcessSpec,
    ProxySpec,
    QuerySpec,
    Specification,
    SystemSpec,
    TypeSpec,
    PUBLIC_DOMAIN,
)

#: Parameter type name whose values name processes/systems (Figure 4.4).
PROCESS_PARAM_TYPE = "Process"


def join_wrapped_paths(tokens: Sequence[NmslToken]) -> List[NmslToken]:
    """Merge ``WORD PERIOD WORD`` runs into single dotted-path tokens.

    The paper wraps long MIB paths across lines (Figure 4.4:
    ``mgmt.mib.ip.ipAddrTable.`` / ``IpAddrEntry.ipAdEntAddr``); the lexer
    splits the trailing dot off, so rejoin it here.
    """
    merged: List[NmslToken] = []
    for token in tokens:
        if (
            len(merged) >= 2
            and merged[-1].kind == PERIOD
            and merged[-2].kind == WORD
            and token.kind == WORD
        ):
            merged.pop()  # the PERIOD
            previous = merged.pop()
            merged.append(
                NmslToken(
                    WORD,
                    previous.text + "." + token.text,
                    previous.location,
                    previous.start,
                    token.end,
                )
            )
            continue
        merged.append(token)
    return merged


@dataclass
class BuildReport:
    """Problems found during pass 2."""

    errors: List[NmslSemanticError] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    def error(self, message: str, location: Optional[SourceLocation] = None) -> None:
        self.errors.append(NmslSemanticError(message, location))

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def summary(self) -> str:
        lines = [str(error) for error in self.errors]
        lines.extend(f"warning: {warning}" for warning in self.warnings)
        return "\n".join(lines)


class SpecificationBuilder:
    """Builds a :class:`Specification` from generalized declarations."""

    def __init__(
        self,
        mib_tree: MibTree,
        asn1_module: Optional[Asn1Module] = None,
        keyword_table: Optional[KeywordTable] = None,
        extension_decltypes: Sequence[str] = (),
    ):
        self._tree = mib_tree
        self._module = asn1_module or Asn1Module()
        self._table = keyword_table or KeywordTable()
        self._extension_decltypes = tuple(extension_decltypes)
        self.report = BuildReport()
        self._spec = Specification()

    # ------------------------------------------------------------------
    # Top level.
    # ------------------------------------------------------------------
    def build(
        self, declarations: Sequence[Declaration], strict: bool = True
    ) -> Specification:
        for declaration in declarations:
            self._build_declaration(declaration)
        self.link()
        if strict and self.report.errors:
            raise NmslSemanticError(
                "specification has semantic errors:\n" + self.report.summary()
            )
        return self._spec

    def _build_declaration(self, declaration: Declaration) -> None:
        o = obs.current()
        if o.enabled:
            o.counter(
                "repro_compile_declarations_total",
                "declarations dispatched by keyword (pass 2)",
                decltype=declaration.decltype,
            ).inc()
        handler = {
            "type": self._build_type,
            "process": self._build_process,
            "system": self._build_system,
            "domain": self._build_domain,
        }.get(declaration.decltype)
        if handler is None:
            if declaration.decltype in self._extension_decltypes:
                self._spec.extras.setdefault(declaration.decltype, []).append(
                    declaration
                )
                return
            self.report.error(
                f"unknown specification type {declaration.decltype!r}",
                declaration.location,
            )
            return
        try:
            handler(declaration)
        except ReproError as exc:
            self.report.error(str(exc), declaration.location)

    # ------------------------------------------------------------------
    # type specifications (Figure 4.1).
    # ------------------------------------------------------------------
    def _build_type(self, declaration: Declaration) -> None:
        body_clauses = [
            clause
            for clause in declaration.clauses
            if clause.first_keyword() != "access"
        ]
        access_clauses = declaration.clauses_starting("access")
        if not body_clauses:
            self.report.error(
                f"type {declaration.name!r} has no ASN.1 body", declaration.location
            )
            return
        if len(body_clauses) > 1:
            self.report.error(
                f"type {declaration.name!r} has multiple bodies",
                body_clauses[1].location,
            )
        try:
            asn1_type = parse_asn1_type(body_clauses[0].raw_text)
        except Asn1Error as exc:
            self.report.error(
                f"type {declaration.name!r}: invalid ASN.1 body: {exc.message}",
                body_clauses[0].location,
            )
            return
        access: Optional[Access] = None
        if access_clauses:
            subclauses = segment_clause(access_clauses[0], "type", self._table)
            access = self._parse_access(subclauses[0], declaration.name)
        spec = TypeSpec(
            name=declaration.name,
            asn1_type=asn1_type,
            access=access,
            location=declaration.location,
        )
        self._spec.add_type(spec)
        if declaration.name not in self._module:
            self._module.define(declaration.name, asn1_type)

    # ------------------------------------------------------------------
    # process specifications (Figure 4.3).
    # ------------------------------------------------------------------
    def _build_process(self, declaration: Declaration) -> None:
        params = self._parse_params(declaration)
        supports: List[str] = []
        exports: List[ExportSpec] = []
        queries: List[QuerySpec] = []
        proxies: List[ProxySpec] = []
        for clause in declaration.clauses:
            keyword = clause.first_keyword()
            if keyword == "supports":
                supports.extend(self._parse_supports(clause, "process"))
            elif keyword == "exports":
                spec = self._parse_exports(clause, "process")
                if spec is not None:
                    exports.append(spec)
            elif keyword == "queries":
                spec = self._parse_queries(clause, declaration)
                if spec is not None:
                    queries.append(spec)
            elif keyword == "proxies":
                spec = self._parse_proxies(clause)
                if spec is not None:
                    proxies.append(spec)
            else:
                self._handle_extra_clause(declaration, clause, "process")
        self._spec.add_process(
            ProcessSpec(
                name=declaration.name,
                params=tuple(params),
                supports=tuple(supports),
                exports=tuple(exports),
                queries=tuple(queries),
                proxies=tuple(proxies),
                location=declaration.location,
            )
        )

    def _parse_params(self, declaration: Declaration) -> List[Tuple[str, str]]:
        params: List[Tuple[str, str]] = []
        for group in declaration.params:
            tokens = [token for token in group if token.kind != PERIOD]
            if (
                len(tokens) == 3
                and tokens[0].kind == WORD
                and tokens[1].matches(PUNCT, ":")
                and tokens[2].kind == WORD
            ):
                params.append((tokens[0].text, tokens[2].text))
            else:
                texts = " ".join(token.text for token in group)
                self.report.error(
                    f"process {declaration.name!r}: malformed parameter "
                    f"{texts!r} (expected 'name: Type')",
                    declaration.location,
                )
        return params

    def _parse_supports(self, clause: GenericClause, decltype: str) -> List[str]:
        subclauses = segment_clause(clause, decltype, self._table)
        paths = self._vlist(subclauses[0])
        for path in paths:
            self._check_mib_path(path, clause.location)
        for stray in subclauses[1:]:
            self.report.error(
                f"unexpected {stray.keyword!r} in supports clause", clause.location
            )
        return paths

    def _parse_exports(
        self, clause: GenericClause, decltype: str
    ) -> Optional[ExportSpec]:
        subclauses = segment_clause(clause, decltype, self._table)
        variables: Tuple[str, ...] = ()
        to_domain: Optional[str] = None
        access = Access.READ_ONLY
        frequency = FrequencySpec.unconstrained()
        for subclause in subclauses:
            if subclause.keyword == "exports":
                variables = tuple(self._vlist(subclause))
                for path in variables:
                    self._check_mib_path(path, clause.location)
            elif subclause.keyword == "to":
                names = subclause.words()
                if len(names) != 1:
                    self.report.error(
                        "exports 'to' needs exactly one domain name",
                        clause.location,
                    )
                    return None
                to_domain = names[0]
            elif subclause.keyword == "access":
                access = self._parse_access(subclause, "exports") or access
            elif subclause.keyword == "frequency":
                frequency = self._parse_frequency(subclause, clause.location)
            else:
                self.report.error(
                    f"unexpected {subclause.keyword!r} in exports clause",
                    clause.location,
                )
        if not variables:
            self.report.error("exports clause lists no variables", clause.location)
            return None
        if to_domain is None:
            self.report.error("exports clause missing 'to <domain>'", clause.location)
            return None
        return ExportSpec(
            variables=variables,
            to_domain=to_domain,
            access=access,
            frequency=frequency,
            location=clause.location,
        )

    def _parse_queries(
        self, clause: GenericClause, declaration: Declaration
    ) -> Optional[QuerySpec]:
        subclauses = segment_clause(clause, "process", self._table)
        target: Optional[str] = None
        requests: Tuple[str, ...] = ()
        using: List[Tuple[str, str]] = []
        frequency = FrequencySpec.unconstrained()
        kind = "requests"
        access = Access.READ_ONLY
        for subclause in subclauses:
            if subclause.keyword == "queries":
                names = subclause.words()
                if len(names) != 1:
                    self.report.error(
                        "queries clause needs exactly one target", clause.location
                    )
                    return None
                target = names[0]
            elif subclause.keyword in ("requests", "modifies", "executes"):
                if requests:
                    self.report.error(
                        "a queries clause may contain only one of "
                        "requests/modifies/executes",
                        clause.location,
                    )
                    return None
                requests = tuple(self._vlist(subclause))
                for path in requests:
                    self._check_mib_path(path, clause.location)
                kind = subclause.keyword
                access = {
                    "requests": Access.READ_ONLY,
                    "modifies": Access.READ_WRITE,
                    "executes": Access.ANY,
                }[kind]
                if kind == "modifies":
                    for path in requests:
                        self._check_writable(path, clause.location)
            elif subclause.keyword == "using":
                using = self._parse_using(subclause, clause.location)
            elif subclause.keyword == "frequency":
                frequency = self._parse_frequency(subclause, clause.location)
            else:
                self.report.error(
                    f"unexpected {subclause.keyword!r} in queries clause",
                    clause.location,
                )
        if target is None:
            self.report.error("queries clause missing target", clause.location)
            return None
        if not requests:
            self.report.error(
                f"queries clause for {target!r} requests nothing", clause.location
            )
            return None
        return QuerySpec(
            target=target,
            requests=requests,
            using=tuple(using),
            frequency=frequency,
            access=access,
            kind=kind,
            location=clause.location,
        )

    def _parse_proxies(self, clause: GenericClause) -> Optional[ProxySpec]:
        """``proxies <system> [via <protocol>]`` (paper Section 3.1)."""
        subclauses = segment_clause(clause, "process", self._table)
        target: Optional[str] = None
        protocol = ""
        for subclause in subclauses:
            words = subclause.words()
            if subclause.keyword == "proxies":
                if len(words) != 1:
                    self.report.error(
                        "proxies clause needs exactly one target element",
                        clause.location,
                    )
                    return None
                target = words[0]
            elif subclause.keyword == "via":
                protocol = words[0] if words else ""
            else:
                self.report.error(
                    f"unexpected {subclause.keyword!r} in proxies clause",
                    clause.location,
                )
        if target is None:
            self.report.error("proxies clause missing a target", clause.location)
            return None
        return ProxySpec(
            target_system=target, protocol=protocol, location=clause.location
        )

    def _parse_using(
        self, subclause: Subclause, location: SourceLocation
    ) -> List[Tuple[str, str]]:
        """Parse ``path := value {, path := value}``."""
        tokens = join_wrapped_paths(subclause.tokens)
        assignments: List[Tuple[str, str]] = []
        index = 0
        while index < len(tokens):
            if tokens[index].matches(PUNCT, ","):
                index += 1
                continue
            if (
                index + 2 < len(tokens)
                and tokens[index].kind == WORD
                and tokens[index + 1].matches(PUNCT, ":=")
            ):
                path = tokens[index].text
                value = tokens[index + 2].text
                self._check_mib_path(path, location)
                assignments.append((path, value))
                index += 3
            else:
                self.report.error(
                    f"malformed using assignment near {tokens[index].text!r}",
                    location,
                )
                return assignments
        return assignments

    # ------------------------------------------------------------------
    # system specifications (Figure 4.5).
    # ------------------------------------------------------------------
    def _build_system(self, declaration: Declaration) -> None:
        cpu = ""
        opsys = ""
        opsys_version = ""
        interfaces: List[InterfaceSpec] = []
        supports: List[str] = []
        processes: List[ProcessInvocation] = []
        for clause in declaration.clauses:
            keyword = clause.first_keyword()
            if keyword == "cpu":
                subclauses = segment_clause(clause, "system", self._table)
                words = subclauses[0].words()
                if len(words) != 1:
                    self.report.error("cpu clause needs one value", clause.location)
                else:
                    cpu = words[0]
            elif keyword == "interface":
                interface = self._parse_interface(clause)
                if interface is not None:
                    interfaces.append(interface)
            elif keyword == "opsys":
                opsys, opsys_version = self._parse_opsys(clause)
            elif keyword == "supports":
                supports.extend(self._parse_supports(clause, "system"))
            elif keyword == "process":
                invocation = self._parse_invocation(clause, "system")
                if invocation is not None:
                    processes.append(invocation)
            else:
                self._handle_extra_clause(declaration, clause, "system")
        self._spec.add_system(
            SystemSpec(
                name=declaration.name,
                cpu=cpu,
                interfaces=tuple(interfaces),
                opsys=opsys,
                opsys_version=opsys_version,
                supports=tuple(supports),
                processes=tuple(processes),
                location=declaration.location,
            )
        )

    def _parse_interface(self, clause: GenericClause) -> Optional[InterfaceSpec]:
        subclauses = segment_clause(clause, "system", self._table)
        name = ""
        network = ""
        if_type = ""
        speed = 0
        protocols: Tuple[str, ...] = ()
        for subclause in subclauses:
            words = subclause.words()
            if subclause.keyword == "interface":
                name = words[0] if words else ""
            elif subclause.keyword == "net":
                network = words[0] if words else ""
            elif subclause.keyword == "protocols":
                protocols = tuple(words)
            elif subclause.keyword == "type":
                if_type = words[0] if words else ""
            elif subclause.keyword == "speed":
                speed = self._parse_speed(subclause, clause.location)
            else:
                self.report.error(
                    f"unexpected {subclause.keyword!r} in interface clause",
                    clause.location,
                )
        if not name:
            self.report.error("interface clause missing a name", clause.location)
            return None
        if not network:
            self.report.error(
                f"interface {name!r} missing 'net <network>'", clause.location
            )
            return None
        return InterfaceSpec(
            name=name,
            network=network,
            if_type=if_type,
            speed_bps=speed,
            protocols=protocols,
            location=clause.location,
        )

    def _parse_speed(self, subclause: Subclause, location: SourceLocation) -> int:
        tokens = subclause.tokens
        if (
            len(tokens) >= 1
            and tokens[0].kind == NUMBER
        ):
            if len(tokens) >= 2 and not tokens[1].is_word("bps"):
                self.report.error(
                    f"speed unit must be 'bps', found {tokens[1].text!r}", location
                )
            try:
                return int(tokens[0].text)
            except ValueError:
                self.report.error(
                    f"speed must be an integer, found {tokens[0].text!r}", location
                )
                return 0
        self.report.error("speed clause needs '<integer> bps'", location)
        return 0

    def _parse_opsys(self, clause: GenericClause) -> Tuple[str, str]:
        subclauses = segment_clause(clause, "system", self._table)
        name = ""
        version = ""
        for subclause in subclauses:
            words = subclause.words()
            if subclause.keyword == "opsys":
                name = words[0] if words else ""
            elif subclause.keyword == "version":
                version = words[0] if words else ""
        if not name:
            self.report.error("opsys clause missing a name", clause.location)
        return name, version

    def _parse_invocation(
        self, clause: GenericClause, decltype: str
    ) -> Optional[ProcessInvocation]:
        tokens = clause.tokens[1:]  # drop the 'process' keyword
        if not tokens or tokens[0].kind not in (WORD, STRING):
            self.report.error(
                "process clause missing a process name", clause.location
            )
            return None
        name = tokens[0].text
        args: List[object] = []
        rest = tokens[1:]
        if rest:
            if not (rest[0].matches(PUNCT, "(") and rest[-1].matches(PUNCT, ")")):
                self.report.error(
                    f"malformed process invocation {name!r}", clause.location
                )
                return None
            for token in rest[1:-1]:
                if token.matches(PUNCT, ","):
                    continue
                if token.matches(PUNCT, "*"):
                    args.append(WILDCARD)
                elif token.kind == NUMBER:
                    text = token.text
                    args.append(float(text) if "." in text else int(text))
                elif token.kind in (WORD, STRING):
                    args.append(token.text)
                else:
                    self.report.error(
                        f"bad argument {token.text!r} in invocation of {name!r}",
                        clause.location,
                    )
        return ProcessInvocation(
            process_name=name, args=tuple(args), location=clause.location
        )

    # ------------------------------------------------------------------
    # domain specifications (Figure 4.7).
    # ------------------------------------------------------------------
    def _build_domain(self, declaration: Declaration) -> None:
        systems: List[str] = []
        subdomains: List[str] = []
        processes: List[ProcessInvocation] = []
        exports: List[ExportSpec] = []
        for clause in declaration.clauses:
            keyword = clause.first_keyword()
            if keyword == "system":
                subclauses = segment_clause(clause, "domain", self._table)
                words = subclauses[0].words()
                if len(words) != 1:
                    self.report.error(
                        "system member clause needs one name", clause.location
                    )
                else:
                    systems.append(words[0])
            elif keyword == "domain":
                subclauses = segment_clause(clause, "domain", self._table)
                words = subclauses[0].words()
                if len(words) != 1:
                    self.report.error(
                        "domain member clause needs one name", clause.location
                    )
                else:
                    subdomains.append(words[0])
            elif keyword == "process":
                invocation = self._parse_invocation(clause, "domain")
                if invocation is not None:
                    processes.append(invocation)
            elif keyword == "exports":
                spec = self._parse_exports(clause, "domain")
                if spec is not None:
                    exports.append(spec)
            else:
                self._handle_extra_clause(declaration, clause, "domain")
        self._spec.add_domain(
            DomainSpec(
                name=declaration.name,
                systems=tuple(systems),
                subdomains=tuple(subdomains),
                processes=tuple(processes),
                exports=tuple(exports),
                location=declaration.location,
            )
        )

    # ------------------------------------------------------------------
    # Shared subclause parsers.
    # ------------------------------------------------------------------
    def _vlist(self, subclause: Subclause) -> List[str]:
        tokens = join_wrapped_paths(subclause.tokens)
        return [token.text for token in tokens if token.kind in (WORD, STRING)]

    def _parse_access(
        self,
        subclause: Subclause,
        context: str,
        location: Optional[SourceLocation] = None,
    ) -> Optional[Access]:
        words = subclause.words()
        where = subclause.tokens[0].location if subclause.tokens else location
        if len(words) != 1:
            self.report.error(
                f"{context}: access clause needs one mode", where or location
            )
            return None
        try:
            return Access.parse(words[0])
        except MibError as exc:
            self.report.error(f"{context}: {exc}", where or location)
            return None

    def _parse_frequency(
        self, subclause: Subclause, location: SourceLocation
    ) -> FrequencySpec:
        tokens = subclause.tokens
        if tokens:  # anchor errors at the clause body, not the clause head
            location = tokens[0].location
        if len(tokens) == 1 and tokens[0].is_word("infrequent"):
            return FrequencySpec.infrequent()
        op = ""
        index = 0
        if index < len(tokens) and tokens[index].kind == PUNCT:
            op = tokens[index].text
            index += 1
        if index >= len(tokens) or tokens[index].kind != NUMBER:
            self.report.error("frequency clause needs a numeric value", location)
            return FrequencySpec.unconstrained()
        value_location = tokens[index].location
        value = float(tokens[index].text)
        index += 1
        if index >= len(tokens) or tokens[index].kind != WORD:
            self.report.error(
                "frequency clause needs a time unit (hours/minutes/seconds)",
                value_location,
            )
            return FrequencySpec.unconstrained()
        unit = tokens[index].text
        try:
            return FrequencySpec.from_clause(op, value, unit, value_location)
        except NmslSemanticError as exc:
            self.report.error(exc.message, exc.location)
            return FrequencySpec.unconstrained()

    def _check_writable(self, path: str, location: SourceLocation) -> None:
        """A ``modifies`` target must contain at least one writable object."""
        if not self._tree.knows(path):
            return  # unknown-path error already reported
        node = self._tree.resolve(path)
        leaves = [node] if node.is_leaf else list(self._tree.leaves(node.oid))
        if leaves and not any(leaf.access.allows_write() for leaf in leaves):
            self.report.error(
                f"modifies target {path!r} contains no writable objects "
                "(MIB access is read-only)",
                location,
            )

    def _check_mib_path(self, path: str, location: SourceLocation) -> None:
        if self._tree.knows(path):
            return
        # Paths may also name user-specified types (paper Figure 4.2
        # defines ipAddrTable as a type of its own).
        head = path.split(".")[0]
        if head in self._spec.types or path in self._spec.types:
            return
        self.report.error(f"unknown MIB path {path!r}", location)

    # ------------------------------------------------------------------
    # Extension clauses.
    # ------------------------------------------------------------------
    def _handle_extra_clause(
        self, declaration: Declaration, clause: GenericClause, decltype: str
    ) -> None:
        keyword = clause.first_keyword()
        if keyword is not None and self._table.is_keyword(keyword, decltype):
            subclauses = segment_clause(clause, decltype, self._table)
            store = self._spec.extension_clauses.setdefault(
                (declaration.decltype, declaration.name), []
            )
            store.append((keyword, tuple(subclauses[0].words())))
            return
        self.report.error(
            f"clause {clause.raw_text.splitlines()[0]!r} is not valid in a "
            f"{decltype} specification",
            clause.location,
        )

    def link(self) -> None:
        """Cross-reference checks after all declarations are built."""
        spec = self._spec
        for system in spec.systems.values():
            for invocation in system.processes:
                self._check_invocation(invocation, f"system {system.name!r}")
        for domain in spec.domains.values():
            for invocation in domain.processes:
                self._check_invocation(invocation, f"domain {domain.name!r}")
            for name in domain.systems:
                if name not in spec.systems:
                    self.report.error(
                        f"domain {domain.name!r} lists unknown system {name!r}",
                        domain.location,
                    )
            for name in domain.subdomains:
                if name not in spec.domains:
                    self.report.error(
                        f"domain {domain.name!r} lists unknown sub-domain {name!r}",
                        domain.location,
                    )
        self._check_domain_cycles()
        for process in spec.processes.values():
            param_names = set(process.param_names())
            for query in process.queries:
                if query.target in param_names:
                    continue
                if query.target in spec.processes:
                    continue
                self.report.error(
                    f"process {process.name!r} queries unknown target "
                    f"{query.target!r} (not a parameter or process)",
                    query.location,
                )
            for export in process.exports:
                self._check_export_domain(export, f"process {process.name!r}")
            for proxy in process.proxies:
                if proxy.target_system not in spec.systems:
                    self.report.error(
                        f"process {process.name!r} proxies unknown element "
                        f"{proxy.target_system!r}",
                        proxy.location,
                    )
        for domain in spec.domains.values():
            for export in domain.exports:
                self._check_export_domain(export, f"domain {domain.name!r}")

    def _check_invocation(self, invocation: ProcessInvocation, owner: str) -> None:
        spec = self._spec
        if invocation.process_name not in spec.processes:
            self.report.error(
                f"{owner} instantiates unknown process "
                f"{invocation.process_name!r}",
                invocation.location,
            )
            return
        process = spec.processes[invocation.process_name]
        if invocation.args and len(invocation.args) != len(process.params):
            self.report.error(
                f"{owner}: {invocation.describe()} passes "
                f"{len(invocation.args)} arguments but process "
                f"{process.name!r} declares {len(process.params)} parameters",
                invocation.location,
            )

    def _check_export_domain(self, export: ExportSpec, owner: str) -> None:
        if export.to_domain == PUBLIC_DOMAIN:
            return
        if export.to_domain not in self._spec.domains:
            self.report.warn(
                f"{owner} exports to domain {export.to_domain!r} which is not "
                "specified here (assumed foreign)"
            )

    def _check_domain_cycles(self) -> None:
        spec = self._spec
        state: Dict[str, int] = {}  # 0 visiting, 1 done

        def visit(name: str, trail: List[str]) -> None:
            if state.get(name) == 1:
                return
            if state.get(name) == 0:
                cycle = " -> ".join(trail + [name])
                self.report.error(f"domain containment cycle: {cycle}")
                return
            state[name] = 0
            domain = spec.domains.get(name)
            if domain is not None:
                for sub in domain.subdomains:
                    if sub in spec.domains:
                        visit(sub, trail + [name])
            state[name] = 1

        for name in spec.domains:
            visit(name, [])
