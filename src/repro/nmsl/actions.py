"""Pass-2 action machinery: keyword tables, segmentation, output registry.

Paper Section 6: "Associated with each production ... is a list of actions
... executed in the second pass of the compiler."  Actions split in two:

* **generic actions** (tagged ``generic`` in the paper) perform semantic
  checks and bookkeeping — here they live in :mod:`repro.nmsl.semantics`
  as the per-decltype builders, driven by the keyword tables below;
* **output-specific actions** are tagged with an output type
  (``consistency``, ``BartsSnmpd``, ...) and only run when the compiler is
  invoked for that output type.

The extension mechanism (Section 6.3) *prepends* entries to these tables:
a prepended keyword entry can add a clause keyword or override which
decltypes accept it; a prepended output action overrides the action with
the same (tag, decltype) key while leaving generic processing untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NmslSemanticError
from repro.nmsl.generic import Declaration, GenericClause
from repro.nmsl.lexer import NUMBER, PUNCT, STRING, WORD, NmslToken

# ----------------------------------------------------------------------
# Keyword table.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class KeywordEntry:
    """One clause keyword: where it is valid and how to segment around it.

    ``starts_clause`` distinguishes keywords that may begin a clause
    (``exports``, ``interface``) from continuation keywords that only
    appear inside one (``to``, ``access`` in an exports clause, ``net`` in
    an interface clause).
    """

    keyword: str
    decltypes: Tuple[str, ...]
    starts_clause: bool = True

    def valid_in(self, decltype: str) -> bool:
        return decltype in self.decltypes


#: The basic-language keyword table (paper Figures 4.1, 4.3, 4.5, 4.7).
BASE_KEYWORDS: Tuple[KeywordEntry, ...] = (
    # type specifications
    KeywordEntry("access", ("type", "process", "domain"), starts_clause=True),
    # process specifications
    KeywordEntry("supports", ("process", "system")),
    KeywordEntry("exports", ("process", "domain")),
    KeywordEntry("queries", ("process",)),
    KeywordEntry("requests", ("process",), starts_clause=False),
    KeywordEntry("modifies", ("process",), starts_clause=False),
    KeywordEntry("executes", ("process",), starts_clause=False),
    KeywordEntry("proxies", ("process",)),
    KeywordEntry("via", ("process",), starts_clause=False),
    KeywordEntry("using", ("process",), starts_clause=False),
    KeywordEntry("frequency", ("process", "domain"), starts_clause=False),
    KeywordEntry("to", ("process", "domain"), starts_clause=False),
    # network element specifications
    KeywordEntry("cpu", ("system",)),
    KeywordEntry("interface", ("system",)),
    KeywordEntry("net", ("system",), starts_clause=False),
    KeywordEntry("protocols", ("system",), starts_clause=False),
    KeywordEntry("type", ("system",), starts_clause=False),
    KeywordEntry("speed", ("system",), starts_clause=False),
    KeywordEntry("opsys", ("system",)),
    KeywordEntry("version", ("system",), starts_clause=False),
    KeywordEntry("process", ("system", "domain")),
    # domain specifications
    KeywordEntry("system", ("domain",)),
    KeywordEntry("domain", ("domain",)),
)

#: Declaration types of the basic language.
BASE_DECLTYPES: Tuple[str, ...] = ("type", "process", "system", "domain")


class KeywordTable:
    """Ordered keyword entries; extensions prepend (first match wins)."""

    def __init__(self, entries: Iterable[KeywordEntry] = BASE_KEYWORDS):
        self._entries: List[KeywordEntry] = list(entries)

    def prepend(self, entry: KeywordEntry) -> None:
        self._entries.insert(0, entry)

    def lookup(self, keyword: str, decltype: str) -> Optional[KeywordEntry]:
        for entry in self._entries:
            if entry.keyword == keyword and entry.valid_in(decltype):
                return entry
        return None

    def is_keyword(self, keyword: str, decltype: str) -> bool:
        return self.lookup(keyword, decltype) is not None

    def keywords_for(self, decltype: str) -> Tuple[str, ...]:
        seen = []
        for entry in self._entries:
            if entry.valid_in(decltype) and entry.keyword not in seen:
                seen.append(entry.keyword)
        return tuple(seen)


# ----------------------------------------------------------------------
# Subclause segmentation.
# ----------------------------------------------------------------------


@dataclass
class Subclause:
    """``keyword args...`` — one keyword group inside a clause."""

    keyword: str
    tokens: List[NmslToken]

    def texts(self) -> List[str]:
        return [token.text for token in self.tokens]

    def words(self) -> List[str]:
        """Argument texts with punctuation dropped (commas etc.)."""
        return [
            token.text
            for token in self.tokens
            if token.kind in (WORD, STRING, NUMBER)
        ]


def segment_clause(
    clause: GenericClause,
    decltype: str,
    table: KeywordTable,
) -> List[Subclause]:
    """Split a clause's tokens into keyword-led subclauses.

    The first token must be a keyword valid in *decltype*; subsequent
    tokens open a new subclause whenever they are a continuation keyword of
    this decltype *outside* any parentheses.
    """
    tokens = clause.tokens
    first = tokens[0]
    entry = table.lookup(first.text, decltype) if first.kind == WORD else None
    if entry is None or not entry.starts_clause:
        known = ", ".join(
            keyword
            for keyword in table.keywords_for(decltype)
            if (found := table.lookup(keyword, decltype)) and found.starts_clause
        )
        raise NmslSemanticError(
            f"clause does not start with a keyword valid in a {decltype} "
            f"specification (found {first.text!r}; expected one of: {known})",
            first.location,
        )
    subclauses: List[Subclause] = [Subclause(first.text, [])]
    depth = 0
    for token in tokens[1:]:
        if token.kind == PUNCT and token.text in "([{":
            depth += 1
        elif token.kind == PUNCT and token.text in ")]}":
            depth -= 1
        if (
            depth == 0
            and token.kind == WORD
            and table.is_keyword(token.text, decltype)
        ):
            subclauses.append(Subclause(token.text, []))
            continue
        subclauses[-1].tokens.append(token)
    return subclauses


# ----------------------------------------------------------------------
# Output-specific action registry.
# ----------------------------------------------------------------------

#: An output action renders one typed spec into output text chunks.
#: Signature: action(context, spec) -> str | None.
OutputAction = Callable[["OutputContext", object], Optional[str]]


@dataclass
class OutputContext:
    """What an output action may consult while rendering."""

    specification: object  # repro.nmsl.specs.Specification
    declaration: Optional[Declaration] = None
    options: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class OutputEntry:
    tag: str
    decltype: str
    action: OutputAction


class OutputRegistry:
    """Ordered (tag, decltype) → action table; extensions prepend.

    Matching is first-entry-wins, which yields the paper's override
    semantics: an extension action with the same tag and decltype shadows
    the basic one, while other tags keep their basic actions.
    """

    def __init__(self):
        self._entries: List[OutputEntry] = []

    def register(self, tag: str, decltype: str, action: OutputAction) -> None:
        """Append a basic-language action."""
        self._entries.append(OutputEntry(tag, decltype, action))

    def prepend(self, tag: str, decltype: str, action: OutputAction) -> None:
        """Prepend an extension action (overrides same tag+decltype)."""
        self._entries.insert(0, OutputEntry(tag, decltype, action))

    def lookup(self, tag: str, decltype: str) -> Optional[OutputAction]:
        for entry in self._entries:
            if entry.tag == tag and entry.decltype == decltype:
                return entry.action
        return None

    def tags(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for entry in self._entries:
            if entry.tag not in seen:
                seen.append(entry.tag)
        return tuple(seen)

    def copy(self) -> "OutputRegistry":
        duplicate = OutputRegistry()
        duplicate._entries = list(self._entries)
        return duplicate
