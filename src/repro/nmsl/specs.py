"""The typed specification model built by pass 2.

These dataclasses mirror the four specification kinds of paper Section 4.1
plus the whole-specification container.  They are produced from generalized
declarations by the generic actions in :mod:`repro.nmsl.actions` and
consumed by the consistency checker and the configuration generators.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.asn1.nodes import Asn1Type
from repro.errors import NmslSemanticError, SourceLocation
from repro.mib.tree import Access
from repro.nmsl.frequency import FrequencySpec

#: The wildcard parameter value written ``*`` in the paper (Figure 4.8).
WILDCARD = "*"

ParamValue = Union[str, int, float]


def _cached_fingerprint(spec, compute) -> Tuple:
    """Memoize a declaration's fingerprint tuple on the instance.

    Declaration objects are treated as immutable values once
    fingerprinted: the supported mutation idiom (used throughout the
    tests and the evolution API) replaces the declaration object in the
    specification table via :func:`dataclasses.replace`, which produces
    a fresh object with an empty cache.  This turns the whole-spec
    fingerprint from O(declaration size) per declaration per check into
    a dict lookup, which the paper-scale checker depends on.
    """
    got = spec.__dict__.get("_fingerprint_cache")
    if got is None:
        got = compute()
        spec.__dict__["_fingerprint_cache"] = got
    return got


@dataclass
class TypeSpec:
    """A ``type`` specification: named ASN.1 type plus access mode.

    ``access`` of None means "inherited from a containing type" (paper
    Section 4.1.2).
    """

    name: str
    asn1_type: Asn1Type
    access: Optional[Access] = None
    location: SourceLocation = field(default_factory=SourceLocation)

    def fingerprint_tuple(self) -> Tuple:
        """A hashable value-summary of this declaration (see module note)."""
        return _cached_fingerprint(
            self,
            lambda: ("type", self.name, repr(self.asn1_type), self.access),
        )


@dataclass
class QuerySpec:
    """One ``queries`` clause of a process specification.

    ``target`` is either a parameter name of the enclosing process (bound
    at instantiation) or a literal process/domain name.  ``requests`` are
    MIB name paths; ``using`` are selection assignments path := value.

    The paper's full language supports three interaction kinds (Section
    4.1.3): retrievals (``requests``, read access), modifications
    (``modifies``, read-write access) and remote execution (``executes``,
    any access); ``kind`` records which was written.
    """

    target: str
    requests: Tuple[str, ...]
    using: Tuple[Tuple[str, str], ...] = ()
    frequency: FrequencySpec = field(default_factory=FrequencySpec.unconstrained)
    access: Access = Access.READ_ONLY
    kind: str = "requests"  # "requests" | "modifies" | "executes"
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class ProxySpec:
    """A ``proxies`` clause: this process answers for another element.

    Proxies exist because "some network elements cannot respond to
    management queries directly" (paper Section 3.1) — LAN bridges without
    high-level protocols, or protected systems.  ``protocol`` names the
    proxy-side protocol the translation uses (the ``via`` subclause).
    """

    target_system: str
    protocol: str = ""
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class ExportSpec:
    """An ``exports`` clause: permission for a domain to access variables."""

    variables: Tuple[str, ...]
    to_domain: str
    access: Access = Access.READ_ONLY
    frequency: FrequencySpec = field(default_factory=FrequencySpec.unconstrained)
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class ProcessSpec:
    """A ``process`` specification (an abstraction, instantiated later)."""

    name: str
    params: Tuple[Tuple[str, str], ...] = ()  # (param name, type name)
    supports: Tuple[str, ...] = ()
    exports: Tuple[ExportSpec, ...] = ()
    queries: Tuple[QuerySpec, ...] = ()
    proxies: Tuple[ProxySpec, ...] = ()
    location: SourceLocation = field(default_factory=SourceLocation)

    def is_agent(self) -> bool:
        """Agents store data and answer queries (paper footnote 1)."""
        return bool(self.supports)

    def is_application(self) -> bool:
        """Applications initiate queries but store no data."""
        return bool(self.queries) and not self.supports

    def is_proxy(self) -> bool:
        """Proxies answer management queries on behalf of other elements."""
        return bool(self.proxies)

    def proxied_systems(self) -> Tuple[str, ...]:
        return tuple(proxy.target_system for proxy in self.proxies)

    def param_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _type in self.params)

    def fingerprint_tuple(self) -> Tuple:
        return _cached_fingerprint(self, self._fingerprint)

    def _fingerprint(self) -> Tuple:
        return (
            "process",
            self.name,
            self.params,
            tuple(sorted(self.supports)),
            tuple(
                (e.variables, e.to_domain, e.access, e.frequency.as_tuple())
                for e in self.exports
            ),
            tuple(
                (q.target, q.requests, q.using, q.kind, q.access,
                 q.frequency.as_tuple())
                for q in self.queries
            ),
            tuple((p.target_system, p.protocol) for p in self.proxies),
        )


@dataclass
class ProcessInvocation:
    """A process instantiation in a system or domain specification.

    ``args`` holds literal values or :data:`WILDCARD` for values set at
    run time (paper Figure 4.8 uses ``snmpaddr(*, *)``).
    """

    process_name: str
    args: Tuple[ParamValue, ...] = ()
    location: SourceLocation = field(default_factory=SourceLocation)

    def describe(self) -> str:
        if not self.args:
            return self.process_name
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.process_name}({inner})"


@dataclass
class InterfaceSpec:
    """One network interface of a network element (paper Figure 4.5)."""

    name: str
    network: str
    if_type: str = ""
    speed_bps: int = 0
    protocols: Tuple[str, ...] = ()
    location: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class SystemSpec:
    """A ``system`` (network element) specification."""

    name: str
    cpu: str = ""
    interfaces: Tuple[InterfaceSpec, ...] = ()
    opsys: str = ""
    opsys_version: str = ""
    supports: Tuple[str, ...] = ()
    processes: Tuple[ProcessInvocation, ...] = ()
    location: SourceLocation = field(default_factory=SourceLocation)

    def networks(self) -> Tuple[str, ...]:
        return tuple(interface.network for interface in self.interfaces)

    def total_speed_bps(self) -> int:
        return sum(interface.speed_bps for interface in self.interfaces)

    def fingerprint_tuple(self) -> Tuple:
        return _cached_fingerprint(self, self._fingerprint)

    def _fingerprint(self) -> Tuple:
        return (
            "system",
            self.name,
            self.cpu,
            self.opsys,
            self.opsys_version,
            tuple(
                (i.name, i.network, i.if_type, i.speed_bps, i.protocols)
                for i in self.interfaces
            ),
            tuple(sorted(self.supports)),
            tuple((p.process_name, p.args) for p in self.processes),
        )


@dataclass
class DomainSpec:
    """A ``domain`` specification: administrative grouping + permissions."""

    name: str
    systems: Tuple[str, ...] = ()
    subdomains: Tuple[str, ...] = ()
    processes: Tuple[ProcessInvocation, ...] = ()
    exports: Tuple[ExportSpec, ...] = ()
    location: SourceLocation = field(default_factory=SourceLocation)

    def member_names(self) -> Tuple[str, ...]:
        return self.systems + self.subdomains

    def fingerprint_tuple(self) -> Tuple:
        return _cached_fingerprint(self, self._fingerprint)

    def _fingerprint(self) -> Tuple:
        return (
            "domain",
            self.name,
            tuple(sorted(self.systems)),
            tuple(sorted(self.subdomains)),
            tuple((p.process_name, p.args) for p in self.processes),
            tuple(
                (e.variables, e.to_domain, e.access, e.frequency.as_tuple())
                for e in self.exports
            ),
        )


#: The name of the implicit domain every internet exports to.
PUBLIC_DOMAIN = "public"


@dataclass
class Specification:
    """A complete NMSL specification: every declaration, indexed by name.

    ``extras`` holds whole declarations of extension-defined decltypes;
    ``extension_clauses`` holds extension-keyword clauses found inside
    basic declarations, keyed by (decltype, declaration name).
    """

    types: Dict[str, TypeSpec] = field(default_factory=dict)
    processes: Dict[str, ProcessSpec] = field(default_factory=dict)
    systems: Dict[str, SystemSpec] = field(default_factory=dict)
    domains: Dict[str, DomainSpec] = field(default_factory=dict)
    extras: Dict[str, List[object]] = field(default_factory=dict)
    extension_clauses: Dict[Tuple[str, str], List[Tuple[str, Tuple[str, ...]]]] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------
    # Registration (used by the generic actions).
    # ------------------------------------------------------------------
    def add_type(self, spec: TypeSpec) -> None:
        self._add(self.types, spec.name, spec, "type")
        self._forget_fingerprint("types")

    def add_process(self, spec: ProcessSpec) -> None:
        self._add(self.processes, spec.name, spec, "process")
        self._forget_fingerprint("processes")

    def add_system(self, spec: SystemSpec) -> None:
        self._add(self.systems, spec.name, spec, "system")
        self._forget_fingerprint("systems")

    def add_domain(self, spec: DomainSpec) -> None:
        self._add(self.domains, spec.name, spec, "domain")
        self._forget_fingerprint("domains")

    def _forget_fingerprint(self, name: str) -> None:
        self._table_fingerprints.pop(name, None)

    @staticmethod
    def _add(table: Dict, name: str, spec, kind: str) -> None:
        if name in table:
            raise NmslSemanticError(
                f"duplicate {kind} specification {name!r}", spec.location
            )
        table[name] = spec

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------
    def process_named(self, name: str) -> ProcessSpec:
        if name not in self.processes:
            raise NmslSemanticError(f"unknown process {name!r}")
        return self.processes[name]

    def system_named(self, name: str) -> SystemSpec:
        if name not in self.systems:
            raise NmslSemanticError(f"unknown system {name!r}")
        return self.systems[name]

    def domain_named(self, name: str) -> DomainSpec:
        if name not in self.domains:
            raise NmslSemanticError(f"unknown domain {name!r}")
        return self.domains[name]

    def domains_containing_system(self, system_name: str) -> List[DomainSpec]:
        return [
            domain
            for domain in self.domains.values()
            if system_name in domain.systems
        ]

    def merged_with(self, other: "Specification") -> "Specification":
        """A new specification combining both (duplicate names rejected)."""
        merged = Specification()
        for source in (self, other):
            for spec in source.types.values():
                merged.add_type(spec)
            for spec in source.processes.values():
                merged.add_process(spec)
            for spec in source.systems.values():
                merged.add_system(spec)
            for spec in source.domains.values():
                merged.add_domain(spec)
        return merged

    # ------------------------------------------------------------------
    # Fingerprints (stale-cache keys for the consistency engine).
    # ------------------------------------------------------------------
    def fingerprint(self) -> int:
        """A process-local fingerprint of the whole specification.

        Two specifications with equal declaration *values* fingerprint
        equally even when the objects differ; replacing, adding or
        removing declarations in the tables changes the fingerprint.
        The consistency engine keys its fact and view caches on this,
        so callers may mutate a specification between checks and the
        next check sees the change.  Mutation granularity is the
        declaration object: replace table entries (the
        ``dataclasses.replace`` idiom) rather than mutating a
        declaration's fields in place after it has been checked.
        (Process-local: built on ``hash``, so not stable across
        interpreter runs.)
        """
        return hash(self.fingerprint_tuple())

    # Per-table fingerprint memo: table name -> (identity signature,
    # fingerprint tuple).  The signature is a cheap one-pass function of
    # the table's entry identities, so a 100,000-system internet whose
    # delta touched only a domain re-sorts and re-fingerprints only the
    # domain table.
    #: name -> (signature, fingerprint tuple, sorted entry names).  The
    #: signature is recomputed on *every* lookup — it is the mechanism
    #: that makes in-place table mutation visible — but it is one
    #: ``id()`` per entry, while re-deriving the fingerprint would sort
    #: and walk every declaration.  The sorted names ride along so an
    #: exports-only patch can splice one entry's fingerprint by binary
    #: search instead of rebuilding a 10,000-element tuple from the
    #: table.
    _table_fingerprints: Dict[
        str, Tuple[Tuple[int, int], Tuple, Tuple[str, ...]]
    ] = field(default_factory=dict, repr=False, compare=False, init=False)

    def adopt_fingerprints(self, other: "Specification") -> None:
        """Seed this specification's table-fingerprint memo from *other*.

        For every table whose entry identities match *other*'s memoized
        signature the cached fingerprint carries over — so a clone that
        shares three of four tables with its parent re-fingerprints only
        the table it replaced.  Safe unconditionally: entries that do
        not match are simply recomputed on demand.
        """
        for name, table in (
            ("types", self.types),
            ("processes", self.processes),
            ("systems", self.systems),
            ("domains", self.domains),
        ):
            if name in self._table_fingerprints:
                continue
            cached = other._table_fingerprints.get(name)
            if cached is not None and self._table_signature(table) == cached[0]:
                self._table_fingerprints[name] = cached

    def adopt_patched_fingerprints(
        self, other: "Specification", changed_domains: Iterable[str]
    ) -> None:
        """Seed the memo when only the named domain entries changed.

        The caller (the checker's exports-only patch) has already proved
        that types/processes/systems hold identical entry objects and
        that the domain table differs from *other*'s exactly in
        ``changed_domains`` (same key set, entries replaced).  Identical
        entry objects have an identical identity-signature, so those
        memo entries copy over verbatim; the domains fingerprint is the
        parent's with the changed positions spliced — no table walk.
        """
        for name in ("types", "processes", "systems"):
            cached = other._table_fingerprints.get(name)
            if cached is not None and name not in self._table_fingerprints:
                self._table_fingerprints[name] = cached
        cached = other._table_fingerprints.get("domains")
        if cached is None:
            return
        _signature, fingerprints, names = cached
        spliced = list(fingerprints)
        for domain_name in changed_domains:
            position = bisect_left(names, domain_name)
            spliced[position] = self.domains[domain_name].fingerprint_tuple()
        self._table_fingerprints["domains"] = (
            self._table_signature(self.domains),
            tuple(spliced),
            names,
        )

    @staticmethod
    def _table_signature(table: Dict) -> Tuple[int, int]:
        signature = 0
        for spec in table.values():
            signature ^= id(spec)
        return (len(table), signature)

    def _table_fingerprint(self, name: str, table: Dict) -> Tuple:
        signature = self._table_signature(table)
        cached = self._table_fingerprints.get(name)
        if cached is not None and cached[0] == signature:
            return cached[1]
        entries = sorted(table.items())
        fingerprint = tuple(spec.fingerprint_tuple() for _name, spec in entries)
        self._table_fingerprints[name] = (
            signature,
            fingerprint,
            tuple(entry_name for entry_name, _spec in entries),
        )
        return fingerprint

    def fingerprint_tuple(self) -> Tuple:
        return (
            self._table_fingerprint("types", self.types),
            self._table_fingerprint("processes", self.processes),
            self._table_fingerprint("systems", self.systems),
            self._table_fingerprint("domains", self.domains),
            tuple(
                (name, tuple(repr(item) for item in items))
                for name, items in sorted(self.extras.items())
            ),
            tuple(
                (key, tuple(clauses))
                for key, clauses in sorted(self.extension_clauses.items())
            ),
        )

    def counts(self) -> Dict[str, int]:
        return {
            "types": len(self.types),
            "processes": len(self.processes),
            "systems": len(self.systems),
            "domains": len(self.domains),
        }
