"""The built-in analysis passes.

Code families:

* ``NM101`` unused-process, ``NM102`` unmanaged-element, ``NM103``
  dead-extension-entry — specification hygiene;
* ``NM201`` unused-permission, ``NM202`` overbroad-grant, ``NM203``
  shadowed-permission, ``NM204`` transitive-overbroad-reach — the
  permission analyses over the paper's ``perm_eq`` facts;
* ``NM301`` frequency-budget-overload, ``NM302`` type-access-mismatch —
  the frequency/type analyses.

NM101/NM102/NM201/NM202 are the four passes migrated from the seed
linter (``repro.consistency.lint`` remains as a compatibility shim over
them); the other five are new in this framework.  Every pass yields
:class:`Diagnostic` values anchored at the declaring clause's
:class:`SourceLocation`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.consistency.facts import FactSet, InstanceId
from repro.consistency.relations import (
    Permission,
    Reference,
    permission_covers,
)
from repro.mib.tree import Access, MibTree
from repro.nmsl.actions import BASE_DECLTYPES, KeywordTable
from repro.nmsl.outputs import EPILOGUE
from repro.nmsl.specs import ExportSpec
from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import AnalysisPass, PassRegistry

#: Average management query cost in bits — matches the consistency
#: checker's capacity heuristic (paper Section 4.1.4).
BITS_PER_QUERY = 8192.0

#: Fraction of an element's interface budget management traffic may use.
BUDGET_FRACTION = 0.1

#: Clause-starting keywords consumed by the base grammar per decltype: a
#: clause-level extension action bound to one of these can never fire,
#: because the generic actions handle the clause before the extension
#: storage sees it (see ``SpecificationBuilder._handle_extra_clause``).
_BASE_HANDLED: Dict[str, Set[str]] = {
    "type": {"access"},
    "process": {"supports", "exports", "queries", "proxies"},
    "system": {"cpu", "interface", "opsys", "supports", "process"},
    "domain": {"system", "domain", "process", "exports"},
}


# ----------------------------------------------------------------------
# NM1xx — hygiene.
# ----------------------------------------------------------------------
def _unused_processes(
    rule: AnalysisPass, context: AnalysisContext
) -> Iterator[Diagnostic]:
    instantiated = {
        instance.process_name for instance in context.facts.instances
    }
    for name, process in sorted(context.specification.processes.items()):
        if name in instantiated:
            continue
        yield rule.diagnostic(
            subject=name,
            message=(
                "specified but never instantiated on any system or domain"
            ),
            location=process.location,
            suggestion=(
                "instantiate the process on a system or domain, or delete "
                "the specification"
            ),
        )


def _unmanaged_elements(
    rule: AnalysisPass, context: AnalysisContext
) -> Iterator[Diagnostic]:
    facts = context.facts
    spec = context.specification
    for system_name, system in sorted(spec.systems.items()):
        agents = [
            instance
            for instance in facts.instances_on_system(system_name)
            if spec.processes[instance.process_name].is_agent()
        ]
        if agents or facts.proxies_for_system(system_name):
            continue
        yield rule.diagnostic(
            subject=system_name,
            message=(
                "no agent process and no proxy: management queries cannot "
                "be answered for this element"
            ),
            location=system.location,
            suggestion=(
                "run an agent process on the element or declare a proxy "
                "process for it"
            ),
        )


def _dead_extension_entries(
    rule: AnalysisPass, context: AnalysisContext
) -> Iterator[Diagnostic]:
    """Extension-table rows that can never fire against the base grammar."""
    if not context.extensions:
        return
    table = context.keyword_table
    if table is None:
        table = KeywordTable()
        for extension in context.extensions:
            for entry in extension.keywords:
                table.prepend(entry)
    known_decltypes = set(BASE_DECLTYPES)
    known_decltypes.update(context.extension_decltypes)
    for extension in context.extensions:
        known_decltypes.update(extension.decltypes)
    for position, extension in enumerate(context.extensions):
        where = None
        if position < len(context.extension_files):
            from repro.errors import SourceLocation

            where = SourceLocation(context.extension_files[position])
        subject = f"extension {extension.name}"
        for entry in extension.keywords:
            live = [d for d in entry.decltypes if d in known_decltypes]
            if not live:
                yield rule.diagnostic(
                    subject=subject,
                    message=(
                        f"keyword {entry.keyword!r} is declared only for "
                        f"unknown specification type(s) "
                        f"{', '.join(sorted(entry.decltypes))}: no "
                        "declaration can ever contain it"
                    ),
                    location=where,
                    suggestion=(
                        "declare the decltype with a 'decltype' statement "
                        "or correct the keyword's decltype list"
                    ),
                )
        for action in extension.actions:
            if action.decltype == EPILOGUE:
                continue
            label = (
                f"output action {action.tag!r} for "
                f"{action.decltype}.{action.keyword}"
                if action.keyword
                else f"output action {action.tag!r} for {action.decltype}"
            )
            if action.decltype not in known_decltypes:
                yield rule.diagnostic(
                    subject=subject,
                    message=(
                        f"{label} names unknown specification type "
                        f"{action.decltype!r}: the action can never run"
                    ),
                    location=where,
                    suggestion="declare the decltype or fix the action row",
                )
                continue
            if action.keyword is None:
                continue
            entry = table.lookup(action.keyword, action.decltype)
            if entry is None:
                yield rule.diagnostic(
                    subject=subject,
                    message=(
                        f"{label} refers to keyword {action.keyword!r} "
                        f"which is not registered for "
                        f"{action.decltype!r} declarations"
                    ),
                    location=where,
                    suggestion=(
                        f"add 'keyword {action.keyword} in "
                        f"{action.decltype};' to the extension"
                    ),
                )
            elif not entry.starts_clause:
                yield rule.diagnostic(
                    subject=subject,
                    message=(
                        f"{label} is bound to continuation keyword "
                        f"{action.keyword!r}: the base grammar only "
                        "produces it inside another clause, so the clause "
                        "action never fires"
                    ),
                    location=where,
                    suggestion="bind the action to a clause-starting keyword",
                )
            elif (
                action.decltype in _BASE_HANDLED
                and action.keyword in _BASE_HANDLED[action.decltype]
            ):
                yield rule.diagnostic(
                    subject=subject,
                    message=(
                        f"{label} is bound to base-grammar keyword "
                        f"{action.keyword!r}: the generic actions consume "
                        "the clause, so it is never stored for extension "
                        "rendering"
                    ),
                    location=where,
                    suggestion=(
                        "use a new keyword, or a declaration-level action "
                        "(no keyword) to override the output for the "
                        "whole declaration"
                    ),
                )


# ----------------------------------------------------------------------
# NM2xx — permissions.
# ----------------------------------------------------------------------
def _export_owners(
    context: AnalysisContext,
) -> Iterator[Tuple[str, ExportSpec]]:
    """(subject, export) for every export declaration with live grantors.

    Process exports only materialize as permissions once the process is
    instantiated; uninstantiated processes are already NM101 findings, so
    their exports are skipped here rather than double-reported.
    """
    facts = context.facts
    for name, process in sorted(context.specification.processes.items()):
        if not process.exports or not facts.instances_of_process(name):
            continue
        for export in process.exports:
            yield f"process {name}", export
    for name, domain in sorted(context.specification.domains.items()):
        for export in domain.exports:
            yield f"domain {name}", export


def _export_as_permission(
    context: AnalysisContext, subject: str, export: ExportSpec
) -> Permission:
    """A declaration-level permission value for coverage tests.

    ``permission_covers`` only consults the grantee domain, view, access
    and frequency, all of which are instance-independent, so one
    synthetic permission per export declaration suffices.
    """
    return Permission(
        grantor=subject,
        grantor_domains=(),
        grantee_domain=export.to_domain,
        variables=export.variables,
        access=export.access,
        frequency=export.frequency,
        origin=f"{subject} exports",
        location=export.location,
    )


def _unused_permissions(
    rule: AnalysisPass, context: AnalysisContext
) -> Iterator[Diagnostic]:
    facts = context.facts
    for subject, export in _export_owners(context):
        permission = _export_as_permission(context, subject, export)
        permission_view = context.view(permission.variables)
        used = any(
            permission_covers(
                reference,
                permission,
                context.view(reference.variables),
                permission_view,
                public_domain=context.public_domain,
            ).covered
            for reference in facts.references
        )
        if used:
            continue
        yield rule.diagnostic(
            subject=subject,
            message=(
                f"export of {', '.join(export.variables)} to "
                f"{export.to_domain!r} matches no specified reference"
            ),
            location=export.location,
            suggestion="remove the export or tighten it to what is queried",
        )


def _overbroad_grants(
    rule: AnalysisPass, context: AnalysisContext
) -> Iterator[Diagnostic]:
    for subject, export in _export_owners(context):
        if export.to_domain != context.public_domain:
            continue
        if not export.access.allows_write():
            continue
        yield rule.diagnostic(
            subject=subject,
            message=(
                f"exports {export.access.value} access to the public "
                "domain: any administration may modify this data"
            ),
            location=export.location,
            suggestion=(
                "export ReadOnly to the public domain and grant write "
                "access to named domains only"
            ),
        )


def _permission_key(permission: Permission) -> Tuple:
    """Identity of the *declaration* behind an instance permission."""
    return (
        permission.origin,
        permission.location,
        permission.grantee_domain,
        permission.variables,
        permission.access,
        permission.frequency.as_tuple(),
    )


def _origin_subject(permission: Permission) -> str:
    origin = permission.origin
    if origin.endswith(" exports"):
        return origin[: -len(" exports")]
    return permission.grantor


def _grantee_admits(
    facts: FactSet,
    narrow: Permission,
    broad: Permission,
    public_domain: str,
) -> bool:
    """Does *broad*'s grantee set include *narrow*'s?

    True when broad grants to the public domain, the same domain, or a
    transitive ancestor of narrow's grantee (clients of a subdomain carry
    every containing domain in ``client_domains``).
    """
    if broad.grantee_domain == public_domain:
        return True
    if broad.grantee_domain == narrow.grantee_domain:
        return True
    ancestors = facts.transitive_containment().get(
        f"domain:{narrow.grantee_domain}", set()
    )
    return f"domain:{broad.grantee_domain}" in ancestors


def _shadows(
    context: AnalysisContext,
    narrow: Permission,
    broad: Permission,
) -> bool:
    """Is every query admitted by *narrow* also admitted by *broad*?"""
    if not _grantee_admits(
        context.facts, narrow, broad, context.public_domain
    ):
        return False
    if not context.view(broad.variables).covers_view(
        context.view(narrow.variables)
    ):
        return False
    if not broad.access.permits(narrow.access):
        return False
    return narrow.frequency.covered_by(broad.frequency)


def _shadowed_permissions(
    rule: AnalysisPass, context: AnalysisContext
) -> Iterator[Diagnostic]:
    facts = context.facts
    index = context.index
    reported: Set[Tuple] = set()
    for server in facts.agents():
        permissions = index.permissions_for(server)
        for i, narrow in enumerate(permissions):
            for j, broad in enumerate(permissions):
                if i == j:
                    continue
                if not _shadows(context, narrow, broad):
                    continue
                if _shadows(context, broad, narrow):
                    continue  # mutually equivalent, not a strict shadow
                key = (_permission_key(narrow), _permission_key(broad))
                if key in reported:
                    continue
                reported.add(key)
                yield rule.diagnostic(
                    subject=_origin_subject(narrow),
                    message=(
                        f"export of {', '.join(narrow.variables)} to "
                        f"{narrow.grantee_domain!r} is wholly covered by "
                        f"the broader export of "
                        f"{', '.join(broad.variables)} to "
                        f"{broad.grantee_domain!r} at {broad.location} "
                        f"({_origin_subject(broad)})"
                    ),
                    location=narrow.location,
                    suggestion=(
                        "remove the narrower export; the broader grant "
                        "already admits every query it admits"
                    ),
                )


def _transitive_overbroad_reach(
    rule: AnalysisPass, context: AnalysisContext
) -> Iterator[Diagnostic]:
    facts = context.facts
    index = context.index
    direct_domains = facts.direct_domains_map()
    reported: Set[Tuple] = set()
    for server in facts.agents():
        direct = set(direct_domains.get(f"instance:{server.id}", ()))
        for permission in index.permissions_for(server):
            if permission.grantee_domain != context.public_domain:
                continue
            if not permission.access.allows_write():
                continue
            if permission.grantor == f"instance:{server.id}":
                continue  # the element's own export: NM202 territory
            grantor_domain = permission.grantor.split(":", 1)[1]
            if grantor_domain in direct:
                continue  # direct-domain grant, visible at the element
            key = (_permission_key(permission), server.id)
            if key in reported:
                continue
            reported.add(key)
            yield rule.diagnostic(
                subject=_origin_subject(permission),
                message=(
                    f"{permission.access.value} access to "
                    f"{', '.join(permission.variables)} exported to the "
                    f"public domain reaches agent {server.id} only through "
                    f"domain containment: the exposure is invisible in the "
                    "element's own specification"
                ),
                location=permission.location,
                suggestion=(
                    "move the grant to the element's immediate domain or "
                    "tighten the umbrella export to ReadOnly"
                ),
            )


# ----------------------------------------------------------------------
# NM3xx — frequency and types.
# ----------------------------------------------------------------------
def _candidate_instances(
    context: AnalysisContext, reference: Reference
) -> List[InstanceId]:
    """Server instances that may answer *reference* (checker's rules)."""
    facts = context.facts
    server = reference.server
    if server == "*":
        return facts.agents()
    kind, _sep, name = server.partition(":")
    if kind == "process":
        return facts.instances_of_process(name)
    if kind == "system":
        agents = [
            instance
            for instance in facts.instances_on_system(name)
            if context.specification.processes[
                instance.process_name
            ].is_agent()
        ]
        return agents or facts.proxies_for_system(name)
    if kind == "domain":
        containment = facts.transitive_containment()
        return [
            instance
            for instance in facts.agents()
            if f"domain:{name}"
            in containment.get(f"instance:{instance.id}", set())
        ]
    return []


def _frequency_budget_overload(
    rule: AnalysisPass, context: AnalysisContext
) -> Iterator[Diagnostic]:
    """Sum worst-case admitted query rates per element vs its speed.

    Per reference, the worst-case rate against a server is bounded by the
    intersection of the reference's promised interval with the admitting
    permission's required interval (``FrequencySpec.intersect``); the
    per-element sum is compared against the management share
    (:data:`BUDGET_FRACTION`) of its declared interface speed.
    """
    facts = context.facts
    index = context.index
    load: Dict[str, float] = {}
    contributors: Dict[str, int] = {}
    for reference in facts.references:
        reference_view = context.view(reference.variables)
        counted: Set[str] = set()
        for server in _candidate_instances(context, reference):
            if server.owner_kind != "system" or server.owner in counted:
                continue
            counted.add(server.owner)
            permission = index.covering_permission(
                server, reference, reference_view
            )
            effective = reference.frequency
            if permission is not None:
                effective = (
                    reference.frequency.intersect(permission.frequency)
                    or reference.frequency
                )
            rate = effective.max_rate_per_second()
            if rate == float("inf"):
                continue  # unconstrained promise: no finite bound to sum
            load[server.owner] = load.get(server.owner, 0.0) + rate
            contributors[server.owner] = contributors.get(server.owner, 0) + 1
    for system_name in sorted(load):
        system = context.specification.systems.get(system_name)
        if system is None:
            continue
        capacity = system.total_speed_bps()
        if not capacity:
            continue
        demand = load[system_name] * BITS_PER_QUERY
        budget = BUDGET_FRACTION * capacity
        if demand <= budget:
            continue
        yield rule.diagnostic(
            subject=system_name,
            message=(
                f"worst-case management load {demand:.0f} bps from "
                f"{contributors[system_name]} admitted reference(s) "
                f"exceeds {budget:.0f} bps "
                f"({BUDGET_FRACTION:.0%} of the declared {capacity} bps "
                "interface speed)"
            ),
            location=system.location,
            suggestion=(
                "lower the query frequencies, tighten the admitting "
                "exports, or raise the element's interface speed"
            ),
        )


def _has_writable_object(tree: MibTree, path: str) -> bool:
    node = tree.resolve(path)
    leaves = [node] if node.is_leaf else list(tree.leaves(node.oid))
    return not leaves or any(
        leaf.access.allows_write() for leaf in leaves
    )


def _type_access_mismatches(
    rule: AnalysisPass, context: AnalysisContext
) -> Iterator[Diagnostic]:
    tree = context.tree

    def check(subject, paths, access, location, what) -> Iterator[Diagnostic]:
        for path in paths:
            if not tree.knows(path):
                if context.is_user_type_path(path):
                    continue  # user-specified type, not MIB data
                yield rule.diagnostic(
                    subject=subject,
                    message=(
                        f"{what} names {path!r}, which is not under the "
                        "MIB registration tree: its access mode cannot be "
                        "checked"
                    ),
                    location=location,
                    severity=Severity.WARNING,
                    suggestion=(
                        "use a registered MIB path or declare the name as "
                        "a type specification"
                    ),
                )
            elif access.allows_write() and not _has_writable_object(
                tree, path
            ):
                yield rule.diagnostic(
                    subject=subject,
                    message=(
                        f"{what} needs {access.value} access to {path!r}, "
                        "but every object under that prefix is read-only "
                        "in the MIB"
                    ),
                    location=location,
                    suggestion=(
                        "target writable objects, or lower the interaction "
                        "to retrieval-only access"
                    ),
                )

    for name, process in sorted(context.specification.processes.items()):
        subject = f"process {name}"
        for query in process.queries:
            yield from check(
                subject,
                query.requests,
                query.access,
                query.location,
                f"{query.kind} clause",
            )
        for export in process.exports:
            yield from check(
                subject,
                export.variables,
                export.access,
                export.location,
                "exports clause",
            )
    for name, domain in sorted(context.specification.domains.items()):
        subject = f"domain {name}"
        for export in domain.exports:
            yield from check(
                subject,
                export.variables,
                export.access,
                export.location,
                "exports clause",
            )


# ----------------------------------------------------------------------
# Registration.
# ----------------------------------------------------------------------
def register_builtin_passes(registry: PassRegistry) -> None:
    registry.register(
        AnalysisPass(
            "NM101",
            "unused-process",
            Severity.WARNING,
            "hygiene",
            "A process specification no system or domain instantiates.",
            _unused_processes,
        )
    )
    registry.register(
        AnalysisPass(
            "NM102",
            "unmanaged-element",
            Severity.WARNING,
            "hygiene",
            "A network element with no agent process and no proxy.",
            _unmanaged_elements,
        )
    )
    registry.register(
        AnalysisPass(
            "NM103",
            "dead-extension-entry",
            Severity.WARNING,
            "hygiene",
            "An extension keyword or action row that can never fire "
            "against the base grammar.",
            _dead_extension_entries,
        )
    )
    registry.register(
        AnalysisPass(
            "NM201",
            "unused-permission",
            Severity.WARNING,
            "permissions",
            "An export no specified reference could ever use.",
            _unused_permissions,
        )
    )
    registry.register(
        AnalysisPass(
            "NM202",
            "overbroad-grant",
            Severity.ERROR,
            "permissions",
            "Write (or Any) access exported directly to the public domain.",
            _overbroad_grants,
        )
    )
    registry.register(
        AnalysisPass(
            "NM203",
            "shadowed-permission",
            Severity.WARNING,
            "permissions",
            "An export wholly covered by a strictly broader one on the "
            "same server.",
            _shadowed_permissions,
        )
    )
    registry.register(
        AnalysisPass(
            "NM204",
            "transitive-overbroad-reach",
            Severity.ERROR,
            "permissions",
            "Write (or Any) access reaching an element from the public "
            "domain through domain containment only.",
            _transitive_overbroad_reach,
        )
    )
    registry.register(
        AnalysisPass(
            "NM301",
            "frequency-budget-overload",
            Severity.ERROR,
            "frequency",
            "Worst-case admitted query rates exceeding an element's "
            "management bandwidth budget.",
            _frequency_budget_overload,
        )
    )
    registry.register(
        AnalysisPass(
            "NM302",
            "type-access-mismatch",
            Severity.ERROR,
            "type",
            "A write-capable reference or export against read-only MIB "
            "data, or a path outside the registration tree.",
            _type_access_mismatches,
        )
    )
