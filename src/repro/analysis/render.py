"""Renderers for analysis reports: text, JSON and SARIF 2.1.0.

The text form is the human CLI output (and the golden-snapshot format);
JSON is a flat machine-readable dump; SARIF 2.1.0 is the interchange
format CI systems ingest (one ``run``, one rule per registered pass,
one ``result`` per finding, baselined findings carried as external
suppressions).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.registry import AnalysisPass

TOOL_NAME = "nmslc-analyze"
TOOL_VERSION = "1.0.0"
TOOL_URI = "https://github.com/nmsl-repro/nmsl"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: AnalysisReport) -> str:
    """The human-readable form, one (or two) lines per finding."""
    if not report.diagnostics:
        return "no analysis findings"
    lines: List[str] = []
    for diagnostic in report.diagnostics:
        rendered = diagnostic.render()
        if diagnostic.suppressed:
            rendered += "  (baselined)"
        lines.append(rendered)
    lines.append(report.summary_line())
    return "\n".join(lines)


def _diagnostic_dict(diagnostic: Diagnostic) -> Dict:
    return {
        "code": diagnostic.code,
        "slug": diagnostic.slug,
        "severity": diagnostic.severity.value,
        "subject": diagnostic.subject,
        "message": diagnostic.message,
        "file": diagnostic.location.filename,
        "line": diagnostic.location.line,
        "column": diagnostic.location.column,
        "suggestion": diagnostic.suggestion,
        "suppressed": diagnostic.suppressed,
    }


def render_json(report: AnalysisReport) -> str:
    payload = {
        "tool": TOOL_NAME,
        "version": 1,
        "findings": [_diagnostic_dict(d) for d in report.diagnostics],
        "summary": report.counts(),
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def _sarif_rule(analysis_pass: AnalysisPass) -> Dict:
    return {
        "id": analysis_pass.code,
        "name": analysis_pass.slug,
        "shortDescription": {"text": analysis_pass.summary},
        "properties": {"category": analysis_pass.category},
        "defaultConfiguration": {
            "level": analysis_pass.severity.sarif_level()
        },
    }


def _artifact_uri(filename: str, base: Optional[str] = None) -> str:
    """A checkout-portable artifact URI for a diagnostic's file.

    Absolute paths are relativized against *base* (the working directory
    by default) so the same SARIF log is produced — and the same CI
    annotations resolve — no matter where the repository is checked out.
    Paths escaping the base stay absolute rather than growing ``..``
    chains that would differ per machine anyway.
    """
    if not filename:
        return filename
    if os.path.isabs(filename):
        relative = os.path.relpath(filename, base or os.getcwd())
        if not relative.startswith(".."):
            filename = relative
    return filename.replace(os.sep, "/")


def _partial_fingerprints(diagnostic: Diagnostic) -> Dict[str, str]:
    """Stable SARIF result identity: a digest of the baseline fingerprint.

    The fingerprint (code, subject, message) contains no file paths, so
    the digest survives checkouts at different absolute paths; hashing
    keeps it fixed-length and free of separator collisions.
    """
    digest = hashlib.sha256(
        "::".join(diagnostic.fingerprint()).encode("utf-8")
    ).hexdigest()
    return {"nmslFingerprint/v2": digest}


def _sarif_result(diagnostic: Diagnostic, rule_index: Dict[str, int]) -> Dict:
    message = f"{diagnostic.subject}: {diagnostic.message}"
    if diagnostic.suggestion:
        message += f" (fix: {diagnostic.suggestion})"
    result: Dict = {
        "ruleId": diagnostic.code,
        "level": diagnostic.severity.sarif_level(),
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _artifact_uri(diagnostic.location.filename)
                    },
                    "region": {
                        "startLine": diagnostic.location.line,
                        "startColumn": diagnostic.location.column,
                    },
                }
            }
        ],
        "partialFingerprints": _partial_fingerprints(diagnostic),
    }
    if diagnostic.code in rule_index:
        result["ruleIndex"] = rule_index[diagnostic.code]
    if diagnostic.suppressed:
        result["suppressions"] = [{"kind": "external"}]
    return result


def render_sarif(
    report: AnalysisReport,
    passes: Sequence[AnalysisPass] = (),
) -> str:
    """A SARIF 2.1.0 log with one run covering the whole report."""
    rules = [_sarif_rule(p) for p in passes]
    rule_index = {rule["id"]: position for position, rule in enumerate(rules)}
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": [
                    _sarif_result(d, rule_index)
                    for d in report.diagnostics
                ],
            }
        ],
    }
    return json.dumps(log, indent=2) + "\n"


def render(
    report: AnalysisReport,
    format: str = "text",
    passes: Sequence[AnalysisPass] = (),
) -> str:
    if format == "text":
        return render_text(report)
    if format == "json":
        return render_json(report)
    if format == "sarif":
        return render_sarif(report, passes)
    raise ValueError(f"unknown analysis output format {format!r}")
