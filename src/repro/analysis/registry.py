"""The analysis-pass registry.

Each pass is a named :class:`AnalysisPass`: a stable diagnostic code, a
slug, a default severity, and a function from :class:`AnalysisContext`
to an iterable of :class:`Diagnostic` findings.  The registry runs a
selected subset (or all) of its passes and returns a deterministic
:class:`AnalysisReport`: findings are de-duplicated on (fingerprint,
location) and sorted by source position, so two runs over the same
specification produce byte-identical output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SourceLocation
from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity

PassFunction = Callable[["AnalysisPass", AnalysisContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class AnalysisPass:
    """One registered analysis pass."""

    code: str  # "NM101"
    slug: str  # "unused-process"
    severity: Severity  # default severity of this pass's findings
    category: str  # "hygiene" | "permissions" | "frequency" | "type"
    summary: str  # one-line rule description (shown in SARIF rules)
    run: PassFunction

    def diagnostic(
        self,
        subject: str,
        message: str,
        location: Optional[SourceLocation] = None,
        severity: Optional[Severity] = None,
        suggestion: str = "",
    ) -> Diagnostic:
        """A finding of this pass (severity defaults to the pass's)."""
        return Diagnostic(
            code=self.code,
            slug=self.slug,
            severity=severity or self.severity,
            subject=subject,
            message=message,
            location=location or SourceLocation(),
            suggestion=suggestion,
        )


class PassRegistry:
    """Ordered collection of analysis passes, keyed by code."""

    def __init__(self) -> None:
        self._passes: Dict[str, AnalysisPass] = {}

    def register(self, analysis_pass: AnalysisPass) -> AnalysisPass:
        if analysis_pass.code in self._passes:
            raise ValueError(
                f"duplicate analysis pass code {analysis_pass.code!r}"
            )
        self._passes[analysis_pass.code] = analysis_pass
        return analysis_pass

    def passes(
        self, codes: Optional[Sequence[str]] = None
    ) -> Tuple[AnalysisPass, ...]:
        if codes is None:
            return tuple(self._passes.values())
        unknown = [code for code in codes if code not in self._passes]
        if unknown:
            known = ", ".join(sorted(self._passes))
            raise KeyError(
                f"unknown diagnostic code(s) {', '.join(unknown)} "
                f"(known: {known})"
            )
        wanted = set(codes)
        return tuple(p for p in self._passes.values() if p.code in wanted)

    def pass_for(self, code: str) -> AnalysisPass:
        return self._passes[code]

    def run(
        self,
        context: AnalysisContext,
        codes: Optional[Sequence[str]] = None,
    ) -> AnalysisReport:
        """Run the selected passes and return a deterministic report."""
        findings: List[Diagnostic] = []
        seen: set = set()
        for analysis_pass in self.passes(codes):
            for diagnostic in analysis_pass.run(analysis_pass, context):
                key = (diagnostic.fingerprint(), diagnostic.location)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(diagnostic)
        findings.sort(key=Diagnostic.sort_key)
        return AnalysisReport(findings)


def default_registry() -> PassRegistry:
    """A fresh registry holding every built-in pass."""
    from repro.analysis.passes import register_builtin_passes

    registry = PassRegistry()
    register_builtin_passes(registry)
    return registry
