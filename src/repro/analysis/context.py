"""Shared analysis state handed to every pass.

An :class:`AnalysisContext` wraps one compiled specification plus the MIB
tree and lazily derives the expensive structures the semantic passes
share: the consistency :class:`FactSet`, interned :class:`MibView`
objects, and the PR-1 :class:`PermissionIndex`.  Building the context is
cheap; each derived structure is computed on first use and reused by all
passes in the run.

Extension-table information (``extensions``, ``keyword_table``,
``extension_decltypes``) is optional: it is present when the context is
built through :meth:`repro.nmsl.compiler.NmslCompiler.analysis_context`
and absent for bare ``Specification`` objects, in which case the
dead-extension pass simply has nothing to analyze.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.consistency.facts import FactGenerator, FactSet
from repro.consistency.index import PermissionIndex
from repro.mib.tree import MibTree
from repro.mib.view import MibView
from repro.nmsl.actions import KeywordTable
from repro.nmsl.extension import Extension
from repro.nmsl.specs import PUBLIC_DOMAIN, Specification


@dataclass
class AnalysisContext:
    """Everything an analysis pass may consult."""

    specification: Specification
    tree: MibTree
    filename: str = "<nmsl>"
    public_domain: str = PUBLIC_DOMAIN
    extensions: Tuple[Extension, ...] = ()
    extension_files: Tuple[str, ...] = ()
    extension_decltypes: Tuple[str, ...] = ()
    keyword_table: Optional[KeywordTable] = None

    _facts: Optional[FactSet] = field(default=None, init=False, repr=False)
    _index: Optional[PermissionIndex] = field(
        default=None, init=False, repr=False
    )
    _views: Dict[Tuple[str, ...], MibView] = field(
        default_factory=dict, init=False, repr=False
    )

    @property
    def facts(self) -> FactSet:
        if self._facts is None:
            self._facts = FactGenerator(
                self.specification, self.tree, view_of=self.view
            ).generate()
        return self._facts

    @property
    def index(self) -> PermissionIndex:
        if self._index is None:
            self._index = PermissionIndex(
                self.facts, self.view, self.public_domain
            )
        return self._index

    def view(self, paths: Sequence[str]) -> MibView:
        """The interned view for a paths-tuple (unknown paths dropped)."""
        key = tuple(paths)
        got = self._views.get(key)
        if got is None:
            got = MibView(
                self.tree, [path for path in key if self.tree.knows(path)]
            )
            self._views[key] = got
        return got

    def is_user_type_path(self, path: str) -> bool:
        """Does *path* name a user-specified type rather than MIB data?

        Mirrors the compiler's lookup rule (paper Figure 4.2 defines
        ``ipAddrTable`` as a type of its own): the head segment or the
        whole path may name a ``type`` specification.
        """
        head = path.split(".")[0]
        types = self.specification.types
        return head in types or path in types
