"""Baseline suppression for analysis findings.

A baseline file freezes the currently-known findings of a specification
corpus: the CI gate then fails only on findings *not* in the baseline,
so a new rule (or a newly sharpened one) can land without first fixing
every historical finding.

Entries are matched on :meth:`Diagnostic.fingerprint` — (code, subject,
message) — deliberately ignoring line/column, so edits that merely move
a declaration do not invalidate the baseline.  The file is JSON with
human-reviewable entries::

    {
      "schema": 1,
      "tool": "nmslc-analyze",
      "suppressions": [
        {"code": "NM201", "subject": "process snmpAgent",
         "message": "export of ... matches no specified reference"}
      ]
    }

Files written before the ``schema`` field existed are read as schema 1;
unknown schemas are rejected with a :class:`BaselineError`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import FrozenSet, Iterable, List, Tuple, Union

from repro.analysis.diagnostics import AnalysisReport, Diagnostic

Fingerprint = Tuple[str, str, str]


class BaselineError(ValueError):
    """Malformed baseline file."""


class Baseline:
    """A set of suppressed finding fingerprints."""

    #: Baseline file schema this build reads and writes.  Files written
    #: before the field existed are treated as schema 1; anything else is
    #: rejected outright — silently ignoring a future schema would
    #: un-suppress (or worse, over-suppress) findings.
    SCHEMA = 1
    #: The tool whose findings this baseline suppresses; subclasses (the
    #: diff waiver) override it so files cannot be cross-wired.
    TOOL = "nmslc-analyze"

    def __init__(self, fingerprints: Iterable[Fingerprint] = ()):
        self._fingerprints: FrozenSet[Fingerprint] = frozenset(fingerprints)

    def __len__(self) -> int:
        return len(self._fingerprints)

    def __contains__(self, diagnostic: Diagnostic) -> bool:
        return diagnostic.fingerprint() in self._fingerprints

    @classmethod
    def from_report(cls, report: AnalysisReport) -> "Baseline":
        return cls(d.fingerprint() for d in report.diagnostics)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
        if not isinstance(payload, dict) or "suppressions" not in payload:
            raise BaselineError(
                f"{path}: expected an object with a 'suppressions' list"
            )
        schema = payload.get("schema", payload.get("version", cls.SCHEMA))
        if schema != cls.SCHEMA:
            raise BaselineError(
                f"{path}: unsupported baseline schema {schema!r} "
                f"(this build supports schema {cls.SCHEMA})"
            )
        tool = payload.get("tool")
        if tool is not None and tool != cls.TOOL:
            raise BaselineError(
                f"{path}: baseline written by {tool!r}, expected {cls.TOOL!r}"
            )
        fingerprints: List[Fingerprint] = []
        for entry in payload["suppressions"]:
            try:
                fingerprints.append(
                    (entry["code"], entry["subject"], entry["message"])
                )
            except (TypeError, KeyError) as exc:
                raise BaselineError(
                    f"{path}: suppression entries need code/subject/message"
                ) from exc
        return cls(fingerprints)

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "schema": self.SCHEMA,
            "version": self.SCHEMA,  # legacy readers predating "schema"
            "tool": self.TOOL,
            "suppressions": [
                {"code": code, "subject": subject, "message": message}
                for code, subject, message in sorted(self._fingerprints)
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    def apply(self, report: AnalysisReport) -> AnalysisReport:
        """A copy of *report* with baselined findings marked suppressed."""
        return AnalysisReport(
            [
                d.with_suppressed() if d in self else d
                for d in report.diagnostics
            ]
        )
