"""The diagnostic model of the static-analysis framework.

A :class:`Diagnostic` is one finding of one analysis pass: a stable code
(``NM101``), a human slug (``unused-process``), a severity, the subject
declaration it concerns, a message, the :class:`SourceLocation` span of
the declaring clause, and an optional suggested fix.  Codes are grouped
by family:

* ``NM1xx`` — specification hygiene,
* ``NM2xx`` — permission analyses,
* ``NM3xx`` — frequency and type/access analyses.

Diagnostics are plain values: renderers (:mod:`repro.analysis.render`)
turn a report into text, JSON or SARIF, and the baseline mechanism
(:mod:`repro.analysis.baseline`) marks known findings ``suppressed``
without removing them, so counts stay honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.errors import SourceLocation


class Severity(Enum):
    """Finding severities, aligned with SARIF result levels."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    def sarif_level(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass."""

    code: str  # stable, e.g. "NM201"
    slug: str  # human name, e.g. "unused-permission"
    severity: Severity
    subject: str  # the declaration concerned, e.g. "process snmpAgent"
    message: str
    location: SourceLocation = field(default_factory=SourceLocation)
    suggestion: str = ""
    suppressed: bool = False  # baselined: reported but not gating

    def fingerprint(self) -> Tuple[str, str, str]:
        """The baseline identity of this finding.

        Deliberately excludes line/column so that unrelated edits moving
        a declaration do not invalidate the baseline entry.
        """
        return (self.code, self.subject, self.message)

    def sort_key(self) -> Tuple:
        return (
            self.location.filename,
            self.location.line,
            self.location.column,
            self.code,
            self.subject,
            self.message,
        )

    def render(self) -> str:
        line = (
            f"{self.location}: {self.severity.value} {self.code} "
            f"[{self.slug}] {self.subject}: {self.message}"
        )
        if self.suggestion:
            line += f"\n    fix: {self.suggestion}"
        return line

    def with_suppressed(self, suppressed: bool = True) -> "Diagnostic":
        return replace(self, suppressed=suppressed)


@dataclass
class AnalysisReport:
    """All findings of one analyzer run, in stable order."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    def unsuppressed(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if not d.suppressed]

    def gating(self) -> List[Diagnostic]:
        """Findings that should fail a CI gate: non-baselined errors."""
        return [
            d
            for d in self.diagnostics
            if d.severity is Severity.ERROR and not d.suppressed
        ]

    def counts(self) -> Dict[str, int]:
        counts = {
            "findings": len(self.diagnostics),
            "errors": 0,
            "warnings": 0,
            "notes": 0,
            "suppressed": 0,
        }
        plural = {
            Severity.ERROR: "errors",
            Severity.WARNING: "warnings",
            Severity.NOTE: "notes",
        }
        for diagnostic in self.diagnostics:
            counts[plural[diagnostic.severity]] += 1
            if diagnostic.suppressed:
                counts["suppressed"] += 1
        return counts

    def summary_line(self) -> str:
        counts = self.counts()
        summary = (
            f"{counts['findings']} finding(s): {counts['errors']} error(s), "
            f"{counts['warnings']} warning(s), {counts['notes']} note(s)"
        )
        if counts["suppressed"]:
            summary += f" ({counts['suppressed']} baselined)"
        return summary

    def render(self) -> str:
        from repro.analysis.render import render_text

        return render_text(self)

    def merged_with(self, other: "AnalysisReport") -> "AnalysisReport":
        """Concatenate two reports (multi-file analyzer runs)."""
        return AnalysisReport(list(self.diagnostics) + list(other.diagnostics))
