"""The NM4xx family: relational (differential) diagnostics.

Where NM1xx–NM3xx judge one specification in isolation, NM4xx judges the
**change** between two revisions, rendered from a
:class:`repro.consistency.impact.ImpactSet`:

========  ============================  ========  =============================
code      slug                          severity  fires when
========  ============================  ========  =============================
NM401     access-widened-grant          error     a B-side grant confers
                                                  authority no A-side grant of
                                                  the same grantor covered
NM402     verdict-flipped-reference     error*    a reference's consistency
                                                  verdict differs between A
                                                  and B (*broke = error,
                                                  changed = warning,
                                                  fixed = note)
NM403     config-rewrite-without-      warning    a generated configuration
          spec-cause                              changed byte-wise with no
                                                  spec-diff cause (full scan
                                                  only — generator
                                                  nondeterminism signal)
NM404     frequency-budget-tightened   warning    a grant's frequency budget
                                                  shrank (pollers may start
                                                  violating it)
NM405     orphaned-element-redrive     warning    an element removed in B
                                                  still carries an A-side
                                                  configuration
========  ============================  ========  =============================

The passes registered here carry the rule metadata (SARIF rules table,
severity defaults); their ``run`` hooks are inert because NM4xx findings
are derived from an impact set, not from a single-spec
:class:`~repro.analysis.context.AnalysisContext` — use
:func:`relational_report`.

Waivers reuse the baseline machinery verbatim (same fingerprint
identity, same suppression semantics) under a distinct ``tool`` name so
an analysis baseline cannot silently waive an access widening.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.registry import AnalysisPass, PassRegistry
from repro.consistency.impact import ImpactSet

#: Severity of an NM402 finding by flip direction.
FLIP_SEVERITY = {
    "broke": Severity.ERROR,
    "changed": Severity.WARNING,
    "fixed": Severity.NOTE,
}


def _inert(analysis_pass: AnalysisPass, context) -> Sequence[Diagnostic]:
    """NM4xx passes need two revisions; single-spec runs yield nothing."""
    return ()


def register_relational_passes(registry: PassRegistry) -> None:
    registry.register(
        AnalysisPass(
            "NM401",
            "access-widened-grant",
            Severity.ERROR,
            "relational",
            "a revised grant widens access beyond every previous grant "
            "of its grantor",
            _inert,
        )
    )
    registry.register(
        AnalysisPass(
            "NM402",
            "verdict-flipped-reference",
            Severity.ERROR,
            "relational",
            "a reference's consistency verdict differs between the two "
            "revisions",
            _inert,
        )
    )
    registry.register(
        AnalysisPass(
            "NM403",
            "config-rewrite-without-spec-cause",
            Severity.WARNING,
            "relational",
            "a generated configuration changed byte-wise with no "
            "corresponding specification change",
            _inert,
        )
    )
    registry.register(
        AnalysisPass(
            "NM404",
            "frequency-budget-tightened",
            Severity.WARNING,
            "relational",
            "a grant's permitted frequency budget shrank between the "
            "two revisions",
            _inert,
        )
    )
    registry.register(
        AnalysisPass(
            "NM405",
            "orphaned-element-redrive",
            Severity.WARNING,
            "relational",
            "an element removed from the specification still carries a "
            "previously shipped configuration",
            _inert,
        )
    )


def relational_registry() -> PassRegistry:
    """A fresh registry holding exactly the NM4xx passes."""
    registry = PassRegistry()
    register_relational_passes(registry)
    return registry


class Waiver(Baseline):
    """Explicitly approved relational findings (same file format as a
    baseline, distinct ``tool`` so the two cannot be cross-wired)."""

    TOOL = "nmslc-diff"

    @classmethod
    def from_gating(cls, report: AnalysisReport) -> "Waiver":
        """A waiver covering exactly the report's gating findings."""
        return cls(d.fingerprint() for d in report.gating())


def _grant_summary(change) -> str:
    grant = change.new or change.old
    return (
        f"to {grant.grantee_domain!r} of {', '.join(grant.variables)} "
        f"({grant.access.value}, {grant.frequency.describe()})"
    )


def _flip_message(flip) -> str:
    if flip.kind == "broke":
        lead = flip.new_problems[0]
        message = (
            f"verdict flipped consistent -> inconsistent "
            f"({len(flip.new_problems)} problem(s)); first: "
            f"[{lead.kind.value}] {lead.message}"
        )
    elif flip.kind == "fixed":
        lead = flip.old_problems[0]
        message = (
            f"verdict flipped inconsistent -> consistent (was: "
            f"[{lead.kind.value}] {lead.message})"
        )
    else:
        message = (
            f"inconsistency causes changed "
            f"({len(flip.old_problems)} -> {len(flip.new_problems)} "
            f"problem(s))"
        )
    return message


def relational_report(
    impact: ImpactSet,
    registry: Optional[PassRegistry] = None,
) -> AnalysisReport:
    """Render an impact set as NM4xx diagnostics.

    Deterministic like :meth:`PassRegistry.run`: findings de-duplicated
    on (fingerprint, location) and sorted by source position, so two
    diffs of the same revision pair are byte-identical.
    """
    registry = registry or relational_registry()
    nm401 = registry.pass_for("NM401")
    nm402 = registry.pass_for("NM402")
    nm403 = registry.pass_for("NM403")
    nm404 = registry.pass_for("NM404")
    nm405 = registry.pass_for("NM405")

    findings: List[Diagnostic] = []
    for change in impact.permission_changes:
        if change.kind == "widened":
            findings.append(
                nm401.diagnostic(
                    change.subject(),
                    f"grant {_grant_summary(change)} widens access: "
                    f"{'; '.join(change.reasons)}",
                    location=change.new.location,
                    suggestion=(
                        "waive it explicitly (nmslc diff --update-waiver) "
                        "or tighten the grant"
                    ),
                )
            )
        elif change.kind == "tightened" and "frequency" in change.dimensions:
            location = (
                change.new.location if change.new is not None
                else change.old.location
            )
            findings.append(
                nm404.diagnostic(
                    change.subject(),
                    f"frequency budget tightened for grant "
                    f"{_grant_summary(change)}: "
                    f"{'; '.join(change.reasons)}",
                    location=location,
                )
            )
    for flip in impact.verdict_flips:
        findings.append(
            nm402.diagnostic(
                f"reference {flip.reference.client} -> "
                f"{flip.reference.server}",
                _flip_message(flip),
                location=flip.reference.location,
                severity=FLIP_SEVERITY[flip.kind],
            )
        )
    for change in impact.config_changes:
        if not change.spec_caused:
            findings.append(
                nm403.diagnostic(
                    f"element {change.element}",
                    f"{change.tag} configuration rewritten "
                    f"({(change.old_digest or 'absent')[:12]} -> "
                    f"{(change.new_digest or 'absent')[:12]}) with no "
                    f"specification change naming this element",
                )
            )
    for element in impact.orphaned:
        findings.append(
            nm405.diagnostic(
                f"element {element}",
                "removed from the revised specification but still "
                "carries a shipped configuration; schedule a "
                "decommission redrive",
            )
        )

    deduped: List[Diagnostic] = []
    seen: set = set()
    for diagnostic in findings:
        key = (diagnostic.fingerprint(), diagnostic.location)
        if key in seen:
            continue
        seen.add(key)
        deduped.append(diagnostic)
    deduped.sort(key=Diagnostic.sort_key)
    return AnalysisReport(deduped)
