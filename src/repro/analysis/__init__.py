"""Static analysis of NMSL specifications.

The descriptive aspect of the paper is a whole-spec static property;
this package generalizes the seed linter into a proper analysis
framework: a :class:`Diagnostic` model with stable codes, severities and
source spans, a :class:`PassRegistry` of semantic passes, text/JSON/
SARIF 2.1.0 renderers, and a baseline-suppression file for CI gating.

Typical use::

    from repro.analysis import analyze_specification
    report = analyze_specification(result.specification, compiler.tree,
                                   filename="internet.nmsl")
    print(report.render())

or, via the compiler (carries extension-table context for NM103)::

    context = compiler.analysis_context(result)
    report = default_registry().run(context)
"""

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.registry import (
    AnalysisPass,
    PassRegistry,
    default_registry,
)
from repro.analysis.relational import (
    Waiver,
    register_relational_passes,
    relational_registry,
    relational_report,
)
from repro.analysis.render import (
    render,
    render_json,
    render_sarif,
    render_text,
)

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "AnalysisReport",
    "Baseline",
    "BaselineError",
    "Diagnostic",
    "PassRegistry",
    "Severity",
    "Waiver",
    "analyze_specification",
    "default_registry",
    "register_relational_passes",
    "relational_registry",
    "relational_report",
    "render",
    "render_json",
    "render_sarif",
    "render_text",
]


def analyze_specification(
    specification,
    tree,
    filename: str = "<nmsl>",
    codes=None,
    registry: "PassRegistry" = None,
) -> AnalysisReport:
    """Run the (selected) analysis passes over a compiled specification."""
    context = AnalysisContext(
        specification=specification, tree=tree, filename=filename
    )
    return (registry or default_registry()).run(context, codes=codes)
