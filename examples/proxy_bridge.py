#!/usr/bin/env python
"""Proxy network management (paper Section 3.1).

"Proxies are necessary because some network elements cannot respond to
management queries directly.  Such network elements include LAN bridges
that do not support high level management protocols."

A dumb bridge is specified as a network element with *no* management
process; a ``bridgeProxy`` process on a neighbouring host declares
``proxies bridge1.example via bridgeTalk``.  The consistency checker
routes references to the bridge through the proxy; the generated snmpd
configuration records the proxy relationship; and the simulator answers
queries for the bridge's data at the proxy host.

Run:  python examples/proxy_bridge.py
"""

from repro import ConsistencyChecker, NmslCompiler
from repro.netsim.processes import ManagementRuntime

SPEC = """
process bridgeProxy ::=
    supports mgmt.mib.interfaces, mgmt.mib.system;
    proxies bridge1.example via bridgeTalk;
    exports mgmt.mib.interfaces to "public"
        access ReadOnly
        frequency >= 5 minutes;
end process bridgeProxy.

process linkWatcher(Target: Process) ::=
    queries Target
        requests mgmt.mib.interfaces
        frequency >= 10 minutes;
end process linkWatcher.

system "proxyhost.example" ::=
    cpu sparc;
    interface ie0 net lab-net type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system, mgmt.mib.interfaces, mgmt.mib.ip;
    process bridgeProxy;
end system "proxyhost.example".

system "bridge1.example" ::=
    cpu z80;
    interface p0 net lab-net type ethernet-csmacd speed 10000000 bps;
    opsys firmware version 2;
    supports mgmt.mib.interfaces;
end system "bridge1.example".

system "noc.example" ::=
    cpu sparc;
    interface ie0 net lab-net type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system;
end system "noc.example".

domain lab ::=
    system proxyhost.example;
    system bridge1.example;
end domain lab.

domain noc ::=
    system noc.example;
    process linkWatcher(bridge1.example);
end domain noc.
"""


def main() -> None:
    compiler = NmslCompiler()
    result = compiler.compile(SPEC)

    print("=== consistency: the bridge is reachable only via its proxy ===")
    outcome = ConsistencyChecker(result.specification, compiler.tree).check()
    print("  " + outcome.render())

    print("\n=== without the proxy clause, the same reference is stranded ===")
    broken = compiler.compile(
        SPEC.replace("    proxies bridge1.example via bridgeTalk;\n", "")
    )
    broken_outcome = ConsistencyChecker(
        broken.specification, compiler.tree
    ).check()
    print("  " + broken_outcome.render().replace("\n", "\n  "))

    print("\n=== generated configuration records the proxy relationship ===")
    bundle = compiler.generate("BartsSnmpd", result)
    for line in bundle.unit_for("proxyhost.example").text.splitlines():
        if "proxy" in line or line.startswith(("agent", "community")):
            print("  " + line)

    print("\n=== the simulator answers for the bridge at the proxy host ===")
    runtime = ManagementRuntime(compiler, result)
    runtime.install_configuration()
    runtime.start(duration_s=3600)
    runtime.run(3600)
    print(f"  outcomes over 1h: {runtime.outcomes()}")
    (driver,) = runtime.drivers
    print(
        f"  linkWatcher's queries for {driver.data_element} were "
        f"served by {driver.target_agent.id} (community "
        f"{driver.community!r})"
    )


if __name__ == "__main__":
    main()
