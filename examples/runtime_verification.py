#!/usr/bin/env python
"""Runtime verification: is the network adhering to its specification?

The paper promises both specification and *verification* "that these
specifications are actually being adhered to in the network."  This
example closes the whole loop on the simulated internet:

1. compile the campus specification;
2. generate snmpd configuration and install it into the running agents
   (the prescriptive aspect, via the management path);
3. run eight simulated hours of management traffic;
4. verify observed inter-query intervals against the specification;
5. inject a misbehaving manager and watch both the runtime verifier and
   the installed per-community rate limits catch it — independently.

Run:  python examples/runtime_verification.py
"""

from repro import NmslCompiler
from repro.netsim.monitor import RuntimeVerifier
from repro.netsim.processes import ManagementRuntime
from repro.workloads.scenarios import campus_internet

HOURS = 8
DURATION = HOURS * 3600


def run_once(compiler, misbehaving=None, label=""):
    result = compiler.compile(campus_internet())
    runtime = ManagementRuntime(compiler, result)
    configured = runtime.install_configuration()
    overrides = {}
    if misbehaving:
        bad = next(
            driver.instance.id
            for driver in runtime.drivers
            if driver.instance.process_name == "nocMonitor"
        )
        overrides[bad] = misbehaving
    runtime.start(duration_s=DURATION, misbehaving=overrides)
    runtime.run(DURATION)

    verifier = RuntimeVerifier(runtime.specification, runtime.facts)
    report = verifier.verify(runtime.log)

    print(f"--- {label} ---")
    print(f"  agents configured: {configured}")
    print(f"  outcomes over {HOURS}h: {runtime.outcomes()}")
    print("  " + report.render().replace("\n", "\n  "))
    discrepancies = verifier.cross_check_enforcement(runtime.log, report)
    if discrepancies:
        for message in discrepancies:
            print("  cross-check:", message)
    else:
        print(
            "  cross-check: server-side enforcement and independent "
            "observation agree"
        )
    print(
        "  network load (bps):",
        {
            name: round(bps, 1)
            for name, bps in runtime.internet.utilisation_report(DURATION).items()
        },
    )
    print()


def main() -> None:
    compiler = NmslCompiler()
    run_once(compiler, label="well-behaved campus")
    run_once(
        compiler,
        misbehaving=60.0,
        label="a NOC monitor polling every 60s against its 300s promise",
    )


if __name__ == "__main__":
    main()
