#!/usr/bin/env python
"""Quickstart: the paper's own figures, end to end.

Compiles the verbatim specifications of Figures 4.2 / 4.4 / 4.6 / 4.8
(the IP address table types, the read-only SNMP agent and the snmpaddr
application, romano.cs.wisc.edu, and the wisc-cs domain), checks their
consistency both ways (closure checker and the CLP(R) engine), and prints
the snmpd configuration the prescriptive aspect generates.

Run:  python examples/quickstart.py
"""

from repro import ConsistencyChecker, NmslCompiler, check_with_clpr
from repro.workloads.paper import PAPER_SPEC_TEXT


def main() -> None:
    compiler = NmslCompiler()

    print("=== 1. compile the paper's specifications (Figures 4.2-4.8) ===")
    result = compiler.compile(PAPER_SPEC_TEXT)
    counts = result.specification.counts()
    print("   ", ", ".join(f"{count} {kind}" for kind, count in counts.items()))

    print("\n=== 2. descriptive aspect: the consistency check ===")
    checker = ConsistencyChecker(result.specification, compiler.tree)
    outcome = checker.check()
    print("   ", outcome.render())
    for warning in outcome.warnings:
        print("    note:", warning)

    print("\n=== 3. the same check through the CLP(R) engine ===")
    clpr_outcome = check_with_clpr(result.specification, compiler.tree)
    print(
        f"    CLP(R) agrees: consistent={clpr_outcome.consistent} "
        f"({clpr_outcome.stats['clauses']} clauses, "
        f"{clpr_outcome.stats['seconds']*1000:.1f} ms)"
    )

    print("\n=== 4. the compiler's consistency output (CLP(R) facts) ===")
    facts_text = compiler.generate("consistency", result).text()
    for line in facts_text.splitlines()[:10]:
        print("   ", line)
    print(f"    ... {len(facts_text.splitlines())} fact/rule lines total")

    print("\n=== 5. prescriptive aspect: generated snmpd configuration ===")
    bundle = compiler.generate("BartsSnmpd", result)
    print(bundle.unit_for("romano.cs.wisc.edu").text)


if __name__ == "__main__":
    main()
