#!/usr/bin/env python
"""The extension language (paper Section 6.3).

Adds a ``billing`` clause to process specifications via the extension
language, plus a brand-new ``organization`` specification type — then
shows the override semantics: an extension action tagged ``DavesSnmpd``
adds a new output type without disturbing the generic actions or the
``consistency`` output.

Run:  python examples/extension_demo.py
"""

from repro import CompilerOptions, NmslCompiler, parse_extension

EXTENSION_TEXT = """
-- charge-back accounting for management queries
extension billing;
keyword billing in process, domain;
decltype organization;
output consistency for process.billing emit "billing_rate({name}, {arg0}).";
output DavesSnmpd for process emit "# daves-snmpd config for {name}";
output DavesSnmpd for process.billing emit "charge {arg0} cents-per-query";
output consistency for organization emit "organization({name}).";
"""

SPEC_TEXT = """
process meteredAgent ::=
    supports mgmt.mib;
    exports mgmt.mib to "public"
        access ReadOnly
        frequency >= 5 minutes;
    billing 12;
end process meteredAgent.

organization acme ::=
    anything the basic grammar shape allows;
end organization acme.

system "billed.example.com" ::=
    cpu sparc;
    interface ie0 net lab-net type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system, mgmt.mib.ip;
    process meteredAgent;
end system "billed.example.com".
"""


def main() -> None:
    extension = parse_extension(EXTENSION_TEXT)
    print(f"=== extension {extension.name!r} ===")
    print(f"  keywords: {[entry.keyword for entry in extension.keywords]}")
    print(f"  new decltypes: {list(extension.decltypes)}")
    print(f"  actions: {[(a.tag, a.decltype, a.keyword) for a in extension.actions]}")

    compiler = NmslCompiler(CompilerOptions(extensions=(extension,)))
    result = compiler.compile(SPEC_TEXT)
    print("\n=== the extended clause parsed into the model ===")
    print("  ", result.specification.extension_clauses)

    print("\n=== consistency output now carries the billing facts ===")
    for line in compiler.generate("consistency", result).text().splitlines():
        if "billing" in line or "organization" in line:
            print("  ", line)

    print("\n=== the new DavesSnmpd output type ===")
    print(compiler.generate("DavesSnmpd", result).text())

    print("=== basic output types are untouched ===")
    snmpd = compiler.generate("BartsSnmpd", result).text()
    print(snmpd.splitlines()[0])
    print("  (BartsSnmpd still renders", len(snmpd.splitlines()), "lines)")

    print("\n=== without the extension, the same text is rejected ===")
    plain = NmslCompiler()
    try:
        plain.compile(SPEC_TEXT)
    except Exception as exc:
        first_line = str(exc).splitlines()[1] if "\n" in str(exc) else str(exc)
        print("  error:", first_line.strip())


if __name__ == "__main__":
    main()
