#!/usr/bin/env python
"""Speculative planning: connecting a new organization (paper Section 4.2).

"Consider the scenario where a network administrator is about to connect
a new organization to the internet."  The administrator writes a
specification of the new department's expected interactions and tests it
against the existing campus — forward (what-if) and in reverse (solve for
the query frequencies that keep the combined specification consistent).

Run:  python examples/speculative_planning.py
"""

from repro import NmslCompiler, SpeculativeChecker, solve_for_frequency
from repro.workloads.scenarios import campus_internet, new_organization


def main() -> None:
    compiler = NmslCompiler()
    campus = compiler.compile(campus_internet()).specification
    speculative = SpeculativeChecker(campus, compiler.tree)

    print("=== forward what-if: a polite new department (>= 15 minutes) ===")
    polite = compiler.compile(
        new_organization(query_minutes=15), strict=False
    ).specification
    outcome = speculative.check_addition(polite)
    print(
        f"  verdict: {'OK to connect' if outcome.consistent else 'DO NOT CONNECT'} "
        f"(new problems: {outcome.stats['new_problems']})"
    )
    load = speculative.estimated_new_load(polite)
    print(f"  estimated extra management traffic: {load:.1f} bits/second")

    print("\n=== forward what-if: an aggressive department (>= 1 minute) ===")
    aggressive = compiler.compile(
        new_organization(query_minutes=1), strict=False
    ).specification
    outcome = speculative.check_addition(aggressive)
    print(
        f"  verdict: {'OK to connect' if outcome.consistent else 'DO NOT CONNECT'}"
    )
    for problem in outcome.inconsistencies:
        print("  " + problem.render().replace("\n", "\n  "))

    print("\n=== reverse mode: solve for an acceptable frequency ===")
    print(
        "  premise: the combined specification is consistent; question:\n"
        "  what query periods T may the new deptPoller use against the\n"
        "  NOC's snmpAgent?"
    )
    combined = compiler.compile(
        campus_internet() + new_organization(query_minutes=15)
    ).specification
    bounds = solve_for_frequency(
        combined, compiler.tree, client_process="deptPoller",
        server_process="snmpAgent",
    )
    for bound in bounds:
        print(f"  CLP(R) answer: {bound.describe()}")
    print(
        "  (the NOC domain exports its system group to the public at a\n"
        "   10-minute floor, so any period of at least 600 seconds works)"
    )


if __name__ == "__main__":
    main()
