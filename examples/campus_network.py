#!/usr/bin/env python
"""Campus internet: finding and fixing cross-domain inconsistencies.

A campus with three administrative domains (computer science,
engineering, the NOC) under an umbrella domain.  The NOC monitors every
department element.  Two misconfigurations are introduced one at a time —
the missing-permission and frequency-conflict cases the paper's
consistency model exists to catch — then the fixed specification is
compiled into per-element snmpd configuration and shipped.

Run:  python examples/campus_network.py
"""

import tempfile
from pathlib import Path

from repro import ConsistencyChecker, ConfigurationGenerator, NmslCompiler
from repro.codegen.transport import FileDropTransport
from repro.workloads.scenarios import campus_internet


def check(compiler, text, label):
    result = compiler.compile(text)
    outcome = ConsistencyChecker(result.specification, compiler.tree).check()
    print(f"--- {label} ---")
    print(outcome.render())
    print()
    return result, outcome


def main() -> None:
    compiler = NmslCompiler()

    print("=== scenario 1: engineering forgets to export to the NOC ===")
    check(
        compiler,
        campus_internet(include_noc_permission=False),
        "engr-domain has no 'exports ... to noc-domain' clause",
    )

    print("=== scenario 2: the NOC wants to poll every minute ===")
    check(
        compiler,
        campus_internet(noc_frequency_minutes=1.0),
        "nocMonitor frequency >= 1 minute vs departments' 5-minute floor",
    )

    print("=== scenario 3: the corrected campus ===")
    result, outcome = check(compiler, campus_internet(), "both problems fixed")
    assert outcome.consistent

    print("=== shipping configuration to every element ===")
    generator = ConfigurationGenerator(compiler, result)
    spool = Path(tempfile.mkdtemp(prefix="nmsl-campus-"))
    records = generator.ship("BartsSnmpd", FileDropTransport(spool))
    for record in records:
        print(f"  {record.element:>24} -> {record.destination} ({record.octets} octets)")

    print("\n=== one element's configuration ===")
    print((spool / "gw.cs.campus.edu.conf").read_text())


if __name__ == "__main__":
    main()
