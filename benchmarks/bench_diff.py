"""SEC-diff — relational spec diff at paper scale.

The differential-verification pass must stay near-O(change): on the
10,000-domain / 100,000-system :class:`PaperScaleInternet`, diffing a
one-domain edit (``nmslc diff``'s core, minus parsing) has to complete
within ``RATIO_BUDGET`` times a warm one-domain incremental *recheck* —
the floor set by the consistency machinery itself — not within some
multiple of a full check.  The run also proves the rendered NM4xx
report is byte-identical across two independent analyzer pipelines over
the same revision pair.

Writes ``BENCH_diff.json`` (committed artifact)::

    python benchmarks/bench_diff.py            # the 10k-domain figure
    python benchmarks/bench_diff.py --quick    # 100-domain sanity run

Exits 1 when the ratio budget or the byte-identity check fails.
"""

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parents[1] / "src"))

from repro.analysis import relational_registry, relational_report, render_json
from repro.consistency.checker import ConsistencyChecker
from repro.consistency.impact import ImpactAnalyzer
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.workloads.paper import PaperScaleInternet, PaperScaleParameters

#: analyze() may cost at most this multiple of a warm one-domain recheck.
RATIO_BUDGET = 5.0

#: Domains edited for the warm-up and the measured delta.
WARMUP_DOMAIN = 250
MEASURED_DOMAIN = 500


def _drop_exports(spec, index):
    name = sorted(spec.domains)[index]
    domains = dict(spec.domains)
    domains[name] = dataclasses.replace(domains[name], exports=())
    return dataclasses.replace(spec, domains=domains)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="100-domain sanity run (does not overwrite the committed "
        "artifact unless --output says so)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="artifact path (default: BENCH_diff.json, or stdout-only "
        "with --quick)",
    )
    args = parser.parse_args(argv)

    parameters = (
        PaperScaleParameters(n_domains=100, hub_count=8)
        if args.quick
        else PaperScaleParameters()
    )
    build_start = time.perf_counter()
    spec_a = PaperScaleInternet(parameters).specification()
    t_build = time.perf_counter() - build_start
    spec_b1 = _drop_exports(spec_a, WARMUP_DOMAIN % parameters.n_domains)
    spec_b2 = _drop_exports(spec_b1, MEASURED_DOMAIN % parameters.n_domains)

    tree = NmslCompiler(CompilerOptions(register_codegen=False)).tree
    print(
        f"internet: {parameters.n_domains} domains, "
        f"{parameters.n_domains * parameters.systems_per_domain} systems "
        f"(built in {t_build:.2f}s)"
    )

    # ---- the floor: a warm one-domain incremental recheck.
    reference = ConsistencyChecker(spec_a, tree)
    start = time.perf_counter()
    reference.check()
    t_full = time.perf_counter() - start
    reference.recheck(spec_b1)  # warm the delta path
    start = time.perf_counter()
    reference.recheck(spec_b2)
    t_recheck = time.perf_counter() - start
    print(f"full check: {t_full:.3f}s, warm one-domain recheck: "
          f"{t_recheck * 1000:.1f}ms")

    # ---- the measured pass: impact analysis of the same warm edit.
    analyzer = ImpactAnalyzer(tree, tags=("BartsSnmpd",))
    analyzer.baseline(spec_a)
    analyzer.analyze(spec_b1)  # warm-up edit
    start = time.perf_counter()
    impact = analyzer.analyze(spec_b2)
    t_impact = time.perf_counter() - start
    ratio = t_impact / t_recheck if t_recheck > 0 else float("inf")
    print(f"impact analysis: {t_impact * 1000:.1f}ms "
          f"({ratio:.2f}x recheck, budget {RATIO_BUDGET:g}x)")

    registry = relational_registry()
    report = relational_report(impact, registry=registry)
    rendered = render_json(report)

    # ---- determinism: an independent pipeline over the same pair must
    # render byte-identically.
    repeat = ImpactAnalyzer(tree, tags=("BartsSnmpd",))
    repeat.baseline(spec_b1)
    rendered_again = render_json(
        relational_report(repeat.analyze(spec_b2), registry=registry)
    )
    identical = rendered == rendered_again
    print(f"report byte-identical across runs: {identical}")

    payload = {
        "benchmark": "relational_diff",
        "parameters": {
            "n_domains": parameters.n_domains,
            "systems_per_domain": parameters.systems_per_domain,
            "edit": "drop one domain's exports (warm, one-domain delta)",
        },
        "timings": {
            "build_model_s": round(t_build, 4),
            "full_check_s": round(t_full, 4),
            "warm_recheck_s": round(t_recheck, 6),
            "impact_analyze_s": round(t_impact, 6),
            "ratio_impact_over_recheck": round(ratio, 3),
            "ratio_budget": RATIO_BUDGET,
        },
        "impact": {
            key: value
            for key, value in impact.stats.items()
            if key != "seconds"
        },
        "findings": report.counts(),
        "report_byte_identical": identical,
    }
    output = args.output
    if output is None and not args.quick:
        output = str(Path(__file__).parents[1] / "BENCH_diff.json")
    if output:
        Path(output).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {output}")
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))

    if not identical:
        print("FAIL: report not byte-identical across runs")
        return 1
    if ratio > RATIO_BUDGET:
        print(f"FAIL: ratio {ratio:.2f} over budget {RATIO_BUDGET:g}")
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
