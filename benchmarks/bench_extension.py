"""SEC-6.3 — the extension mechanism.

Measures the cost of compiling with prepended extension tables (lookup is
first-match, so extensions sit in front of every keyword search) and of
rendering an extension-defined output type, and re-asserts the override
semantics the paper describes.
"""

import pytest

from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.nmsl.extension import parse_extension
from repro.workloads.paper import PAPER_SPEC_TEXT

EXTENSION_TEXT = """
extension billing;
keyword billing in process, domain;
output consistency for process.billing emit "billing_rate({name}, {arg0}).";
output DavesSnmpd for process emit "# daves config for {name}";
"""

EXTENDED_SPEC = PAPER_SPEC_TEXT.replace(
    "    supports mgmt.mib; -- entire MIB subtree",
    "    supports mgmt.mib;\n    billing 12;",
)


def test_parse_extension_text(benchmark):
    extension = benchmark(parse_extension, EXTENSION_TEXT)
    assert extension.name == "billing"
    assert len(extension.actions) == 2


def test_compile_with_extension(benchmark):
    extension = parse_extension(EXTENSION_TEXT)

    def compile_extended():
        compiler = NmslCompiler(
            CompilerOptions(extensions=(extension,), register_codegen=False)
        )
        return compiler, compiler.compile(EXTENDED_SPEC)

    compiler, result = benchmark(compile_extended)
    stored = result.specification.extension_clauses[("process", "snmpdReadOnly")]
    assert stored == [("billing", ("12",))]


def test_extended_output_generation(benchmark):
    extension = parse_extension(EXTENSION_TEXT)
    compiler = NmslCompiler(
        CompilerOptions(extensions=(extension,), register_codegen=False)
    )
    result = compiler.compile(EXTENDED_SPEC)

    def generate():
        return (
            compiler.generate("consistency", result).text(),
            compiler.generate("DavesSnmpd", result).text(),
        )

    consistency_text, daves_text = benchmark(generate)
    # Extension facts appear beside the basic ones (no override of generic).
    assert "billing_rate(snmpdReadOnly, 12)." in consistency_text
    assert "proc_supports(snmpdReadOnly, 'mgmt.mib')." in consistency_text
    # The brand-new output tag renders for every process declaration.
    assert "# daves config for snmpdReadOnly" in daves_text
    benchmark.extra_info["reproduces"] = "Section 6.3 (extension mechanism)"


def test_baseline_compile_without_extension(benchmark, bare_compiler):
    """Baseline for the table-prepend overhead comparison."""
    result = benchmark(bare_compiler.compile, PAPER_SPEC_TEXT)
    assert result.ok
