"""Shared benchmark fixtures."""

import pytest

from repro.nmsl.compiler import CompilerOptions, NmslCompiler


@pytest.fixture(scope="session")
def compiler():
    """One compiler (MIB tree + registries) shared by all benchmarks."""
    return NmslCompiler()


@pytest.fixture(scope="session")
def bare_compiler():
    return NmslCompiler(CompilerOptions(register_codegen=False))
