"""Service benchmark: open-loop load against the ``nmsld`` scheduler.

Three sections, one report (``BENCH_service.json``):

* **simulated** — a synthetic million-operator population (scaled by
  ``--operators``) issues an open-loop request mix against the
  deterministic simulated runtime: 80% interactive checks, 15%
  normal-class analyses, 5% bulk campaigns, with bulk offered *above*
  sustained capacity so the admission controller sheds continuously.
  Records logical-clock p50/p99 latency per priority class, shed and
  rejection rates, scheduler wall-clock throughput, and the
  acceptance ratio p99(interactive, mixed) / p50(interactive,
  unloaded), which must stay ≤ 5.  Deterministic per seed: the section
  asserts a repeated seed reproduces identical latency quantiles.

* **tracing** — the request-path cost of the observability layer
  (trace-context minting, audit events, SLO accounting, per-request
  resources): warm checks over a paper-scale synthetic internet with
  the layer on vs stubbed off, interleaved pairwise, must stay within
  5% (asserted at 15% for shared-runner noise).

* **daemon** — a real ``AsyncServiceRuntime`` on a TCP socket serves
  concurrent clients: warm-cache interactive checks racing bulk
  analyses.  Records sustained req/s and wall-clock p50/p99 per class.

* **worker_scaling** — the supervised process pool at ``--workers``
  1, 2 and 4 under a fixed 4-client warm-check load, each check
  carrying a fixed simulated element-poll stall (production checks are
  I/O-bound on element polling, and the stall keeps pool concurrency
  measurable on single-core CI runners): sustained req/s and p50/p99
  per pool size.  Throughput must be monotone non-decreasing in the
  pool size (asserted with a 15% allowance for shared-runner noise).

* **supervision** — a 2-worker daemon serves a stream of checks while
  the worker executing one of them is ``kill -9``-ed mid-request:
  every request must be answered (the victim replays transparently),
  zero may be lost, and the restart must be observable in the pool
  snapshot.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick] \\
        [--output BENCH_service.json]
"""

import argparse
import json
import os
import random
import signal
import socket
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.service.core import ServiceConfig  # noqa: E402
from repro.service.runtime import (  # noqa: E402
    AsyncServiceRuntime,
    SimulatedServiceRuntime,
)

CAMPUS = str(Path(__file__).resolve().parents[1] / "examples" / "campus.nmsl")
SEED = 1989

#: Interactive service cost range (logical seconds) in the sim section.
INTERACTIVE_COST = (0.002, 0.010)
NORMAL_COST = (0.020, 0.100)
BULK_COST = (0.5, 2.0)


def percentile(values, fraction):
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


# ----------------------------------------------------------------------
# Simulated section.
# ----------------------------------------------------------------------
def build_sim_workload(operators, seed, mixed=True):
    """An open-loop arrival schedule for *operators* requests.

    Interactive load is sized to roughly half the worker pool; bulk is
    offered above remaining capacity so overload is sustained.
    """
    rng = random.Random(seed)
    runtime = SimulatedServiceRuntime(
        config=ServiceConfig(
            workers=8,
            queue_capacity=256,
            reserved_interactive_workers=2,
        )
    )
    mean_interactive = sum(INTERACTIVE_COST) / 2
    # lambda * E[cost] = 3 busy workers' worth of interactive load.
    interactive_rate = 3.0 / mean_interactive
    horizon_s = operators * 0.8 / interactive_rate if mixed else (
        operators / interactive_rate
    )
    at = 0.0
    offered = {"interactive": 0, "normal": 0, "bulk": 0}
    index = 0
    while index < operators:
        if mixed:
            draw = rng.random()
            if draw < 0.80:
                cls, op, cost = "interactive", "ping", rng.uniform(
                    *INTERACTIVE_COST
                )
            elif draw < 0.95:
                cls, op, cost = "normal", "ping", rng.uniform(*NORMAL_COST)
            else:
                cls, op, cost = "bulk", "ping", rng.uniform(*BULK_COST)
        else:
            cls, op, cost = "interactive", "ping", rng.uniform(
                *INTERACTIVE_COST
            )
        message = {
            "id": f"{cls[0]}{index}",
            "op": op,
            "cost_s": round(cost, 6),
        }
        if cls != "interactive":
            message["class"] = cls
            message["deadline_s"] = 3600.0  # latency measured, not cut
        runtime.offer(round(at, 9), message)
        offered[cls] += 1
        # Open loop: exponential inter-arrivals over the whole mix.
        total_rate = interactive_rate / (0.80 if mixed else 1.0)
        at += rng.expovariate(total_rate)
        index += 1
    return runtime, offered, horizon_s


def summarize_sim(responses, offered):
    latencies = {"interactive": [], "normal": [], "bulk": []}
    outcomes = {}
    for message in responses:
        cls = message.get("class") or "invalid"
        if message["ok"]:
            kind = "ok"
            latencies[cls].append(message["timing"]["total_s"])
        else:
            kind = message["error"]["kind"]
        outcomes.setdefault(cls, {}).setdefault(kind, 0)
        outcomes[cls][kind] += 1
    summary = {"offered": offered, "outcomes": outcomes, "classes": {}}
    for cls, values in latencies.items():
        if not values:
            continue
        summary["classes"][cls] = {
            "completed": len(values),
            "p50_s": round(percentile(values, 0.50), 6),
            "p99_s": round(percentile(values, 0.99), 6),
            "max_s": round(max(values), 6),
            "mean_s": round(statistics.fmean(values), 6),
        }
    shed = sum(
        counts.get("shed", 0) + counts.get("queue-full", 0)
        for counts in outcomes.values()
    )
    total = sum(sum(counts.values()) for counts in outcomes.values())
    summary["shed_rate"] = round(shed / total, 6) if total else 0.0
    return summary


def run_simulated(operators, seed=SEED):
    # Unloaded baseline: interactive-only at the same arrival rate.
    baseline_runtime, baseline_offered, _ = build_sim_workload(
        max(2000, operators // 10), seed, mixed=False
    )
    baseline_responses = baseline_runtime.run()
    baseline = summarize_sim(baseline_responses, baseline_offered)

    runtime, offered, horizon_s = build_sim_workload(operators, seed)
    started = time.perf_counter()
    responses = runtime.run()
    wall_s = time.perf_counter() - started
    summary = summarize_sim(responses, offered)

    # Determinism: a repeated seed reproduces identical quantiles.
    repeat_runtime, repeat_offered, _ = build_sim_workload(
        operators, seed
    )
    repeat = summarize_sim(repeat_runtime.run(), repeat_offered)
    assert repeat == summary, "simulated section is not deterministic"

    unloaded_p50 = baseline["classes"]["interactive"]["p50_s"]
    mixed_p99 = summary["classes"]["interactive"]["p99_s"]
    ratio = mixed_p99 / unloaded_p50
    summary.update(
        {
            "operators": operators,
            "seed": seed,
            "logical_horizon_s": round(horizon_s, 3),
            "scheduler_wall_s": round(wall_s, 3),
            "scheduler_req_per_s": round(len(responses) / wall_s, 1),
            "unloaded_interactive_p50_s": unloaded_p50,
            "interactive_p99_over_unloaded_p50": round(ratio, 3),
        }
    )
    assert ratio <= 5.0, (
        f"interactive p99 under mixed load is {ratio:.2f}x the unloaded "
        "p50 (acceptance bound: 5x)"
    )
    return summary


# ----------------------------------------------------------------------
# Tracing-overhead section.
# ----------------------------------------------------------------------
class _NullAudit:
    """Stand-in for :class:`repro.obs.AuditLog` with the layer off."""

    def event(self, *args, **fields):
        return {}

    def close(self):
        pass


def run_tracing_overhead(pairs=300, n_domains=192):
    """Per-request cost of the tracing layer on the service hot path.

    Drives the daemon's request path (``submit`` -> ``next_action`` ->
    ``execute``) directly, without sockets, against two cores: one as
    shipped (context minting, audit events, SLO accounting, per-request
    resources) and one with exactly that layer stubbed out.  The
    workload is a warm consistency check over a *paper-scale* synthetic
    internet — milliseconds of real work per request, the population
    this repo targets — not a microsecond memo lookup on a toy example
    that would measure nothing but the fixed per-request cost.

    Requests alternate off/on in pairs (order flipping each pair) so
    clock drift, frequency scaling, and cache growth hit both sides
    equally; the reported latency is the per-side median.

    The acceptance target is <= 5% overhead; the assert allows 15% to
    absorb scheduler noise on shared CI runners, and the measured ratio
    is recorded in the report either way.
    """
    import tempfile

    from repro.obs.context import IdAllocator
    from repro.service.core import ServiceCore
    from repro.workloads.generator import (
        InternetParameters,
        SyntheticInternet,
    )

    spec_text = SyntheticInternet(
        InternetParameters(
            n_domains=n_domains,
            systems_per_domain=8,
            silent_domains=(1,),
        )
    ).text()
    spec_file = tempfile.NamedTemporaryFile(
        mode="w", suffix=".nmsl", delete=False
    )
    with spec_file:
        spec_file.write(spec_text)

    def build(tracing):
        config = ServiceConfig(workers=4)
        config.measure_resources = tracing
        core = ServiceCore(config=config, clock=time.monotonic)
        if not tracing:
            core.audit = _NullAudit()
            core.slo.record = lambda *args, **kwargs: True
            # Refusal paths dereference the context, so stub with a
            # constant rather than None: minting is what we switch off.
            fixed = IdAllocator(seed=SEED).context()
            core._mint_context = lambda traceparent=None: fixed
        return core

    def step(core, request_id):
        text = json.dumps(
            {
                "id": request_id,
                "op": "check",
                "params": {"spec": spec_file.name},
            }
        )
        request, refusal = core.submit(text, None)
        assert request is not None, refusal
        popped, disposition = core.next_action()
        assert disposition == "run"
        response = core.execute(popped)
        assert response["ok"], response

    try:
        cores = {"off": build(False), "on": build(True)}
        for side, core in cores.items():
            for index in range(30):  # compile once, warm the memo/index
                step(core, f"warm-{side}-{index}")
        samples = {"off": [], "on": []}
        for pair in range(pairs):
            order = ("off", "on") if pair % 2 else ("on", "off")
            for side in order:
                started = time.perf_counter()
                step(cores[side], f"{side}-{pair}")
                samples[side].append(time.perf_counter() - started)
    finally:
        Path(spec_file.name).unlink(missing_ok=True)
    off_s = statistics.median(samples["off"])
    on_s = statistics.median(samples["on"])
    ratio = on_s / off_s if off_s else 1.0
    assert ratio <= 1.15, (
        f"tracing overhead is {(ratio - 1) * 100:.1f}% on the warm-check "
        "request path (acceptance bound: 5% target, 15% CI allowance)"
    )
    return {
        "pairs": pairs,
        "spec_domains": n_domains,
        "warm_check_off_s": round(off_s, 6),
        "warm_check_on_s": round(on_s, 6),
        "overhead_ratio": round(ratio, 4),
    }


# ----------------------------------------------------------------------
# Real-daemon section.
# ----------------------------------------------------------------------
def run_daemon(interactive_requests, bulk_threads=2):
    from repro.service.client import ServiceClient

    runtime = AsyncServiceRuntime(
        config=ServiceConfig(
            workers=4,
            queue_capacity=128,
            reserved_interactive_workers=1,
        ),
        host="127.0.0.1",
        port=0,
    )
    thread = threading.Thread(target=runtime.run, daemon=True)
    thread.start()
    for _ in range(200):
        if runtime.port:
            try:
                socket.create_connection(
                    ("127.0.0.1", runtime.port), timeout=0.2
                ).close()
                break
            except OSError:
                pass
        time.sleep(0.05)

    def client():
        return ServiceClient(port=runtime.port, timeout_s=120.0)

    # Warm the cache once so the measured checks hit warm state.
    with client() as warmup:
        warmup.request("check", {"spec": CAMPUS})

    # Unloaded interactive latency.
    unloaded = []
    with client() as session:
        for _ in range(interactive_requests):
            started = time.perf_counter()
            response = session.request("check", {"spec": CAMPUS})
            assert response["ok"]
            unloaded.append(time.perf_counter() - started)

    # Mixed load: bulk analyze loops racing interactive checks.
    stop = threading.Event()
    bulk_latencies = []

    def bulk_loop():
        with client() as session:
            while not stop.is_set():
                started = time.perf_counter()
                response = session.request(
                    "analyze", {"spec": CAMPUS}, cls="bulk"
                )
                if response["ok"]:
                    bulk_latencies.append(
                        time.perf_counter() - started
                    )

    workers = [
        threading.Thread(target=bulk_loop, daemon=True)
        for _ in range(bulk_threads)
    ]
    for worker in workers:
        worker.start()
    time.sleep(0.2)  # let bulk load build

    mixed = []
    started_wall = time.perf_counter()
    with client() as session:
        for _ in range(interactive_requests):
            started = time.perf_counter()
            response = session.request("check", {"spec": CAMPUS})
            assert response["ok"]
            mixed.append(time.perf_counter() - started)
    elapsed = time.perf_counter() - started_wall
    stop.set()
    for worker in workers:
        worker.join(timeout=30)
    runtime.request_drain()
    thread.join(timeout=30)

    return {
        "interactive_requests": interactive_requests,
        "bulk_threads": bulk_threads,
        "bulk_completed": len(bulk_latencies),
        "unloaded": {
            "p50_s": round(percentile(unloaded, 0.50), 6),
            "p99_s": round(percentile(unloaded, 0.99), 6),
        },
        "mixed": {
            "p50_s": round(percentile(mixed, 0.50), 6),
            "p99_s": round(percentile(mixed, 0.99), 6),
            "interactive_req_per_s": round(
                interactive_requests / elapsed, 1
            ),
        },
    }


# ----------------------------------------------------------------------
# Worker-pool sections.
# ----------------------------------------------------------------------
def _boot_pooled_daemon(n_workers):
    """A live daemon with *n_workers* supervised worker processes."""
    runtime = AsyncServiceRuntime(
        config=ServiceConfig(
            workers=n_workers,
            pool_workers=n_workers,
            queue_capacity=128,
        ),
        host="127.0.0.1",
        port=0,
    )
    thread = threading.Thread(target=runtime.run, daemon=True)
    thread.start()
    for _ in range(400):
        if runtime.port:
            try:
                socket.create_connection(
                    ("127.0.0.1", runtime.port), timeout=0.2
                ).close()
                break
            except OSError:
                pass
        time.sleep(0.05)
    else:
        raise SystemExit("pooled daemon never became ready")
    return runtime, thread


def run_worker_scaling(checks_per_client=40, clients=4, stall_s=0.03):
    from repro.service.client import ServiceClient

    params = {"spec": CAMPUS, "chaos_sleep_s": stall_s}
    rows = []
    for n_workers in (1, 2, 4):
        runtime, thread = _boot_pooled_daemon(n_workers)
        try:
            # Warm every worker's spec cache: a concurrent burst spills
            # past the affinity-preferred worker onto the whole pool.
            def warm():
                with ServiceClient(
                    port=runtime.port, timeout_s=120.0
                ) as session:
                    for _ in range(3):
                        session.request("check", {"spec": CAMPUS})

            warmers = [
                threading.Thread(target=warm) for _ in range(clients)
            ]
            for warmer in warmers:
                warmer.start()
            for warmer in warmers:
                warmer.join(timeout=120)

            latencies = []
            lock = threading.Lock()

            def measured():
                local = []
                with ServiceClient(
                    port=runtime.port, timeout_s=120.0
                ) as session:
                    for _ in range(checks_per_client):
                        started = time.perf_counter()
                        response = session.request("check", params)
                        assert response["ok"], response
                        local.append(time.perf_counter() - started)
                with lock:
                    latencies.extend(local)

            threads = [
                threading.Thread(target=measured)
                for _ in range(clients)
            ]
            started_wall = time.perf_counter()
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=300)
            elapsed = time.perf_counter() - started_wall
        finally:
            runtime.request_drain()
            thread.join(timeout=30)
        total = clients * checks_per_client
        rows.append(
            {
                "workers": n_workers,
                "clients": clients,
                "stall_s": stall_s,
                "checks": total,
                "req_per_s": round(total / elapsed, 1),
                "p50_s": round(percentile(latencies, 0.50), 6),
                "p99_s": round(percentile(latencies, 0.99), 6),
            }
        )
    for previous, current in zip(rows, rows[1:]):
        assert current["req_per_s"] >= previous["req_per_s"] * 0.85, (
            f"warm-check throughput regressed growing the pool from "
            f"{previous['workers']} to {current['workers']} workers: "
            f"{previous['req_per_s']} -> {current['req_per_s']} req/s "
            "(monotone non-decreasing required, 15% noise allowance)"
        )
    return {"rows": rows}


def run_supervision():
    from repro.service.client import ServiceClient

    runtime, thread = _boot_pooled_daemon(2)
    victim_box = {}
    responses = []
    sent = 0
    try:
        with ServiceClient(
            port=runtime.port, timeout_s=120.0
        ) as session:
            session.request("check", {"spec": CAMPUS})  # warm

        def victim():
            with ServiceClient(
                port=runtime.port, timeout_s=120.0
            ) as session:
                victim_box["response"] = session.request(
                    "check",
                    {"spec": CAMPUS, "chaos_sleep_s": 2.0},
                    cls="bulk",
                )

        parker = threading.Thread(target=victim)
        parker.start()
        sent += 1
        with ServiceClient(
            port=runtime.port, timeout_s=120.0
        ) as session:
            busy_pid = None
            for _ in range(200):
                pool = session.request("status")["result"]["pool"]
                busy = [
                    w for w in pool["workers"] if w["state"] == "busy"
                ]
                if busy:
                    busy_pid = busy[0]["pid"]
                    break
                time.sleep(0.02)
            assert busy_pid is not None, "victim never went busy"
            os.kill(busy_pid, signal.SIGKILL)
            # Keep traffic flowing while the supervisor recovers.
            for index in range(10):
                responses.append(
                    session.request("check", {"spec": CAMPUS})
                )
                sent += 1
            parker.join(timeout=60)
            responses.append(victim_box.get("response"))
            restarts, idle = 0, 0
            for _ in range(300):
                pool = session.request("status")["result"]["pool"]
                restarts = pool["restarts_total"]
                idle = pool["states"].get("idle", 0)
                if restarts >= 1 and idle == 2:
                    break
                time.sleep(0.02)
    finally:
        runtime.request_drain()
        thread.join(timeout=30)
    answered = [
        r for r in responses
        if r is not None and (r.get("ok") or "error" in r)
    ]
    assert len(answered) == sent, (
        f"{sent - len(answered)} of {sent} requests lost to the kill"
    )
    assert victim_box["response"]["ok"], victim_box["response"]
    assert restarts >= 1, "restart never became observable"
    return {
        "requests": sent,
        "answered": len(answered),
        "lost": sent - len(answered),
        "victim_replayed_ok": bool(victim_box["response"]["ok"]),
        "restarts_total": restarts,
        "idle_after_recovery": idle,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_service.json", type=Path
    )
    parser.add_argument(
        "--operators",
        type=int,
        default=1_000_000,
        help="simulated open-loop request population (default: 1M)",
    )
    parser.add_argument(
        "--interactive-requests",
        type=int,
        default=400,
        help="real-daemon interactive checks per phase",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: 20k simulated operators, 100 daemon checks",
    )
    args = parser.parse_args(argv)
    operators = 20_000 if args.quick else args.operators
    interactive = 100 if args.quick else args.interactive_requests

    print(f"simulated section: {operators} operators ...", flush=True)
    simulated = run_simulated(operators)
    print(
        "  interactive p50 {p50_s}s p99 {p99_s}s".format(
            **simulated["classes"]["interactive"]
        ),
        f"shed_rate {simulated['shed_rate']}",
        f"ratio {simulated['interactive_p99_over_unloaded_p50']}x",
        flush=True,
    )

    print("tracing section: warm-check overhead ...", flush=True)
    tracing = run_tracing_overhead(
        pairs=100 if args.quick else 300,
        n_domains=96 if args.quick else 192,
    )
    print(
        f"  off {tracing['warm_check_off_s']}s"
        f" on {tracing['warm_check_on_s']}s"
        f" ratio {tracing['overhead_ratio']}x",
        flush=True,
    )

    print(f"daemon section: {interactive} checks/phase ...", flush=True)
    daemon = run_daemon(interactive)
    print(
        f"  unloaded p50 {daemon['unloaded']['p50_s']}s"
        f" mixed p99 {daemon['mixed']['p99_s']}s"
        f" at {daemon['mixed']['interactive_req_per_s']} req/s",
        flush=True,
    )

    print("worker-scaling section: pool at 1/2/4 workers ...", flush=True)
    scaling = run_worker_scaling(
        checks_per_client=15 if args.quick else 40
    )
    for row in scaling["rows"]:
        print(
            f"  workers={row['workers']} {row['req_per_s']} req/s"
            f" p50 {row['p50_s']}s p99 {row['p99_s']}s",
            flush=True,
        )

    print("supervision section: kill -9 mid-request ...", flush=True)
    supervision = run_supervision()
    print(
        f"  {supervision['answered']}/{supervision['requests']} answered,"
        f" lost {supervision['lost']},"
        f" restarts {supervision['restarts_total']}",
        flush=True,
    )

    report = {
        "benchmark": "service",
        "quick": args.quick,
        "simulated": simulated,
        "tracing": tracing,
        "daemon": daemon,
        "worker_scaling": scaling,
        "supervision": supervision,
    }
    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
