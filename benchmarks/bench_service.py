"""Service benchmark: open-loop load against the ``nmsld`` scheduler.

Two sections, one report (``BENCH_service.json``):

* **simulated** — a synthetic million-operator population (scaled by
  ``--operators``) issues an open-loop request mix against the
  deterministic simulated runtime: 80% interactive checks, 15%
  normal-class analyses, 5% bulk campaigns, with bulk offered *above*
  sustained capacity so the admission controller sheds continuously.
  Records logical-clock p50/p99 latency per priority class, shed and
  rejection rates, scheduler wall-clock throughput, and the
  acceptance ratio p99(interactive, mixed) / p50(interactive,
  unloaded), which must stay ≤ 5.  Deterministic per seed: the section
  asserts a repeated seed reproduces identical latency quantiles.

* **daemon** — a real ``AsyncServiceRuntime`` on a TCP socket serves
  concurrent clients: warm-cache interactive checks racing bulk
  analyses.  Records sustained req/s and wall-clock p50/p99 per class.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick] \\
        [--output BENCH_service.json]
"""

import argparse
import json
import random
import socket
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.service.core import ServiceConfig  # noqa: E402
from repro.service.runtime import (  # noqa: E402
    AsyncServiceRuntime,
    SimulatedServiceRuntime,
)

CAMPUS = str(Path(__file__).resolve().parents[1] / "examples" / "campus.nmsl")
SEED = 1989

#: Interactive service cost range (logical seconds) in the sim section.
INTERACTIVE_COST = (0.002, 0.010)
NORMAL_COST = (0.020, 0.100)
BULK_COST = (0.5, 2.0)


def percentile(values, fraction):
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


# ----------------------------------------------------------------------
# Simulated section.
# ----------------------------------------------------------------------
def build_sim_workload(operators, seed, mixed=True):
    """An open-loop arrival schedule for *operators* requests.

    Interactive load is sized to roughly half the worker pool; bulk is
    offered above remaining capacity so overload is sustained.
    """
    rng = random.Random(seed)
    runtime = SimulatedServiceRuntime(
        config=ServiceConfig(
            workers=8,
            queue_capacity=256,
            reserved_interactive_workers=2,
        )
    )
    mean_interactive = sum(INTERACTIVE_COST) / 2
    # lambda * E[cost] = 3 busy workers' worth of interactive load.
    interactive_rate = 3.0 / mean_interactive
    horizon_s = operators * 0.8 / interactive_rate if mixed else (
        operators / interactive_rate
    )
    at = 0.0
    offered = {"interactive": 0, "normal": 0, "bulk": 0}
    index = 0
    while index < operators:
        if mixed:
            draw = rng.random()
            if draw < 0.80:
                cls, op, cost = "interactive", "ping", rng.uniform(
                    *INTERACTIVE_COST
                )
            elif draw < 0.95:
                cls, op, cost = "normal", "ping", rng.uniform(*NORMAL_COST)
            else:
                cls, op, cost = "bulk", "ping", rng.uniform(*BULK_COST)
        else:
            cls, op, cost = "interactive", "ping", rng.uniform(
                *INTERACTIVE_COST
            )
        message = {
            "id": f"{cls[0]}{index}",
            "op": op,
            "cost_s": round(cost, 6),
        }
        if cls != "interactive":
            message["class"] = cls
            message["deadline_s"] = 3600.0  # latency measured, not cut
        runtime.offer(round(at, 9), message)
        offered[cls] += 1
        # Open loop: exponential inter-arrivals over the whole mix.
        total_rate = interactive_rate / (0.80 if mixed else 1.0)
        at += rng.expovariate(total_rate)
        index += 1
    return runtime, offered, horizon_s


def summarize_sim(responses, offered):
    latencies = {"interactive": [], "normal": [], "bulk": []}
    outcomes = {}
    for message in responses:
        cls = message.get("class") or "invalid"
        if message["ok"]:
            kind = "ok"
            latencies[cls].append(message["timing"]["total_s"])
        else:
            kind = message["error"]["kind"]
        outcomes.setdefault(cls, {}).setdefault(kind, 0)
        outcomes[cls][kind] += 1
    summary = {"offered": offered, "outcomes": outcomes, "classes": {}}
    for cls, values in latencies.items():
        if not values:
            continue
        summary["classes"][cls] = {
            "completed": len(values),
            "p50_s": round(percentile(values, 0.50), 6),
            "p99_s": round(percentile(values, 0.99), 6),
            "max_s": round(max(values), 6),
            "mean_s": round(statistics.fmean(values), 6),
        }
    shed = sum(
        counts.get("shed", 0) + counts.get("queue-full", 0)
        for counts in outcomes.values()
    )
    total = sum(sum(counts.values()) for counts in outcomes.values())
    summary["shed_rate"] = round(shed / total, 6) if total else 0.0
    return summary


def run_simulated(operators, seed=SEED):
    # Unloaded baseline: interactive-only at the same arrival rate.
    baseline_runtime, baseline_offered, _ = build_sim_workload(
        max(2000, operators // 10), seed, mixed=False
    )
    baseline_responses = baseline_runtime.run()
    baseline = summarize_sim(baseline_responses, baseline_offered)

    runtime, offered, horizon_s = build_sim_workload(operators, seed)
    started = time.perf_counter()
    responses = runtime.run()
    wall_s = time.perf_counter() - started
    summary = summarize_sim(responses, offered)

    # Determinism: a repeated seed reproduces identical quantiles.
    repeat_runtime, repeat_offered, _ = build_sim_workload(
        operators, seed
    )
    repeat = summarize_sim(repeat_runtime.run(), repeat_offered)
    assert repeat == summary, "simulated section is not deterministic"

    unloaded_p50 = baseline["classes"]["interactive"]["p50_s"]
    mixed_p99 = summary["classes"]["interactive"]["p99_s"]
    ratio = mixed_p99 / unloaded_p50
    summary.update(
        {
            "operators": operators,
            "seed": seed,
            "logical_horizon_s": round(horizon_s, 3),
            "scheduler_wall_s": round(wall_s, 3),
            "scheduler_req_per_s": round(len(responses) / wall_s, 1),
            "unloaded_interactive_p50_s": unloaded_p50,
            "interactive_p99_over_unloaded_p50": round(ratio, 3),
        }
    )
    assert ratio <= 5.0, (
        f"interactive p99 under mixed load is {ratio:.2f}x the unloaded "
        "p50 (acceptance bound: 5x)"
    )
    return summary


# ----------------------------------------------------------------------
# Real-daemon section.
# ----------------------------------------------------------------------
def run_daemon(interactive_requests, bulk_threads=2):
    from repro.service.client import ServiceClient

    runtime = AsyncServiceRuntime(
        config=ServiceConfig(
            workers=4,
            queue_capacity=128,
            reserved_interactive_workers=1,
        ),
        host="127.0.0.1",
        port=0,
    )
    thread = threading.Thread(target=runtime.run, daemon=True)
    thread.start()
    for _ in range(200):
        if runtime.port:
            try:
                socket.create_connection(
                    ("127.0.0.1", runtime.port), timeout=0.2
                ).close()
                break
            except OSError:
                pass
        time.sleep(0.05)

    def client():
        return ServiceClient(port=runtime.port, timeout_s=120.0)

    # Warm the cache once so the measured checks hit warm state.
    with client() as warmup:
        warmup.request("check", {"spec": CAMPUS})

    # Unloaded interactive latency.
    unloaded = []
    with client() as session:
        for _ in range(interactive_requests):
            started = time.perf_counter()
            response = session.request("check", {"spec": CAMPUS})
            assert response["ok"]
            unloaded.append(time.perf_counter() - started)

    # Mixed load: bulk analyze loops racing interactive checks.
    stop = threading.Event()
    bulk_latencies = []

    def bulk_loop():
        with client() as session:
            while not stop.is_set():
                started = time.perf_counter()
                response = session.request(
                    "analyze", {"spec": CAMPUS}, cls="bulk"
                )
                if response["ok"]:
                    bulk_latencies.append(
                        time.perf_counter() - started
                    )

    workers = [
        threading.Thread(target=bulk_loop, daemon=True)
        for _ in range(bulk_threads)
    ]
    for worker in workers:
        worker.start()
    time.sleep(0.2)  # let bulk load build

    mixed = []
    started_wall = time.perf_counter()
    with client() as session:
        for _ in range(interactive_requests):
            started = time.perf_counter()
            response = session.request("check", {"spec": CAMPUS})
            assert response["ok"]
            mixed.append(time.perf_counter() - started)
    elapsed = time.perf_counter() - started_wall
    stop.set()
    for worker in workers:
        worker.join(timeout=30)
    runtime.request_drain()
    thread.join(timeout=30)

    return {
        "interactive_requests": interactive_requests,
        "bulk_threads": bulk_threads,
        "bulk_completed": len(bulk_latencies),
        "unloaded": {
            "p50_s": round(percentile(unloaded, 0.50), 6),
            "p99_s": round(percentile(unloaded, 0.99), 6),
        },
        "mixed": {
            "p50_s": round(percentile(mixed, 0.50), 6),
            "p99_s": round(percentile(mixed, 0.99), 6),
            "interactive_req_per_s": round(
                interactive_requests / elapsed, 1
            ),
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_service.json", type=Path
    )
    parser.add_argument(
        "--operators",
        type=int,
        default=1_000_000,
        help="simulated open-loop request population (default: 1M)",
    )
    parser.add_argument(
        "--interactive-requests",
        type=int,
        default=400,
        help="real-daemon interactive checks per phase",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: 20k simulated operators, 100 daemon checks",
    )
    args = parser.parse_args(argv)
    operators = 20_000 if args.quick else args.operators
    interactive = 100 if args.quick else args.interactive_requests

    print(f"simulated section: {operators} operators ...", flush=True)
    simulated = run_simulated(operators)
    print(
        "  interactive p50 {p50_s}s p99 {p99_s}s".format(
            **simulated["classes"]["interactive"]
        ),
        f"shed_rate {simulated['shed_rate']}",
        f"ratio {simulated['interactive_p99_over_unloaded_p50']}x",
        flush=True,
    )

    print(f"daemon section: {interactive} checks/phase ...", flush=True)
    daemon = run_daemon(interactive)
    print(
        f"  unloaded p50 {daemon['unloaded']['p50_s']}s"
        f" mixed p99 {daemon['mixed']['p99_s']}s"
        f" at {daemon['mixed']['interactive_req_per_s']} req/s",
        flush=True,
    )

    report = {
        "benchmark": "service",
        "quick": args.quick,
        "simulated": simulated,
        "daemon": daemon,
    }
    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
