"""SEC-4.2 — the speculative uses of the Consistency Checker.

Forward: check a new organization's specification against the existing
campus and estimate the load it would add.  Reverse: run the check "in
reverse" with CLP(R) to solve for the query periods that keep the
combined specification consistent.
"""

import pytest

from repro.consistency.speculative import SpeculativeChecker, solve_for_frequency
from repro.workloads.scenarios import campus_internet, new_organization


@pytest.fixture(scope="module")
def campus(bare_compiler):
    return bare_compiler.compile(campus_internet()).specification


@pytest.fixture(scope="module")
def polite_candidate(bare_compiler):
    return bare_compiler.compile(
        new_organization(query_minutes=15), strict=False
    ).specification


def test_whatif_forward_check(benchmark, bare_compiler, campus, polite_candidate):
    checker = SpeculativeChecker(campus, bare_compiler.tree)

    def what_if():
        return checker.check_addition(polite_candidate)

    outcome = benchmark(what_if)
    assert outcome.consistent
    benchmark.extra_info["reproduces"] = "Section 4.2 speculative (forward)"


def test_whatif_detects_bad_candidate(benchmark, bare_compiler, campus):
    aggressive = bare_compiler.compile(
        new_organization(query_minutes=1), strict=False
    ).specification
    checker = SpeculativeChecker(campus, bare_compiler.tree)

    def what_if():
        return checker.check_addition(aggressive)

    outcome = benchmark(what_if)
    assert not outcome.consistent
    assert outcome.stats["new_problems"] == 1


def test_whatif_load_estimate(benchmark, bare_compiler, campus, polite_candidate):
    checker = SpeculativeChecker(campus, bare_compiler.tree)
    load = benchmark(checker.estimated_new_load, polite_candidate)
    assert 1.0 < load < 100.0
    benchmark.extra_info["estimated_bps"] = round(load, 2)


def test_reverse_mode_solves_for_period(benchmark, bare_compiler):
    combined = bare_compiler.compile(
        campus_internet() + new_organization(query_minutes=15)
    ).specification

    def reverse():
        return solve_for_frequency(
            combined,
            bare_compiler.tree,
            client_process="deptPoller",
            server_process="snmpAgent",
        )

    bounds = benchmark.pedantic(reverse, rounds=3, iterations=1)
    assert any(bound.op == ">=" and bound.seconds == 600.0 for bound in bounds)
    benchmark.extra_info["reproduces"] = "Section 4.2 speculative (reverse/CLP(R))"
    benchmark.extra_info["solved_bound"] = "period >= 600 seconds"
