"""SEC-5 (change frequency) — incremental re-checking vs full re-check.

The paper ties prescriptive cost to "the frequency of changes to the
management specification"; the same holds for re-verification.  This
bench evolves a 1,000-element internet by one local change (one domain's
export removed) and compares a from-scratch check against the
:class:`~repro.consistency.evolution.DeltaChecker`.
"""

import pytest

from repro.consistency.checker import ConsistencyChecker
from repro.consistency.evolution import DeltaChecker, diff_specifications
from repro.workloads.generator import InternetParameters, SyntheticInternet

BASE = InternetParameters(n_domains=32, systems_per_domain=31)
CHANGED = InternetParameters(
    n_domains=32, systems_per_domain=31, silent_domains=(7,)
)


@pytest.fixture(scope="module")
def versions():
    return (
        SyntheticInternet(BASE).specification(),
        SyntheticInternet(CHANGED).specification(),
    )


def test_diff_1000_systems(benchmark, bare_compiler, versions):
    before, after = versions
    diff = benchmark(diff_specifications, before, after)
    assert diff.changed_names("domain") == {
        SyntheticInternet(CHANGED).domain_name(7)
    }


def test_full_recheck_after_change(benchmark, bare_compiler, versions):
    _before, after = versions

    def full():
        return ConsistencyChecker(after, bare_compiler.tree).check()

    outcome = benchmark.pedantic(full, rounds=3, iterations=1)
    assert not outcome.consistent
    benchmark.extra_info["mode"] = "full re-check"


def test_delta_recheck_after_change(benchmark, bare_compiler, versions):
    before, after = versions

    def setup():
        checker = DeltaChecker(bare_compiler.tree)
        checker.check(before)  # the remembered baseline, not timed
        return (checker,), {}

    def delta(checker):
        return checker.check(after)

    outcome = benchmark.pedantic(delta, setup=setup, rounds=3, iterations=1)
    assert not outcome.consistent
    assert outcome.stats["reused"] > outcome.stats["rechecked"]
    # Incremental fact maintenance: only the silenced domain re-expands.
    assert outcome.stats["facts_expanded"] < outcome.stats["facts_declarations"]
    benchmark.extra_info["mode"] = (
        f"delta re-check (rechecked {outcome.stats['rechecked']} of "
        f"{outcome.stats['references']} references; re-expanded "
        f"{outcome.stats['facts_expanded']} of "
        f"{outcome.stats['facts_declarations']} declarations)"
    )
    benchmark.extra_info["finding"] = (
        "reference reduction and view resolution are reused across "
        "versions; only declarations the diff touched are re-expanded "
        "(the paper's distributed-generation remark, applied to checking)"
    )
