"""SEC-3.1 — the scale evaluation.

The paper's stated target: "scale to handle very large networks, on the
order of 100,000 networks (and gateways), 100,000 to a million hosts, and
10,000 administrative domains."  This sweep measures compile-from-text
and consistency-check time as the synthetic internet grows, asserting
near-linear scaling so the target extrapolates to minutes, not days.

The largest tier checks an internet of 10,000 network elements across
100 domains directly on this machine.
"""

import pytest

from repro.consistency.checker import ConsistencyChecker
from repro.workloads.generator import InternetParameters, SyntheticInternet

#: (label, parameters) — systems = n_domains * systems_per_domain.
TIERS = [
    ("100-systems", InternetParameters(n_domains=10, systems_per_domain=10)),
    ("1000-systems", InternetParameters(n_domains=32, systems_per_domain=31)),
    ("10000-systems", InternetParameters(n_domains=100, systems_per_domain=100)),
]


@pytest.mark.parametrize("label,parameters", TIERS, ids=[t[0] for t in TIERS])
def test_scale_check(benchmark, bare_compiler, label, parameters):
    """Consistency-check time vs internet size (model built directly)."""
    internet = SyntheticInternet(parameters)
    specification = internet.specification()

    def check():
        checker = ConsistencyChecker(specification, bare_compiler.tree)
        return checker.check()

    rounds = 1 if parameters.n_systems >= 10_000 else 3
    outcome = benchmark.pedantic(check, rounds=rounds, iterations=1)
    assert outcome.consistent
    assert outcome.stats["instances"] >= parameters.n_systems
    benchmark.extra_info["systems"] = parameters.n_systems
    benchmark.extra_info["domains"] = parameters.n_domains
    benchmark.extra_info["references"] = outcome.stats["references"]


@pytest.mark.parametrize(
    "label,parameters", TIERS[:2], ids=[t[0] for t in TIERS[:2]]
)
def test_scale_compile_from_text(benchmark, bare_compiler, label, parameters):
    """Full compiler path (lexing + two passes) vs internet size."""
    text = SyntheticInternet(parameters).text()

    def compile_text():
        return bare_compiler.compile(text)

    result = benchmark.pedantic(compile_text, rounds=2, iterations=1)
    assert result.specification.counts()["systems"] == parameters.n_systems
    benchmark.extra_info["systems"] = parameters.n_systems
    benchmark.extra_info["nmsl_lines"] = text.count("\n")


def test_scale_fault_detection_at_1000(benchmark, bare_compiler):
    """Injected faults are still found exactly at the 1000-system tier."""
    parameters = InternetParameters(
        n_domains=32,
        systems_per_domain=31,
        silent_domains=(5, 17),
        fast_pollers=(3, 30),
        egp_pollers=(40,),
    )
    internet = SyntheticInternet(parameters)
    specification = internet.specification()

    def check():
        return ConsistencyChecker(specification, bare_compiler.tree).check()

    outcome = benchmark.pedantic(check, rounds=2, iterations=1)
    assert len(outcome.inconsistencies) == (
        internet.expected_inconsistent_references()
    )
    benchmark.extra_info["faults_found"] = len(outcome.inconsistencies)
