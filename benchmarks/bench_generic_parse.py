"""FIG-6.1 — the generalized grammar, and the cost of the two-pass design.

The paper's compiler deliberately parses a *less specific* grammar in
pass 1 and defers clause differentiation to pass 2 so extensions can
reshape the language without touching the parser.  This ablation measures
what that buys and costs: pass 1 alone vs the full two-pass compile over
a mid-sized internet.
"""

import pytest

from repro.nmsl.generic import parse_generic
from repro.workloads.generator import InternetParameters, SyntheticInternet
from repro.workloads.paper import PAPER_SPEC_TEXT

MID_TEXT = SyntheticInternet(
    InternetParameters(n_domains=10, systems_per_domain=10)
).text()


def test_fig61_pass1_paper_examples(benchmark):
    declarations = benchmark(parse_generic, PAPER_SPEC_TEXT)
    assert len(declarations) == 7
    assert {decl.decltype for decl in declarations} == {
        "type",
        "process",
        "system",
        "domain",
    }
    benchmark.extra_info["reproduces"] = "Figure 6.1 (generalized grammar)"


def test_fig61_pass1_only_100_systems(benchmark):
    declarations = benchmark(parse_generic, MID_TEXT)
    assert len(declarations) == 114  # 4 processes + 100 systems + 10 domains


def test_fig61_two_pass_compile_100_systems(benchmark, bare_compiler):
    result = benchmark(bare_compiler.compile, MID_TEXT)
    assert result.specification.counts()["systems"] == 100
    benchmark.extra_info["ablation"] = (
        "compare against test_fig61_pass1_only_100_systems: the semantic "
        "pass dominates, so the generalized pass-1 grammar is nearly free"
    )
