"""CI smoke cycle for the ``nmsld`` daemon.

Boots the daemon on a unix socket, then exercises the full client
surface the way an operator session would:

1. ``ping`` + ``status`` + warm/cold ``check``;
2. ``diff`` of the campus spec against a scripted access-widening
   mutation — the relational gate must report NM401 as gating;
3. a ``rollout`` of the widened revision *with* ``diff_base`` — the
   service must refuse it with 403 ``vetoed``;
4. a clean ``rollout`` of the committed spec over a sub-campus element
   claim — must complete with a journal on disk;
5. supervision: the daemon runs ``--workers 2``; a check is parked on
   a worker and that worker is ``kill -9``-ed mid-request — the
   request must still be answered (replayed transparently), the
   restart must show up in ``GET /healthz`` and the pool must return
   to two idle workers;
6. ``GET /slo`` + ``GET /metrics`` — the exposition must pass the
   strict :mod:`repro.obs.promlint` parser with zero problems;
7. SIGTERM — graceful drain, exit 0, final metrics scrape flushed,
   the drained trace must contain one *connected* trace for the warm
   check (every span reachable from the request's trace id), and the
   audit log must hold the full worker lifecycle
   (``worker-start``/``worker-exit``/``worker-restart``/``replay``).

Leaves ``SERVICE_metrics.prom``, ``SERVICE_smoke.json``,
``SERVICE_audit.jsonl`` and ``SERVICE_trace.jsonl`` for CI to upload.
Exits non-zero on the first violated expectation.

Run as a script::

    PYTHONPATH=src python benchmarks/service_smoke.py [--keep-dir DIR]
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.promlint import lint  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
from widen_access import widen  # noqa: E402

CAMPUS = str(REPO_ROOT / "examples" / "campus.nmsl")
CS_ELEMENTS = ["gw.cs.campus.edu", "db.cs.campus.edu"]


def expect(condition, label, context=None):
    if not condition:
        print(f"FAIL: {label}: {context}", file=sys.stderr)
        raise SystemExit(1)
    print(f"ok: {label}")


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--keep-dir",
        type=Path,
        help="working directory (default: a fresh temp dir)",
    )
    args = parser.parse_args(argv)
    workdir = args.keep_dir or Path(tempfile.mkdtemp(prefix="nmsld-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)

    widened = workdir / "campus-widened.nmsl"
    widened.write_text(
        widen(Path(CAMPUS).read_text(encoding="utf-8")), encoding="utf-8"
    )

    socket_path = workdir / "nmsld.sock"
    ready_file = workdir / "ready.json"
    metrics_file = REPO_ROOT / "SERVICE_metrics.prom"
    audit_file = REPO_ROOT / "SERVICE_audit.jsonl"
    trace_file = REPO_ROOT / "SERVICE_trace.jsonl"
    for stale in (audit_file, trace_file):
        if stale.exists():
            stale.unlink()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.daemon",
            "--socket", str(socket_path),
            "--workers", "2",
            "--drain-grace", "10",
            "--http-port", "0",
            "--ready-file", str(ready_file),
            "--metrics", str(metrics_file),
            "--audit-log", str(audit_file),
            "--trace", str(trace_file),
            "--journal-dir", str(workdir / "journals"),
            "-v",
        ],
        env=env,
        cwd=REPO_ROOT,
    )
    try:
        for _ in range(200):
            if ready_file.exists():
                break
            if daemon.poll() is not None:
                raise SystemExit("daemon died during startup")
            time.sleep(0.05)
        else:
            raise SystemExit("daemon never became ready")
        ready = json.loads(ready_file.read_text())
        expect(ready["pid"] == daemon.pid, "daemon ready", ready)

        with ServiceClient(
            socket_path=str(socket_path), timeout_s=120.0
        ) as client:
            expect(client.request("ping")["ok"], "ping")

            cold = client.request("check", {"spec": CAMPUS}, deadline_s=60)
            expect(
                cold["ok"] and cold["result"]["consistent"]
                and cold["result"]["warm"] is False,
                "cold check consistent", cold,
            )
            warm = client.request("check", {"spec": CAMPUS})
            expect(
                warm["ok"] and warm["result"]["warm"] is True,
                "warm cache hit", warm,
            )
            expect(
                isinstance(warm.get("traceparent"), str)
                and warm["traceparent"].startswith("00-"),
                "response envelope carries traceparent", warm,
            )
            warm_trace_id = warm["traceparent"].split("-")[1]
            resources = warm.get("resources", {})
            expect(
                "cpu_s" in resources and "cache_hit_ratio" in resources,
                "response envelope carries resource accounting",
                resources,
            )

            diff = client.request(
                "diff", {"old": CAMPUS, "new": str(widened)},
                deadline_s=120,
            )
            expect(
                diff["ok"] and diff["result"]["gating"],
                "diff flags widened access as gating", diff,
            )
            expect(
                any(
                    finding["code"] == "NM401"
                    for finding in diff["result"]["findings"]
                ),
                "NM401 present in diff findings", diff,
            )

            vetoed = client.request(
                "rollout",
                {
                    "spec": str(widened),
                    "diff_base": CAMPUS,
                    "elements": CS_ELEMENTS,
                },
            )
            expect(
                not vetoed["ok"]
                and vetoed["error"]["kind"] == "vetoed"
                and vetoed["error"]["code"] == 403,
                "gated rollout vetoed", vetoed,
            )

            clean = client.request(
                "rollout",
                {"spec": CAMPUS, "elements": CS_ELEMENTS},
            )
            expect(
                clean["ok"] and clean["result"]["complete"]
                and clean["result"]["committed"] == sorted(CS_ELEMENTS),
                "clean rollout completes over the element claim", clean,
            )
            expect(
                clean["result"]["journal"] is not None
                and Path(clean["result"]["journal"]).exists(),
                "campaign journal on disk", clean["result"]["journal"],
            )

            status = client.request("status")
            expect(
                status["ok"]
                and status["result"]["requests_total"] >= 7,
                "status snapshot", status,
            )

        base = f"http://127.0.0.1:{ready['http_port']}"

        # -- supervision: kill -9 a worker mid-request ------------------
        def healthz():
            return json.loads(
                urllib.request.urlopen(base + "/healthz").read()
            )

        pool = healthz().get("pool") or {}
        expect(
            pool.get("states", {}).get("idle", 0) == 2,
            "/healthz shows two idle pool workers", pool,
        )

        import threading

        victim_box = {}

        def parked_check():
            with ServiceClient(
                socket_path=str(socket_path), timeout_s=120.0
            ) as parked:
                victim_box["response"] = parked.request(
                    "check",
                    {"spec": CAMPUS, "chaos_sleep_s": 4.0},
                    cls="bulk",
                )

        parker = threading.Thread(target=parked_check)
        parker.start()
        busy_pid = None
        for _ in range(100):
            workers = (healthz().get("pool") or {}).get("workers", [])
            busy = [w for w in workers if w["state"] == "busy"]
            if busy:
                busy_pid = busy[0]["pid"]
                break
            time.sleep(0.05)
        expect(busy_pid is not None, "a worker went busy on the check")
        os.kill(busy_pid, signal.SIGKILL)
        parker.join(timeout=60)
        expect(
            victim_box.get("response", {}).get("ok"),
            "request on the killed worker is replayed and answered",
            victim_box.get("response"),
        )
        recovered = {}
        for _ in range(200):
            recovered = healthz().get("pool") or {}
            if (
                recovered.get("restarts_total", 0) >= 1
                and recovered.get("states", {}).get("idle", 0) == 2
            ):
                break
            time.sleep(0.05)
        expect(
            recovered.get("restarts_total", 0) >= 1,
            "/healthz shows the worker restart", recovered,
        )
        expect(
            recovered.get("states", {}).get("idle", 0) == 2,
            "pool back to two idle workers", recovered,
        )

        scrape = urllib.request.urlopen(base + "/metrics").read().decode()
        expect(
            "repro_service_requests_total" in scrape
            and "repro_service_latency_seconds" in scrape,
            "live /metrics scrape",
        )
        expect(
            "repro_service_pool_workers" in scrape
            and 'repro_service_pool_restarts_total{reason="crash"}'
            in scrape,
            "pool supervision metrics in /metrics", None,
        )
        problems = lint(scrape)
        expect(not problems, "/metrics passes strict promlint", problems)
        slo = json.loads(urllib.request.urlopen(base + "/slo").read())
        expect(
            "interactive" in slo.get("classes", {})
            and slo["classes"]["interactive"]["windows"],
            "/slo reports per-class windows", slo,
        )
        health = json.loads(
            urllib.request.urlopen(base + "/healthz").read()
        )
        expect(health["status"] == "ok", "/healthz", health)
        expect(
            "slo" in health and "alerting" in health["slo"],
            "/healthz embeds the SLO summary", health,
        )

        daemon.send_signal(signal.SIGTERM)
        code = daemon.wait(timeout=30)
        expect(code == 0, "graceful SIGTERM drain exits 0", code)
        expect(
            metrics_file.exists()
            and "repro_service_requests_total" in metrics_file.read_text(),
            "final metrics flushed on drain",
        )
        problems = lint(metrics_file.read_text())
        expect(not problems, "drained metrics pass promlint", problems)

        audit_events = [
            json.loads(line)
            for line in audit_file.read_text().splitlines()
        ]
        expect(
            any(e["event"] == "admit" for e in audit_events)
            and any(e["event"] == "response" for e in audit_events)
            and any(e["event"] == "veto" for e in audit_events)
            and any(e["event"] == "apply" for e in audit_events),
            "audit log records admit/response/veto/apply events",
            sorted({e["event"] for e in audit_events}),
        )
        request_scoped = [
            e for e in audit_events
            if not e["event"].startswith("worker-")
        ]
        expect(
            all("trace_id" in e for e in request_scoped),
            "every request-scoped audit event carries a trace id",
        )
        pool_kinds = {e["event"] for e in audit_events}
        expect(
            {"worker-start", "worker-exit", "worker-restart",
             "replay"} <= pool_kinds,
            "audit log holds the full worker lifecycle",
            sorted(pool_kinds),
        )

        spans = [
            json.loads(line)
            for line in trace_file.read_text().splitlines()
        ]
        warm_spans = [s for s in spans if s["trace"] == warm_trace_id]
        # The request's minted context is the (unrecorded) trace root.
        roots = {"", warm["traceparent"].split("-")[2]}
        known = {s["span"] for s in warm_spans} | roots
        expect(
            any(s["name"] == "service.request" for s in warm_spans),
            "warm check produced a service.request span", warm_trace_id,
        )
        expect(
            warm_spans and all(s["parent"] in known for s in warm_spans),
            "warm-check trace is connected (all parents resolve)",
            warm_spans,
        )
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)

    (REPO_ROOT / "SERVICE_smoke.json").write_text(
        json.dumps(
            {
                "smoke": "service",
                "health": health,
                "pool": recovered,
                "drain_exit_code": code,
                "audit_events": len(audit_events),
                "trace_spans": len(spans),
                "warm_check_trace_spans": len(warm_spans),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print("service smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
