"""SEC-5 / runtime — verifying adherence in the (simulated) network.

Times one simulated hour of management traffic on the campus internet
with configuration installed via the management path, then the runtime
verifier's sweep over the query log — for a well-behaved network and one
with an injected misbehaving manager (which both the verifier and the
installed per-community rate limits must catch, independently).
"""

import pytest

from repro.netsim.monitor import RuntimeVerifier
from repro.netsim.processes import ManagementRuntime
from repro.workloads.scenarios import campus_internet

DURATION = 3600.0


@pytest.fixture(scope="module")
def compiled(compiler):
    return compiler.compile(campus_internet())


def _run(compiler, compiled, misbehaving_period=None):
    runtime = ManagementRuntime(compiler, compiled)
    runtime.install_configuration()
    overrides = {}
    if misbehaving_period is not None:
        bad = next(
            driver.instance.id
            for driver in runtime.drivers
            if driver.instance.process_name == "nocMonitor"
        )
        overrides[bad] = misbehaving_period
    runtime.start(duration_s=DURATION, misbehaving=overrides)
    runtime.run(DURATION)
    return runtime


def test_simulate_one_hour_clean(benchmark, compiler, compiled):
    runtime = benchmark.pedantic(
        lambda: _run(compiler, compiled), rounds=3, iterations=1
    )
    assert set(runtime.outcomes()) == {"ok"}
    benchmark.extra_info["queries"] = len(runtime.log)


def test_verify_clean_log(benchmark, compiler, compiled):
    runtime = _run(compiler, compiled)
    verifier = RuntimeVerifier(runtime.specification, runtime.facts)

    report = benchmark(verifier.verify, runtime.log)
    assert report.adheres


def test_detect_misbehaving_manager(benchmark, compiler, compiled):
    runtime = _run(compiler, compiled, misbehaving_period=60.0)
    verifier = RuntimeVerifier(runtime.specification, runtime.facts)

    report = benchmark(verifier.verify, runtime.log)
    assert not report.adheres
    assert runtime.outcomes().get("rate-limited", 0) > 0
    # Enforcement and observation agree exactly.
    assert verifier.cross_check_enforcement(runtime.log, report) == []
    benchmark.extra_info["violations"] = len(report.violations)
    benchmark.extra_info["rate_limited"] = report.rate_limited_queries
