"""FIG-3.1 — the NMSL system box diagram as one executable pipeline.

Specifications -> Compiler -> {Consistency Checker, Configuration
Generators} -> shipped configuration.  The benchmark times the whole path
over the paper's example internet and asserts every box produced its
output.
"""

from repro.codegen.base import ConfigurationGenerator
from repro.codegen.transport import CallbackTransport
from repro.consistency.checker import ConsistencyChecker
from repro.workloads.paper import PAPER_SPEC_TEXT


def test_fig31_full_pipeline(benchmark, compiler):
    delivered = {}

    def pipeline():
        delivered.clear()
        result = compiler.compile(PAPER_SPEC_TEXT)
        outcome = ConsistencyChecker(result.specification, compiler.tree).check()
        facts_text = compiler.generate("consistency", result).text()
        generator = ConfigurationGenerator(compiler, result)
        records = generator.ship(
            "BartsSnmpd",
            CallbackTransport(lambda element, text: delivered.update({element: text})),
        )
        return outcome, facts_text, records

    outcome, facts_text, records = benchmark(pipeline)
    # Descriptive aspect produced a verdict and CLP(R) statements.
    assert outcome.consistent
    assert "proc_export(snmpdReadOnly" in facts_text
    # Prescriptive aspect configured both elements.
    assert set(delivered) == {"romano.cs.wisc.edu", "cs.wisc.edu"}
    assert len(records) == 2
    benchmark.extra_info["reproduces"] = "Figure 3.1 (system design)"
