"""Chaos rollout benchmark: fault-injected campaigns across fixed seeds.

Runs two acceptance scenarios against the campus internet, once per
fixed seed, and emits a combined JSON report.  The CI chaos job runs
this and uploads ``BENCH_chaos.json`` as an artifact; ``make chaos``
does the same locally.

* **rollout** — 20% message loss everywhere, one agent crashing
  mid-apply, one agent wedged past the timeout: the campaign must
  converge on every reachable agent and dead-letter the rest.
* **heal** — 10% loss, one agent's store bit-rotted, one permanently
  dead, one flapping: the reconciliation loop must reach zero drift on
  every reachable element within the round budget and quarantine the
  dead one.  The per-seed heal-round counts are part of the report.

Each run is fully deterministic: the script asserts that repeating a
seed reproduces a bit-identical report before writing anything.

Run as a script::

    PYTHONPATH=src python benchmarks/chaos_rollout.py [--output BENCH_chaos.json]
"""

import argparse
import json
import sys
from pathlib import Path

from repro import obs
from repro.netsim.faults import FaultInjector, FaultSpec
from repro.netsim.processes import ManagementRuntime
from repro.nmsl.compiler import NmslCompiler
from repro.rollout import RetryPolicy
from repro.workloads.scenarios import campus_internet

SEEDS = (42, 7, 1989)
POLICY = RetryPolicy(max_attempts=8, exchange_retries=2)
V2_MARKER = "# generation-2 rollout marker\n"


def build_runtime(compiler):
    runtime = ManagementRuntime(compiler, compiler.compile(campus_internet()))
    runtime.install_configuration()  # baseline = last-known-good everywhere
    return runtime


def chaos_campaign(compiler, seed):
    """One fault-injected campaign: loss + crash-mid-apply + wedge."""
    runtime = build_runtime(compiler)
    targets = sorted(runtime.rollout_targets())
    crashed, wedged = targets[0], targets[1]
    injector = FaultInjector(
        seed=seed,
        default=FaultSpec(loss_rate=0.2),
        per_element={
            crashed: FaultSpec(loss_rate=0.2, crash_after=4),
            wedged: FaultSpec(stall_after=0),
        },
    )
    configs = {
        target: text + "\n" + V2_MARKER
        for target, text in runtime.rollout_targets().items()
    }
    report = runtime.rollout(
        policy=POLICY, jobs=4, seed=seed, injector=injector, configs=configs
    )
    return runtime, report, injector, crashed, wedged


def run_seed(compiler, seed):
    runtime, report, injector, crashed, wedged = chaos_campaign(compiler, seed)
    _runtime, repeat, _i, _c, _w = chaos_campaign(compiler, seed)
    assert report.to_json() == repeat.to_json(), (
        f"seed {seed} is not deterministic"
    )
    reachable = sorted(set(report.elements) - {crashed, wedged})
    converged = all(
        runtime.target_agent(target).last_good_config.endswith(V2_MARKER)
        for target in reachable
    )
    return {
        "seed": seed,
        "scenario": {
            "loss_rate": 0.2,
            "crashed": crashed,
            "wedged": wedged,
        },
        "reachable_converged": converged,
        "dead_letter": list(report.dead_letter()),
        "faults_injected": {
            element: dict(sorted(counts.items()))
            for element, counts in sorted(injector.injected.items())
        },
        "report": report.as_dict(),
    }


def heal_campaign(compiler, seed):
    """One fault-injected heal run: loss + bit-rot + dead + flapping."""
    from repro.heal import HealthRegistry

    runtime = ManagementRuntime(compiler, compiler.compile(campus_internet()))
    # Protocol install: each agent's generation counter starts at 1, so a
    # restarted (flapped) agent regresses visibly to 0.
    runtime.install_configuration(via_protocol=True)
    targets = sorted(runtime.rollout_targets())
    rotted, dead, flapping = targets[0], targets[1], targets[2]
    injector = FaultInjector(
        seed=seed,
        default=FaultSpec(loss_rate=0.1),
        per_element={
            rotted: FaultSpec(corrupt_store_after=0),
            dead: FaultSpec(crash_after=0),
            flapping: FaultSpec(flap_after=2, flap_restart_after=1),
        },
    )
    registry = HealthRegistry(
        targets,
        failure_threshold=2,
        cooldown_s=45.0,
        quarantine_after=2,
    )
    report = runtime.heal(
        policy=POLICY,
        jobs=4,
        seed=seed,
        injector=injector,
        registry=registry,
        interval_s=30.0,
        rounds=12,
    )
    return report, injector, rotted, dead, flapping


def run_heal_seed(compiler, seed):
    report, injector, rotted, dead, flapping = heal_campaign(compiler, seed)
    repeat, _i, _r, _d, _f = heal_campaign(compiler, seed)
    assert report.to_json() == repeat.to_json(), (
        f"heal seed {seed} is not deterministic"
    )
    return {
        "seed": seed,
        "scenario": {
            "loss_rate": 0.1,
            "bit_rotted": rotted,
            "dead": dead,
            "flapping": flapping,
        },
        "converged": report.converged,
        "rounds_used": report.rounds_used,
        "drift_detected": report.drift_detected(),
        "drift_repaired": report.drift_repaired(),
        "quarantined": list(report.quarantined),
        "faults_injected": {
            element: dict(sorted(counts.items()))
            for element, counts in sorted(injector.injected.items())
        },
        "report": report.as_dict(),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="BENCH_chaos.json",
        metavar="FILE",
        help="combined JSON report path (default: BENCH_chaos.json)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a deterministic (logical-clock) trace of the campaigns",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write campaign metrics as Prometheus text",
    )
    args = parser.parse_args(argv)

    compiler = NmslCompiler()
    # A logical clock keeps the exported trace and metrics deterministic:
    # re-running this benchmark yields byte-identical artifacts.
    with obs.scope(clock=obs.LogicalClock()) as session:
        runs = [run_seed(compiler, seed) for seed in SEEDS]
        heal_runs = [run_heal_seed(compiler, seed) for seed in SEEDS]
    if args.trace:
        session.tracer.write(args.trace)
        print(f"wrote trace to {args.trace}")
    if args.metrics:
        session.metrics.write(args.metrics)
        print(f"wrote metrics to {args.metrics}")
    combined = {
        "benchmark": "chaos_rollout",
        "policy": {
            "max_attempts": POLICY.max_attempts,
            "exchange_retries": POLICY.exchange_retries,
            "timeout_s": POLICY.timeout_s,
        },
        "seeds": list(SEEDS),
        "runs": runs,
        "heal_runs": heal_runs,
        "heal_rounds": {
            str(run["seed"]): run["rounds_used"] for run in heal_runs
        },
    }
    Path(args.output).write_text(
        json.dumps(combined, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    failures = 0
    for run in runs:
        expected_dead = sorted(
            (run["scenario"]["crashed"], run["scenario"]["wedged"])
        )
        ok = run["reachable_converged"] and run["dead_letter"] == expected_dead
        failures += 0 if ok else 1
        print(
            f"seed {run['seed']}: "
            f"{'ok' if ok else 'FAIL'} "
            f"(dead letter: {', '.join(run['dead_letter']) or 'none'})"
        )
    for run in heal_runs:
        ok = run["converged"] and run["quarantined"] == [
            run["scenario"]["dead"]
        ]
        failures += 0 if ok else 1
        print(
            f"heal seed {run['seed']}: "
            f"{'ok' if ok else 'FAIL'} "
            f"({run['rounds_used']} round(s), "
            f"{run['drift_repaired']}/{run['drift_detected']} repaired, "
            f"quarantined: {', '.join(run['quarantined']) or 'none'})"
        )
    print(f"wrote {args.output}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
