"""Scripted access-widening mutation for the CI diff gate.

Takes a committed specification and raises the first domain-level
``exports ... access ReadOnly`` grant to ``ReadWrite`` — the exact
change class ``nmslc diff`` must refuse to ship unwaived (NM401)::

    python benchmarks/widen_access.py examples/campus.nmsl widened.nmsl

The mutation is textual on purpose: the gate has to catch a plausible
hand edit of the source file, not a synthetic model transform.
"""

import argparse
import sys
from pathlib import Path


def widen(text: str) -> str:
    marker = "exports"
    needle = "access ReadOnly"
    start = text.find(marker)
    while start != -1:
        position = text.find(needle, start)
        if position == -1:
            break
        return (
            text[:position]
            + "access ReadWrite"
            + text[position + len(needle):]
        )
    raise ValueError("no 'access ReadOnly' export clause to widen")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("source", help="committed NMSL specification")
    parser.add_argument("output", help="where to write the widened revision")
    args = parser.parse_args(argv)

    text = Path(args.source).read_text(encoding="utf-8")
    mutated = widen(text)
    Path(args.output).write_text(mutated, encoding="utf-8")
    print(f"widened one grant: {args.source} -> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
