"""FIG-4.9 — the consistency relations, and the engine ablation.

Reproduces the Figure 4.9 model: the six relations are generated from the
paper's example internet, a missing permission is injected and its cause
reported, and the two checker implementations (closure fast path vs the
CLP(R) engine the paper actually describes) are compared on identical
workloads.
"""

import pytest

from repro.consistency.checker import ConsistencyChecker, check_with_clpr
from repro.consistency.facts import FactGenerator
from repro.consistency.report import InconsistencyKind
from repro.workloads.generator import InternetParameters, SyntheticInternet
from repro.workloads.paper import PAPER_SPEC_TEXT

#: The ablation workload: all literal targets, one injected fault per kind.
ABLATION = InternetParameters(
    n_domains=6,
    systems_per_domain=3,
    silent_domains=(2,),
    fast_pollers=(0,),
    egp_pollers=(7,),
)


def test_fig49_relations_generated(benchmark, bare_compiler):
    result = bare_compiler.compile(PAPER_SPEC_TEXT)

    def generate():
        return FactGenerator(result.specification, bare_compiler.tree).generate()

    facts = benchmark(generate)
    # The six relationships of Figure 4.9, as produced for the example:
    assert len(facts.containment) > 0  # contains(X, Y)
    assert len(facts.instances) == 3  # instan(X, Y, Z)
    assert len(facts.references) == 1  # ref_eq / ref_gt
    assert len(facts.permissions) == 3  # perm_eq / perm_gt
    benchmark.extra_info["reproduces"] = "Figure 4.9 (logical relationships)"


def test_fig49_inconsistency_proof_with_causes(benchmark, bare_compiler):
    spec = SyntheticInternet(
        InternetParameters(n_domains=3, systems_per_domain=2, silent_domains=(1,))
    ).specification()

    def check():
        return ConsistencyChecker(spec, bare_compiler.tree).check()

    outcome = benchmark(check)
    assert not outcome.consistent
    assert set(outcome.kinds()) == {InconsistencyKind.MISSING_PERMISSION}
    rendered = outcome.render()
    assert "reference:" in rendered and "origin:" in rendered


class TestEngineAblation:
    """Three engines on the same workload: the Python closure fast path,
    bottom-up datalog over the rule text, and top-down CLP(R) SLD
    resolution (the paper's architecture)."""

    def test_closure_engine(self, benchmark, bare_compiler):
        internet = SyntheticInternet(ABLATION)
        spec = internet.specification()

        def check():
            return ConsistencyChecker(spec, bare_compiler.tree).check()

        outcome = benchmark(check)
        assert len(outcome.inconsistencies) == (
            internet.expected_inconsistent_references()
        )
        benchmark.extra_info["engine"] = "closure (transitivity/distribution in Python)"

    def test_datalog_engine(self, benchmark, bare_compiler):
        from repro.consistency.datalog_path import check_with_datalog

        internet = SyntheticInternet(ABLATION)
        spec = internet.specification()

        def check():
            return check_with_datalog(spec, bare_compiler.tree)

        outcome = benchmark.pedantic(check, rounds=3, iterations=1)
        assert not outcome.consistent
        benchmark.extra_info["engine"] = "datalog semi-naive (bottom-up rules)"

    def test_clpr_engine(self, benchmark, bare_compiler):
        internet = SyntheticInternet(ABLATION)
        spec = internet.specification()

        def check():
            return check_with_clpr(spec, bare_compiler.tree)

        outcome = benchmark.pedantic(check, rounds=3, iterations=1)
        assert not outcome.consistent
        benchmark.extra_info["engine"] = "CLP(R) SLD resolution (paper's architecture)"
        benchmark.extra_info["note"] = (
            "the ablation DESIGN.md calls out: the paper's generic logic "
            "engine pays an order of magnitude over the pre-reduced closure"
        )
