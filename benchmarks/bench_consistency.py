"""FIG-4.9 — the consistency relations, and the engine ablation.

Reproduces the Figure 4.9 model: the six relations are generated from the
paper's example internet, a missing permission is injected and its cause
reported, and the checker implementations (indexed closure, unindexed
scan, and the CLP(R) engine the paper actually describes) are compared on
identical workloads.

Run as a script to emit ``BENCH_consistency.json``::

    PYTHONPATH=src python benchmarks/bench_consistency.py [--quick]
"""

import argparse
import contextlib
import dataclasses
import json
import time
from pathlib import Path

import pytest

from repro import obs
from repro.consistency.checker import ConsistencyChecker, check_with_clpr
from repro.consistency.facts import FactGenerator
from repro.consistency.report import InconsistencyKind
from repro.workloads.generator import InternetParameters, SyntheticInternet
from repro.workloads.paper import PAPER_SPEC_TEXT

#: The ablation workload: all literal targets, one injected fault per kind.
ABLATION = InternetParameters(
    n_domains=6,
    systems_per_domain=3,
    silent_domains=(2,),
    fast_pollers=(0,),
    egp_pollers=(7,),
)


def test_fig49_relations_generated(benchmark, bare_compiler):
    result = bare_compiler.compile(PAPER_SPEC_TEXT)

    def generate():
        return FactGenerator(result.specification, bare_compiler.tree).generate()

    facts = benchmark(generate)
    # The six relationships of Figure 4.9, as produced for the example:
    assert len(facts.containment) > 0  # contains(X, Y)
    assert len(facts.instances) == 3  # instan(X, Y, Z)
    assert len(facts.references) == 1  # ref_eq / ref_gt
    assert len(facts.permissions) == 3  # perm_eq / perm_gt
    benchmark.extra_info["reproduces"] = "Figure 4.9 (logical relationships)"


def test_fig49_inconsistency_proof_with_causes(benchmark, bare_compiler):
    spec = SyntheticInternet(
        InternetParameters(n_domains=3, systems_per_domain=2, silent_domains=(1,))
    ).specification()

    def check():
        return ConsistencyChecker(spec, bare_compiler.tree).check()

    outcome = benchmark(check)
    assert not outcome.consistent
    assert set(outcome.kinds()) == {InconsistencyKind.MISSING_PERMISSION}
    rendered = outcome.render()
    assert "reference:" in rendered and "origin:" in rendered


class TestEngineAblation:
    """Three engines on the same workload: the Python closure fast path,
    bottom-up datalog over the rule text, and top-down CLP(R) SLD
    resolution (the paper's architecture)."""

    def test_closure_engine(self, benchmark, bare_compiler):
        internet = SyntheticInternet(ABLATION)
        spec = internet.specification()

        def check():
            return ConsistencyChecker(spec, bare_compiler.tree).check()

        outcome = benchmark(check)
        assert len(outcome.inconsistencies) == (
            internet.expected_inconsistent_references()
        )
        benchmark.extra_info["engine"] = "closure (transitivity/distribution in Python)"

    def test_datalog_engine(self, benchmark, bare_compiler):
        from repro.consistency.datalog_path import check_with_datalog

        internet = SyntheticInternet(ABLATION)
        spec = internet.specification()

        def check():
            return check_with_datalog(spec, bare_compiler.tree)

        outcome = benchmark.pedantic(check, rounds=3, iterations=1)
        assert not outcome.consistent
        benchmark.extra_info["engine"] = "datalog semi-naive (bottom-up rules)"

    def test_clpr_engine(self, benchmark, bare_compiler):
        internet = SyntheticInternet(ABLATION)
        spec = internet.specification()

        def check():
            return check_with_clpr(spec, bare_compiler.tree)

        outcome = benchmark.pedantic(check, rounds=3, iterations=1)
        assert not outcome.consistent
        benchmark.extra_info["engine"] = "CLP(R) SLD resolution (paper's architecture)"
        benchmark.extra_info["note"] = (
            "the ablation DESIGN.md calls out: the paper's generic logic "
            "engine pays an order of magnitude over the pre-reduced closure"
        )


#: The scaling workload for the indexed-vs-scan comparison (large enough
#: that the scan's O(refs × edges) behaviour shows).
SCALING = InternetParameters(
    n_domains=64,
    systems_per_domain=16,
    applications_per_domain=4,
    silent_domains=(1,),
    fast_pollers=(2,),
)


class TestIndexedEngine:
    """The PermissionIndex path vs the unindexed reference scan."""

    def test_scan_engine_scaling(self, benchmark, bare_compiler):
        spec = SyntheticInternet(SCALING).specification()

        def check():
            return ConsistencyChecker(
                spec, bare_compiler.tree, engine="scan"
            ).check()

        outcome = benchmark.pedantic(check, rounds=3, iterations=1)
        assert not outcome.consistent
        benchmark.extra_info["engine"] = "scan (seed baseline, no index)"

    def test_indexed_engine_scaling(self, benchmark, bare_compiler):
        spec = SyntheticInternet(SCALING).specification()

        def check():
            return ConsistencyChecker(spec, bare_compiler.tree).check()

        outcome = benchmark.pedantic(check, rounds=3, iterations=1)
        assert not outcome.consistent
        benchmark.extra_info["engine"] = "indexed (PermissionIndex + memoized closure)"

    def test_engines_agree_on_scaling_workload(self, bare_compiler):
        spec = SyntheticInternet(SCALING).specification()
        scan = ConsistencyChecker(spec, bare_compiler.tree, engine="scan").check()
        indexed = ConsistencyChecker(spec, bare_compiler.tree).check()
        assert scan.consistent == indexed.consistent
        assert [
            (p.kind, p.message, p.causes) for p in scan.inconsistencies
        ] == [(p.kind, p.message, p.causes) for p in indexed.inconsistencies]


# ----------------------------------------------------------------------
# The BENCH_consistency.json emitter (``make bench`` / CI smoke).
# ----------------------------------------------------------------------

#: References timed under the scan engine at paper scale; the full scan
#: is extrapolated (it takes ~20 minutes — the point of the estimate).
SCAN_SAMPLE = 32


def _timed_check(spec, tree, engine, jobs=1):
    started = time.perf_counter()
    outcome = ConsistencyChecker(spec, tree, engine=engine).check(jobs=jobs)
    return time.perf_counter() - started, outcome


def _counter_value(o, name) -> float:
    return o.metrics.value(name) or 0


def _drop_exports(spec, fraction):
    """A changed version of ``spec``: one domain loses its exports.

    Every other declaration is shared by identity with ``spec`` — the
    deployed-evolution shape (one domain's specification changes, the
    rest of the internet does not), and the shape the delta API's
    identity fast paths are built for.  ``fraction`` picks the domain so
    successive calls can change different ones.
    """
    names = sorted(spec.domains)
    name = names[int(len(names) * fraction) % len(names)]
    domains = dict(spec.domains)
    domains[name] = dataclasses.replace(domains[name], exports=())
    return dataclasses.replace(spec, domains=domains)


def run_scaling(quick: bool = False, jobs: int = 1) -> dict:
    """Time scan vs indexed vs incremental across workload sizes."""
    from repro.nmsl.compiler import CompilerOptions, NmslCompiler

    compiler = NmslCompiler(CompilerOptions(register_codegen=False))
    sizes = [(16, 8, 4), (64, 16, 4)]
    if not quick:
        sizes.append((256, 32, 8))
    rows = []
    with contextlib.ExitStack() as stack:
        o = obs.current()
        if not o.enabled:
            # No session installed by the caller: keep one for the loop so
            # the per-row index/cache figures below are always available.
            o = stack.enter_context(obs.scope())
        rows = _scaling_rows(compiler, sizes, jobs, o)
        if not quick:
            rows.append(_paper_scale_row(compiler))
    largest = rows[-1]
    return {
        "benchmark": "consistency-engine",
        "mode": "quick" if quick else "full",
        "jobs": jobs,
        "rows": rows,
        "largest_speedup": largest["speedup"],
        "metrics_snapshot": {
            name: family
            for name, family in o.metrics.snapshot().items()
            if name.startswith("repro_consistency")
        },
    }


def check_monotonic_speedups(rows) -> list:
    """The indexed engine must pull further ahead of the scan as the
    internet grows; returns the offending rows (empty when monotone)."""
    offenders = []
    previous = None
    for row in rows:
        speedup = row["speedup"]
        if previous is not None and speedup < previous:
            offenders.append(row)
        previous = speedup
    return offenders


def _timed_recheck(delta_checker, spec):
    """(seconds, result) for a warm one-domain incremental recheck."""
    delta_checker.check(spec)
    warm = _drop_exports(spec, 0.25)
    delta_checker.check(warm)  # warm the lazy per-fact-set caches
    changed = _drop_exports(warm, 0.5)
    started = time.perf_counter()
    incremental = delta_checker.check(changed)
    return time.perf_counter() - started, incremental


def _incremental_cell(incremental) -> dict:
    return {
        "rechecked": incremental.stats["rechecked"],
        "reused": incremental.stats["reused"],
        "facts_expanded": incremental.stats.get("facts_expanded"),
        "facts_reused": incremental.stats.get("facts_reused"),
    }


def _scaling_rows(compiler, sizes, jobs, o) -> list:
    from repro.consistency.evolution import DeltaChecker

    rows = []
    for n_domains, per_domain, apps in sizes:
        params = InternetParameters(
            n_domains=n_domains,
            systems_per_domain=per_domain,
            applications_per_domain=apps,
            silent_domains=(1,),
            fast_pollers=(2,),
        )
        spec = SyntheticInternet(params).specification()
        scan_s, scan = _timed_check(spec, compiler.tree, "scan")
        hits_before = _counter_value(o, "repro_consistency_index_hits_total")
        misses_before = _counter_value(
            o, "repro_consistency_index_misses_total"
        )
        indexed_s, indexed = _timed_check(spec, compiler.tree, "indexed", jobs)
        index_hits = (
            _counter_value(o, "repro_consistency_index_hits_total")
            - hits_before
        )
        index_misses = (
            _counter_value(o, "repro_consistency_index_misses_total")
            - misses_before
        )
        cache_hit_ratio = o.metrics.value("repro_consistency_cache_hit_ratio")
        assert scan.consistent == indexed.consistent
        assert len(scan.inconsistencies) == len(indexed.inconsistencies)

        # Incremental: a real one-domain evolution (exports dropped via
        # dataclasses.replace, everything else shared), rechecked warm.
        delta_checker = DeltaChecker(compiler.tree, jobs=jobs)
        incremental_s, incremental = _timed_recheck(delta_checker, spec)

        rows.append(
            {
                "workload": {
                    "n_domains": n_domains,
                    "systems_per_domain": per_domain,
                    "applications_per_domain": apps,
                    "references": scan.stats["references"],
                },
                "scan_seconds": round(scan_s, 4),
                "indexed_seconds": round(indexed_s, 4),
                "speedup": round(scan_s / indexed_s, 2) if indexed_s else None,
                "incremental_seconds": round(incremental_s, 4),
                "incremental": _incremental_cell(incremental),
                "metrics": {
                    "index_hits": int(index_hits),
                    "index_misses": int(index_misses),
                    "cache_hit_ratio": cache_hit_ratio,
                },
            }
        )
    return rows


def _paper_scale_row(compiler, jobs: int = 2, rounds: int = 2) -> dict:
    """The Section 3.1 paper-scale row: 10,000 domains, 100,000 systems.

    The scan engine would take ~20 minutes here, so its figure is
    extrapolated from a strided ``SCAN_SAMPLE``-reference sample and
    flagged ``scan_estimated``.  The indexed and sharded checks are
    best-of-``rounds`` (fork noise on busy hosts); the incremental
    figure is a warm one-domain recheck through the delta API.
    """
    import gc as _gc

    from repro.consistency.evolution import DeltaChecker
    from repro.workloads.paper import PaperScaleInternet, PaperScaleParameters

    params = PaperScaleParameters(silent_domains=(17, 4000), fast_pollers=(5,))
    internet = PaperScaleInternet(params)
    spec = internet.specification()

    indexed_s = None
    for _ in range(rounds):
        elapsed, indexed = _timed_check(spec, compiler.tree, "indexed")
        indexed_s = elapsed if indexed_s is None else min(indexed_s, elapsed)
        _gc.collect()
    assert len(indexed.inconsistencies) == (
        internet.expected_inconsistent_references()
    )

    sharded_s = None
    for _ in range(rounds):
        elapsed, sharded = _timed_check(spec, compiler.tree, "indexed", jobs)
        sharded_s = elapsed if sharded_s is None else min(sharded_s, elapsed)
        _gc.collect()
    assert len(sharded.inconsistencies) == len(indexed.inconsistencies)

    # Scan estimate over an evenly strided reference sample.
    scan_checker = ConsistencyChecker(spec, compiler.tree, engine="scan")
    facts = scan_checker.facts
    pending = list(enumerate(facts.references))
    sample = pending[:: max(1, len(pending) // SCAN_SAMPLE)][:SCAN_SAMPLE]
    started = time.perf_counter()
    scan_checker._reduce(facts, sample, 1)
    scan_estimate = (
        (time.perf_counter() - started) / len(sample) * len(pending)
    )
    del scan_checker, facts
    _gc.collect()

    delta_checker = DeltaChecker(compiler.tree)
    incremental_s, incremental = _timed_recheck(delta_checker, spec)

    return {
        "workload": {
            "n_domains": params.n_domains,
            "systems_per_domain": params.systems_per_domain,
            "applications_per_domain": params.applications_per_domain,
            "references": indexed.stats["references"],
        },
        "scan_seconds": round(scan_estimate, 1),
        "scan_estimated": True,
        "scan_sample_references": len(sample),
        "indexed_seconds": round(indexed_s, 4),
        "sharded_seconds": round(sharded_s, 4),
        "sharded_jobs": jobs,
        "speedup": round(scan_estimate / indexed_s, 2),
        "incremental_seconds": round(incremental_s, 4),
        "incremental": _incremental_cell(incremental),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Indexed/incremental consistency engine benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workloads only (CI smoke)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="reduction shards (threads)"
    )
    parser.add_argument(
        "--output",
        default="BENCH_consistency.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="also write a trace of the benchmark run (.jsonl or Chrome)",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="also write the full metrics registry as Prometheus text",
    )
    args = parser.parse_args(argv)
    with obs.scope() as session:
        report = run_scaling(quick=args.quick, jobs=args.jobs)
    if args.trace:
        session.tracer.write(args.trace)
        print(f"wrote trace to {args.trace}")
    if args.metrics:
        session.metrics.write(args.metrics)
        print(f"wrote metrics to {args.metrics}")
    Path(args.output).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    for row in report["rows"]:
        workload = row["workload"]
        scan = f"scan {row['scan_seconds']}s"
        if row.get("scan_estimated"):
            scan += f" (est. from {row['scan_sample_references']} refs)"
        sharded = ""
        if "sharded_seconds" in row:
            sharded = (
                f", sharded {row['sharded_seconds']}s"
                f" (jobs={row['sharded_jobs']})"
            )
        print(
            f"{workload['n_domains']}x{workload['systems_per_domain']}"
            f"x{workload['applications_per_domain']} "
            f"({workload['references']} refs): "
            f"{scan}, indexed {row['indexed_seconds']}s "
            f"({row['speedup']}x){sharded}, "
            f"incremental {row['incremental_seconds']}s "
            f"(rechecked {row['incremental']['rechecked']}, "
            f"reused {row['incremental']['reused']})"
        )
    print(f"wrote {args.output} (largest speedup {report['largest_speedup']}x)")
    offenders = check_monotonic_speedups(report["rows"])
    if offenders:
        sizes = [row["workload"]["n_domains"] for row in offenders]
        print(
            "WARNING: speedup not monotone at n_domains="
            f"{sizes} — noisy host? rerun before publishing"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
