"""SEC-5 — the prescriptive aspect.

Generate configuration for every element, ship it over each delivery
method, and measure centralized generation against the paper's suggested
distributed refinement ("the configuration information for that process
can be generated ... on the network element on which the process
executes") — per-element regeneration avoids the single-computer
bottleneck at the cost of repeated compiler runs.
"""

import pytest

from repro.codegen.base import ConfigurationGenerator
from repro.codegen.transport import (
    CallbackTransport,
    FileDropTransport,
    MailSpoolTransport,
)
from repro.workloads.generator import InternetParameters, SyntheticInternet

PARAMS = InternetParameters(n_domains=10, systems_per_domain=5)


@pytest.fixture(scope="module")
def compiled(compiler):
    text = SyntheticInternet(PARAMS).text()
    return compiler.compile(text)


def test_centralized_generation(benchmark, compiler, compiled):
    generator = ConfigurationGenerator(compiler, compiled)

    def central():
        return generator.generate("BartsSnmpd")

    configs = benchmark(central)
    assert len(configs) == PARAMS.n_systems
    benchmark.extra_info["mode"] = "centralized (one run, all elements)"


def test_distributed_generation_per_element(benchmark, compiler, compiled):
    generator = ConfigurationGenerator(compiler, compiled)
    element = SyntheticInternet(PARAMS).system_name(0, 0)

    def one_element():
        return generator.generate_for_element("BartsSnmpd", element)

    config = benchmark(one_element)
    assert config.element == element
    benchmark.extra_info["mode"] = (
        "distributed (per-element regeneration; multiply by element count "
        "for total work, divided across the elements themselves)"
    )


def test_ship_via_files(benchmark, compiler, compiled, tmp_path_factory):
    generator = ConfigurationGenerator(compiler, compiled)

    def ship():
        spool = tmp_path_factory.mktemp("spool")
        return generator.ship("BartsSnmpd", FileDropTransport(spool))

    records = benchmark.pedantic(ship, rounds=3, iterations=1)
    assert len(records) == PARAMS.n_systems


def test_ship_via_mail(benchmark, compiler, compiled, tmp_path_factory):
    generator = ConfigurationGenerator(compiler, compiled)

    def ship():
        spool = tmp_path_factory.mktemp("mail")
        return generator.ship("BartsSnmpd", MailSpoolTransport(spool))

    records = benchmark.pedantic(ship, rounds=3, iterations=1)
    assert all(record.destination.startswith("postmaster@") for record in records)


def test_ship_via_management_protocol(benchmark, compiler, compiled):
    """The paper's preferred method, literally: SNMP Sets into each
    agent's enterprise config objects (real BER on the wire)."""
    from repro.netsim.processes import ManagementRuntime

    def install():
        runtime = ManagementRuntime(compiler, compiled)
        return runtime.install_configuration(via_protocol=True)

    configured = benchmark.pedantic(install, rounds=3, iterations=1)
    assert configured == PARAMS.n_systems


def test_ship_via_direct_install(benchmark, compiler, compiled):
    """Baseline for the protocol-install overhead: direct policy load."""
    from repro.netsim.processes import ManagementRuntime

    def install():
        runtime = ManagementRuntime(compiler, compiled)
        return runtime.install_configuration(via_protocol=False)

    configured = benchmark.pedantic(install, rounds=3, iterations=1)
    assert configured == PARAMS.n_systems
