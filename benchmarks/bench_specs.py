"""FIG-4.2 / FIG-4.4 / FIG-4.6 / FIG-4.8 — the paper's example specs.

Each benchmark compiles one figure's verbatim text through both passes
and asserts the reproduced structure matches what the paper describes, so
the timing covers exactly the artifact the figure shows.
"""

import pytest

from repro.mib.tree import Access
from repro.workloads.paper import (
    CS_WISC_EDU_SYSTEM_SPEC,
    FIG_42_TYPE_SPECS,
    FIG_44_PROCESS_SPECS,
    FIG_46_SYSTEM_SPEC,
    FIG_48_DOMAIN_SPEC,
)


def test_fig42_type_spec(benchmark, bare_compiler):
    """Figure 4.2: the IP address table type specifications."""

    def compile_types():
        return bare_compiler.compile(FIG_42_TYPE_SPECS).specification

    spec = benchmark(compile_types)
    assert set(spec.types) == {"ipAddrTable", "IpAddrEntry"}
    assert spec.types["ipAddrTable"].access is Access.READ_ONLY
    entry = spec.types["IpAddrEntry"].asn1_type
    assert entry.field_names() == (
        "ipAdEntAddr",
        "ipAdEntIfIndex",
        "ipAdEntNetMask",
        "ipAdEntBcastAddr",
    )
    benchmark.extra_info["reproduces"] = "Figure 4.2"


def test_fig44_process_specs(benchmark, bare_compiler):
    """Figure 4.4: snmpdReadOnly agent and snmpaddr application."""

    def compile_processes():
        return bare_compiler.compile(FIG_44_PROCESS_SPECS).specification

    spec = benchmark(compile_processes)
    agent = spec.processes["snmpdReadOnly"]
    app = spec.processes["snmpaddr"]
    assert agent.is_agent()
    assert agent.exports[0].frequency.min_period == 300
    assert app.params == (("SysAddr", "Process"), ("Dest", "IpAddress"))
    assert app.queries[0].frequency.min_period == 3600  # "infrequent"
    benchmark.extra_info["reproduces"] = "Figure 4.4"


def test_fig46_system_spec(benchmark, bare_compiler):
    """Figure 4.6: romano.cs.wisc.edu (needs Figure 4.4's processes)."""
    text = FIG_44_PROCESS_SPECS + FIG_46_SYSTEM_SPEC

    def compile_system():
        return bare_compiler.compile(text).specification

    spec = benchmark(compile_system)
    romano = spec.systems["romano.cs.wisc.edu"]
    assert romano.cpu == "sparc"
    assert romano.interfaces[0].speed_bps == 10_000_000
    assert romano.opsys_version == "4.0.1"
    assert len(romano.supports) == 7  # all MIB-I groups except EGP
    assert romano.processes[0].process_name == "snmpdReadOnly"
    benchmark.extra_info["reproduces"] = "Figure 4.6"


def test_fig48_domain_spec(benchmark, bare_compiler):
    """Figure 4.8: the wisc-cs domain (needs Figures 4.4 and 4.6)."""
    text = (
        FIG_44_PROCESS_SPECS
        + FIG_46_SYSTEM_SPEC
        + CS_WISC_EDU_SYSTEM_SPEC
        + FIG_48_DOMAIN_SPEC
    )

    def compile_domain():
        return bare_compiler.compile(text).specification

    spec = benchmark(compile_domain)
    domain = spec.domains["wisc-cs"]
    assert domain.systems == ("romano.cs.wisc.edu", "cs.wisc.edu")
    assert domain.processes[0].args == ("*", "*")
    assert domain.exports[0].to_domain == "public"
    benchmark.extra_info["reproduces"] = "Figure 4.8"
