"""Tests for MIB views."""

import pytest

from repro.errors import MibError
from repro.mib.mib1 import build_mib1
from repro.mib.view import MibView


@pytest.fixture(scope="module")
def tree():
    return build_mib1()


class TestConstruction:
    def test_full_view(self, tree):
        view = MibView.full(tree)
        assert view.covers_path("mgmt.mib.system.sysDescr")
        assert view.covers_path("mgmt.mib.egp")

    def test_empty_view(self, tree):
        view = MibView.empty(tree)
        assert view.is_empty()
        assert not view
        assert not view.covers_path("mgmt.mib.system")

    def test_unknown_path_raises(self, tree):
        with pytest.raises(MibError):
            MibView(tree, ("mgmt.mib.nosuch",))

    def test_nested_subtree_normalised_away(self, tree):
        view = MibView(tree, ("mgmt.mib.ip", "mgmt.mib.ip.ipAddrTable"))
        assert len(view.root_oids()) == 1

    def test_duplicates_removed(self, tree):
        view = MibView(tree, ("mgmt.mib.udp", "mgmt.mib.udp"))
        assert len(view.root_oids()) == 1


class TestCoverage:
    def test_group_view_covers_variable(self, tree):
        view = MibView(tree, ("mgmt.mib.ip",))
        assert view.covers_path("mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntAddr")
        assert not view.covers_path("mgmt.mib.tcp.tcpInSegs")

    def test_covers_view_subset(self, tree):
        big = MibView(tree, ("mgmt.mib",))
        small = MibView(tree, ("mgmt.mib.ip", "mgmt.mib.udp"))
        assert big.covers_view(small)
        assert not small.covers_view(big)

    def test_paper_figure_46_view_excludes_egp(self, tree):
        romano = MibView(
            tree,
            (
                "mgmt.mib.system",
                "mgmt.mib.at",
                "mgmt.mib.interfaces",
                "mgmt.mib.ip",
                "mgmt.mib.icmp",
                "mgmt.mib.tcp",
                "mgmt.mib.udp",
            ),
        )
        assert romano.covers_path("mgmt.mib.tcp.tcpInSegs")
        assert not romano.covers_path("mgmt.mib.egp.egpInMsgs")

    def test_node_for(self, tree):
        view = MibView(tree, ("mgmt.mib.udp",))
        assert view.node_for("mgmt.mib.udp.udpInErrors").name == "udpInErrors"
        assert view.node_for("mgmt.mib.tcp.tcpInSegs") is None
        assert view.node_for("bogus.path") is None


class TestAlgebra:
    def test_union(self, tree):
        view = MibView(tree, ("mgmt.mib.udp",)).union(MibView(tree, ("mgmt.mib.tcp",)))
        assert view.covers_path("mgmt.mib.udp.udpNoPorts")
        assert view.covers_path("mgmt.mib.tcp.tcpMaxConn")

    def test_intersection_nested(self, tree):
        ip = MibView(tree, ("mgmt.mib.ip",))
        table = MibView(tree, ("mgmt.mib.ip.ipAddrTable",))
        both = ip.intersection(table)
        assert both.covers_path("mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntAddr")
        assert not both.covers_path("mgmt.mib.ip.ipForwarding")

    def test_intersection_disjoint_is_empty(self, tree):
        udp = MibView(tree, ("mgmt.mib.udp",))
        tcp = MibView(tree, ("mgmt.mib.tcp",))
        assert udp.intersection(tcp).is_empty()

    def test_equality_and_hash(self, tree):
        a = MibView(tree, ("mgmt.mib.udp", "mgmt.mib.tcp"))
        b = MibView(tree, ("mgmt.mib.tcp", "mgmt.mib.udp"))
        assert a == b
        assert hash(a) == hash(b)


class TestEnumeration:
    def test_leaves_unique_and_ordered(self, tree):
        view = MibView(tree, ("mgmt.mib.udp", "mgmt.mib.udp.udpInErrors"))
        leaves = list(view.leaves())
        assert [leaf.name for leaf in leaves] == [
            "udpInDatagrams",
            "udpNoPorts",
            "udpInErrors",
            "udpOutDatagrams",
        ]

    def test_variable_count(self, tree):
        assert MibView(tree, ("mgmt.mib.udp",)).variable_count() == 4
