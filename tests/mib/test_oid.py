"""Tests for Oid, including property-based ordering/prefix laws."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import OidError
from repro.mib.oid import INTERNET, MGMT, MIB, Oid

oids = st.lists(st.integers(0, 1000), max_size=10).map(Oid)


class TestConstruction:
    def test_from_string(self):
        assert Oid("1.3.6.1").components == (1, 3, 6, 1)

    def test_from_iterable(self):
        assert Oid([1, 3, 6]).components == (1, 3, 6)

    def test_from_oid_is_identity(self):
        original = Oid("1.2.3")
        assert Oid(original) == original

    def test_leading_trailing_dots_tolerated(self):
        assert Oid(".1.3.6.") == Oid("1.3.6")

    def test_empty(self):
        assert len(Oid()) == 0
        assert str(Oid("")) == ""

    def test_malformed_string(self):
        with pytest.raises(OidError):
            Oid("1.x.3")

    def test_negative_component(self):
        with pytest.raises(OidError):
            Oid([1, -2])


class TestStructure:
    def test_child(self):
        assert MGMT.child(1) == MIB

    def test_parent(self):
        assert MIB.parent == MGMT

    def test_parent_of_empty_raises(self):
        with pytest.raises(OidError):
            _ = Oid().parent

    def test_add_oid(self):
        assert MGMT + Oid("1.4") == Oid("1.3.6.1.2.1.4")

    def test_add_string(self):
        assert MGMT + "1" == MIB

    def test_starts_with(self):
        assert MIB.starts_with(INTERNET)
        assert MIB.starts_with(MIB)
        assert not INTERNET.starts_with(MIB)

    def test_strip_prefix(self):
        assert MIB.strip_prefix(MGMT) == Oid("1")

    def test_strip_non_prefix_raises(self):
        with pytest.raises(OidError):
            INTERNET.strip_prefix(MIB)

    def test_indexing(self):
        assert MIB[0] == 1
        assert MIB[1:3] == Oid("3.6")


class TestValueSemantics:
    def test_equality_with_tuple(self):
        assert Oid("1.2") == (1, 2)

    def test_hashable(self):
        assert len({Oid("1.2"), Oid("1.2"), Oid("1.3")}) == 2

    def test_ordering_is_lexicographic(self):
        assert Oid("1.2") < Oid("1.2.0")
        assert Oid("1.2.9") < Oid("1.10")

    def test_str_and_repr(self):
        assert str(Oid("1.3.6")) == "1.3.6"
        assert "1.3.6" in repr(Oid("1.3.6"))


class TestProperties:
    @given(oids, oids)
    def test_concat_then_startswith(self, a, b):
        assert (a + b).starts_with(a)

    @given(oids, oids)
    def test_strip_inverts_concat(self, a, b):
        assert (a + b).strip_prefix(a) == b

    @given(oids)
    def test_string_roundtrip(self, oid):
        assert Oid(str(oid)) == oid

    @given(oids, oids)
    def test_ordering_matches_tuples(self, a, b):
        assert (a < b) == (a.components < b.components)

    @given(oids, st.integers(0, 100))
    def test_child_parent_inverse(self, oid, component):
        assert oid.child(component).parent == oid
