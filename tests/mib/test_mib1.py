"""Tests for the RFC 1066 MIB-I definition."""

import pytest

from repro.asn1.nodes import SequenceOfType, SequenceType
from repro.asn1.types import Asn1Module
from repro.mib.mib1 import GROUP_NAMES, build_mib1
from repro.mib.oid import Oid
from repro.mib.tree import Access


@pytest.fixture(scope="module")
def tree():
    return build_mib1()


class TestStructure:
    def test_all_groups_present(self, tree):
        for group in GROUP_NAMES:
            assert tree.knows(f"mgmt.mib.{group}")

    def test_group_oids(self, tree):
        assert tree.resolve("mgmt.mib.system").oid == Oid("1.3.6.1.2.1.1")
        assert tree.resolve("mgmt.mib.egp").oid == Oid("1.3.6.1.2.1.8")

    def test_system_variables(self, tree):
        node = tree.resolve("mgmt.mib.system.sysUpTime")
        assert node.oid == Oid("1.3.6.1.2.1.1.3")
        assert node.access is Access.READ_ONLY

    def test_paper_figure_42_path_resolves(self, tree):
        node = tree.resolve("mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntAddr")
        assert node.oid == Oid("1.3.6.1.2.1.4.20.1.1")

    def test_entry_alias_and_rfc_name_agree(self, tree):
        via_alias = tree.resolve("mgmt.mib.ip.ipAddrTable.IpAddrEntry")
        via_name = tree.resolve("mgmt.mib.ip.ipAddrTable.ipAddrEntry")
        assert via_alias is via_name

    def test_table_syntax_is_sequence_of_entry(self, tree):
        table = tree.resolve("mgmt.mib.ip.ipAddrTable")
        assert isinstance(table.syntax, SequenceOfType)
        assert isinstance(table.syntax.element, SequenceType)
        assert "ipAdEntAddr" in table.syntax.element.field_names()

    def test_if_admin_status_writable(self, tree):
        assert tree.resolve("mgmt.mib.interfaces.ifTable.ifEntry.ifAdminStatus").access is Access.READ_WRITE

    def test_icmp_counter_count(self, tree):
        leaves = list(tree.leaves(tree.resolve("mgmt.mib.icmp").oid))
        assert len(leaves) == 26

    def test_udp_group(self, tree):
        assert tree.resolve("mgmt.mib.udp.udpInDatagrams").oid == Oid("1.3.6.1.2.1.7.1")

    def test_route_table_writable_columns(self, tree):
        node = tree.resolve("mgmt.mib.ip.ipRoutingTable.IpRouteEntry.ipRouteNextHop")
        assert node.access is Access.READ_WRITE

    def test_leaf_count_matches_mib1_scale(self, tree):
        total = sum(1 for _ in tree.leaves(Oid("1.3.6.1.2.1")))
        # MIB-I defines roughly one hundred objects.
        assert 90 <= total <= 130

    def test_root_aliases(self, tree):
        assert tree.resolve("internet.mgmt.mib.system").name == "system"
        assert tree.resolve("iso.org.dod.internet").name == "internet"


class TestModuleIntegration:
    def test_entry_types_defined_in_module(self):
        module = Asn1Module()
        build_mib1(module)
        for name in ("IpAddrEntry", "IfEntry", "AtEntry", "IpRouteEntry",
                     "TcpConnEntry", "EgpNeighEntry"):
            assert name in module

    def test_entry_type_fields(self):
        module = Asn1Module()
        build_mib1(module)
        entry = module.lookup("IpAddrEntry")
        assert entry.field_names() == (
            "ipAdEntAddr",
            "ipAdEntIfIndex",
            "ipAdEntNetMask",
            "ipAdEntBcastAddr",
        )
