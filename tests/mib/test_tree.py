"""Tests for the MIB registration tree."""

import pytest

from repro.asn1.nodes import IntegerType
from repro.errors import MibError
from repro.mib.oid import Oid
from repro.mib.tree import Access, MibTree


@pytest.fixture
def tree():
    tree = MibTree()
    tree.register("iso", "1")
    tree.register("org", "1.3")
    tree.register("leafA", "1.3.1", syntax=IntegerType(), access=Access.READ_ONLY)
    tree.register("leafB", "1.3.2", syntax=IntegerType(), access=Access.READ_WRITE)
    tree.add_root_alias("iso", "1")
    return tree


class TestAccess:
    def test_parse_variants(self):
        assert Access.parse("ReadOnly") is Access.READ_ONLY
        assert Access.parse("read-only") is Access.READ_ONLY
        assert Access.parse("read_write") is Access.READ_WRITE
        assert Access.parse("Any") is Access.ANY
        assert Access.parse("None") is Access.NONE

    def test_parse_unknown(self):
        with pytest.raises(MibError):
            Access.parse("sometimes")

    def test_read_write_flags(self):
        assert Access.READ_ONLY.allows_read()
        assert not Access.READ_ONLY.allows_write()
        assert Access.WRITE_ONLY.allows_write()
        assert not Access.WRITE_ONLY.allows_read()
        assert Access.ANY.allows_read() and Access.ANY.allows_write()
        assert not Access.NONE.allows_read()

    def test_permits(self):
        assert Access.READ_WRITE.permits(Access.READ_ONLY)
        assert not Access.READ_ONLY.permits(Access.READ_WRITE)
        assert Access.READ_ONLY.permits(Access.NONE)
        assert Access.ANY.permits(Access.WRITE_ONLY)
        assert not Access.WRITE_ONLY.permits(Access.READ_ONLY)


class TestRegistration:
    def test_register_and_lookup_by_oid(self, tree):
        assert tree.node_at("1.3.1").name == "leafA"

    def test_anonymous_ancestors_created(self):
        tree = MibTree()
        tree.register("deep", "1.2.3.4.5")
        assert tree.contains_oid("1.2.3.4")
        assert tree.node_at("1.2.3").name == ""

    def test_fill_in_anonymous_ancestor(self):
        tree = MibTree()
        tree.register("deep", "1.2.3")
        node = tree.register("mid", "1.2")
        assert tree.node_at("1.2") is node
        assert node.children[3].name == "deep"

    def test_conflicting_name_rejected(self, tree):
        with pytest.raises(MibError):
            tree.register("other", "1.3.1")

    def test_reregister_same_name_merges(self, tree):
        node = tree.register("leafA", "1.3.1", description="updated")
        assert node.description == "updated"

    def test_empty_oid_rejected(self, tree):
        with pytest.raises(MibError):
            tree.register("x", "")


class TestNamePaths:
    def test_resolve(self, tree):
        assert tree.resolve("iso.org.leafA").oid == Oid("1.3.1")

    def test_resolve_via_alias(self):
        tree = MibTree()
        tree.register("table", "1.1")
        tree.register("entry", "1.1.1", aliases=("Entry",))
        tree.register("top", "1")
        tree.add_root_alias("top", "1")
        assert tree.resolve("top.table.Entry").name == "entry"

    def test_unknown_root(self, tree):
        with pytest.raises(MibError, match="unknown name-path root"):
            tree.resolve("nowhere.leafA")

    def test_unknown_member(self, tree):
        with pytest.raises(MibError, match="no member"):
            tree.resolve("iso.org.leafZ")

    def test_empty_path(self, tree):
        with pytest.raises(MibError):
            tree.resolve("")

    def test_knows(self, tree):
        assert tree.knows("iso.org")
        assert not tree.knows("iso.nope")

    def test_name_path_rendering(self, tree):
        assert tree.resolve("iso.org.leafA").name_path() == "iso.org.leafA"


class TestTraversal:
    def test_walk_in_oid_order(self, tree):
        names = [node.name for node in tree.walk("1.3")]
        assert names == ["org", "leafA", "leafB"]

    def test_leaves(self, tree):
        assert [node.name for node in tree.leaves("1")] == ["leafA", "leafB"]

    def test_walk_unknown_prefix_is_empty(self, tree):
        assert list(tree.walk("9")) == []

    def test_next_leaf(self, tree):
        assert tree.next_leaf("1.3").name == "leafA"
        assert tree.next_leaf("1.3.1").name == "leafB"
        assert tree.next_leaf("1.3.2") is None
