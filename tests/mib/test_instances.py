"""Tests for the per-agent instance store."""

import pytest

from repro.asn1.types import Asn1Module
from repro.errors import MibError
from repro.mib.instances import InstanceStore
from repro.mib.mib1 import build_mib1
from repro.mib.oid import Oid
from repro.mib.view import MibView

SYS_DESCR = "1.3.6.1.2.1.1.1.0"
SYS_UPTIME = "1.3.6.1.2.1.1.3.0"
IF_ADMIN = "1.3.6.1.2.1.2.2.1.7.1"  # ifAdminStatus.1 (read-write)
IP_AD_ENT_ADDR = "1.3.6.1.2.1.4.20.1.1"  # column OID; rows add IP index


@pytest.fixture(scope="module")
def tree():
    return build_mib1()


@pytest.fixture
def store(tree):
    return InstanceStore(tree, module=Asn1Module())


class TestBindGet:
    def test_bind_and_get(self, store):
        store.bind(SYS_DESCR, b"SunOS 4.0.1")
        assert store.get(SYS_DESCR) == b"SunOS 4.0.1"

    def test_get_unbound_raises(self, store):
        with pytest.raises(MibError, match="no such instance"):
            store.get(SYS_DESCR)

    def test_validation_rejects_wrong_type(self, store):
        with pytest.raises(Exception):
            store.bind(SYS_UPTIME, b"not a number")

    def test_table_row_instances(self, store):
        row = Oid(IP_AD_ENT_ADDR) + "128.105.1.1"
        store.bind(row, b"\x80\x69\x01\x01")
        assert store.get(row) == b"\x80\x69\x01\x01"

    def test_object_for_instance(self, store):
        assert store.object_for_instance(SYS_DESCR).name == "sysDescr"

    def test_instance_without_object_raises(self, store):
        with pytest.raises(MibError, match="no leaf object"):
            store.object_for_instance("9.9.9.0")

    def test_unbind(self, store):
        store.bind(SYS_DESCR, b"x")
        store.unbind(SYS_DESCR)
        assert not store.contains(SYS_DESCR)

    def test_unbind_missing_raises(self, store):
        with pytest.raises(MibError):
            store.unbind(SYS_DESCR)


class TestViewEnforcement:
    def test_binding_outside_view_rejected(self, tree):
        view = MibView(tree, ("mgmt.mib.system",))
        store = InstanceStore(tree, view=view)
        store.bind(SYS_DESCR, b"ok")
        with pytest.raises(MibError, match="outside the supported view"):
            store.bind("1.3.6.1.2.1.7.1.0", 1)  # udpInDatagrams


class TestSetSemantics:
    def test_set_writable_object(self, store):
        store.bind(IF_ADMIN, 1)
        store.set(IF_ADMIN, 2)
        assert store.get(IF_ADMIN) == 2

    def test_set_readonly_object_rejected(self, store):
        with pytest.raises(MibError, match="not writable"):
            store.set(SYS_DESCR, b"nope")


class TestGetNext:
    def test_get_next_walks_in_order(self, store):
        store.bind(SYS_DESCR, b"a")
        store.bind(SYS_UPTIME, 10)
        found, value = store.get_next("1.3.6.1.2.1.1")
        assert found == Oid(SYS_DESCR)
        assert value == b"a"
        found2, _ = store.get_next(found)
        assert found2 == Oid(SYS_UPTIME)

    def test_get_next_past_end(self, store):
        store.bind(SYS_DESCR, b"a")
        assert store.get_next("9.9") is None

    def test_get_next_skips_equal(self, store):
        store.bind(SYS_DESCR, b"a")
        assert store.get_next(SYS_DESCR) is None

    def test_walk_prefix(self, store):
        store.bind(SYS_DESCR, b"a")
        store.bind(SYS_UPTIME, 5)
        store.bind("1.3.6.1.2.1.7.1.0", 9)
        system_only = list(store.walk("1.3.6.1.2.1.1"))
        assert len(system_only) == 2


class TestPopulateDefaults:
    def test_populates_scalars_not_columns(self, tree):
        store = InstanceStore(tree, view=MibView(tree, ("mgmt.mib.system", "mgmt.mib.ip")))
        created = store.populate_defaults()
        assert created > 0
        assert store.contains("1.3.6.1.2.1.1.1.0")  # sysDescr.0
        # ipAdEntAddr is a table column: no .0 instance.
        assert not store.contains("1.3.6.1.2.1.4.20.1.1.0")

    def test_populate_is_idempotent(self, tree):
        store = InstanceStore(tree, view=MibView(tree, ("mgmt.mib.udp",)))
        first = store.populate_defaults()
        second = store.populate_defaults()
        assert first == 4
        assert second == 0
