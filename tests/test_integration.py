"""Cross-subsystem integration tests: the flows a downstream user runs.

These mirror the README and the examples — if they break, the advertised
workflows break.
"""

import pytest

from repro import (
    ConfigurationGenerator,
    ConsistencyChecker,
    FileDropTransport,
    ManagementRuntime,
    NmslCompiler,
    RuntimeVerifier,
    SpeculativeChecker,
    check_with_clpr,
    compile_text,
    solve_for_frequency,
)
from repro.nmsl.pprint import render_specification
from repro.workloads.paper import PAPER_SPEC_TEXT
from repro.workloads.scenarios import campus_internet, new_organization


class TestReadmeFlow:
    def test_quickstart_snippet(self):
        compiler = NmslCompiler()
        result = compiler.compile(PAPER_SPEC_TEXT)
        outcome = ConsistencyChecker(result.specification, compiler.tree).check()
        assert "consistent" in outcome.render()
        text = compiler.generate("BartsSnmpd", result).text()
        assert "snmpd.conf" in text

    def test_compile_text_helper_is_public(self):
        compiler, result = compile_text(PAPER_SPEC_TEXT)
        assert result.ok

    def test_public_api_surface(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestDescriptiveThenPrescriptive:
    """The paper's two aspects, chained: check, then configure."""

    def test_only_consistent_specs_are_shipped(self, tmp_path):
        compiler = NmslCompiler()
        result = compiler.compile(campus_internet(include_noc_permission=False))
        outcome = ConsistencyChecker(result.specification, compiler.tree).check()
        assert not outcome.consistent
        # A user gates shipping on the verdict; fix and ship.
        fixed = compiler.compile(campus_internet())
        fixed_outcome = ConsistencyChecker(
            fixed.specification, compiler.tree
        ).check()
        assert fixed_outcome.consistent
        records = ConfigurationGenerator(compiler, fixed).ship(
            "BartsSnmpd", FileDropTransport(tmp_path)
        )
        assert len(records) == 5

    def test_shipped_config_loads_into_agents(self, tmp_path):
        compiler = NmslCompiler()
        result = compiler.compile(campus_internet())
        ConfigurationGenerator(compiler, result).ship(
            "BartsSnmpd", FileDropTransport(tmp_path)
        )
        # The file a real snmpd would read parses into a working policy.
        from repro.snmp.community import CommunityPolicy

        text = (tmp_path / "gw.cs.campus.edu.conf").read_text()
        policy = CommunityPolicy.from_snmpd_conf(text, compiler.tree)
        assert "noc-domain" in policy.communities()


class TestBothEnginesAgreeOnRealScenarios:
    @pytest.mark.parametrize(
        "text",
        [
            PAPER_SPEC_TEXT,
            campus_internet(),
            campus_internet(include_noc_permission=False),
            campus_internet(noc_frequency_minutes=1.0),
            campus_internet() + new_organization(),
        ],
        ids=["paper", "campus", "campus-noperm", "campus-fast", "campus+org"],
    )
    def test_agreement(self, text):
        compiler = NmslCompiler()
        specification = compiler.compile(text).specification
        closure = ConsistencyChecker(specification, compiler.tree).check()
        clpr = check_with_clpr(specification, compiler.tree)
        assert closure.consistent == clpr.consistent


class TestSpecToSimulationToVerification:
    def test_full_loop(self):
        compiler = NmslCompiler()
        result = compiler.compile(campus_internet())
        # 1. the spec must be consistent before deployment
        assert ConsistencyChecker(result.specification, compiler.tree).check().consistent
        # 2. deploy
        runtime = ManagementRuntime(compiler, result)
        assert runtime.install_configuration() == 5
        # 3. operate
        runtime.start(duration_s=1800)
        runtime.run(1800)
        assert set(runtime.outcomes()) == {"ok"}
        # 4. verify adherence
        verifier = RuntimeVerifier(runtime.specification, runtime.facts)
        report = verifier.verify(runtime.log)
        assert report.adheres
        assert verifier.cross_check_enforcement(runtime.log, report) == []


class TestPlanningLoop:
    def test_speculate_then_merge_then_recheck(self):
        compiler = NmslCompiler()
        campus = compiler.compile(campus_internet()).specification
        candidate = compiler.compile(
            new_organization(query_minutes=15), strict=False
        ).specification
        # Plan ...
        speculative = SpeculativeChecker(campus, compiler.tree)
        assert speculative.check_addition(candidate).consistent
        # ... solve for the real bound ...
        combined = compiler.compile(
            campus_internet() + new_organization(query_minutes=15)
        ).specification
        bounds = solve_for_frequency(
            combined, compiler.tree, "deptPoller", "snmpAgent"
        )
        assert bounds
        # ... and the merged internet still checks out.
        assert ConsistencyChecker(combined, compiler.tree).check().consistent


class TestSerializationLoop:
    def test_build_render_compile_check(self):
        """Programmatic spec -> text -> compile -> same verdict."""
        from repro.workloads.generator import (
            InternetParameters,
            SyntheticInternet,
        )

        compiler = NmslCompiler()
        internet = SyntheticInternet(
            InternetParameters(n_domains=3, systems_per_domain=2, silent_domains=(1,))
        )
        built = internet.specification()
        rendered = render_specification(built)
        recompiled = compiler.compile(rendered).specification
        verdict_a = ConsistencyChecker(built, compiler.tree).check()
        verdict_b = ConsistencyChecker(recompiled, compiler.tree).check()
        assert verdict_a.consistent == verdict_b.consistent
        assert len(verdict_a.inconsistencies) == len(verdict_b.inconsistencies)
