"""Tests for the error hierarchy and source locations."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_located_errors(self):
        for cls in (
            errors.Asn1Error,
            errors.NmslSyntaxError,
            errors.NmslSemanticError,
            errors.ClprSyntaxError,
        ):
            assert issubclass(cls, errors.LocatedError)

    def test_clpr_syntax_error_is_clpr_error(self):
        assert issubclass(errors.ClprSyntaxError, errors.ClprError)

    def test_oid_error_is_mib_error(self):
        assert issubclass(errors.OidError, errors.MibError)


class TestSourceLocation:
    def test_str_format(self):
        location = errors.SourceLocation("spec.nmsl", 12, 3)
        assert str(location) == "spec.nmsl:12:3"

    def test_defaults(self):
        assert str(errors.SourceLocation()) == "<input>:1:1"

    def test_located_error_message(self):
        exc = errors.NmslSyntaxError(
            "unexpected token", errors.SourceLocation("f.nmsl", 4, 7)
        )
        assert str(exc) == "f.nmsl:4:7: unexpected token"
        assert exc.message == "unexpected token"
        assert exc.location.line == 4

    def test_located_error_without_location(self):
        exc = errors.NmslSemanticError("boom")
        assert "<input>:1:1" in str(exc)


class TestCatchability:
    def test_single_except_clause_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.BerError("x")
        with pytest.raises(errors.ReproError):
            raise errors.SimulationError("y")
        with pytest.raises(errors.ReproError):
            raise errors.NmslSyntaxError("z")
