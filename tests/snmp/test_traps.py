"""Tests for the SNMPv1 Trap-PDU and agent trap emission."""

import pytest

from repro.asn1.types import Asn1Module
from repro.errors import SnmpError
from repro.mib.instances import InstanceStore
from repro.mib.mib1 import build_mib1
from repro.mib.oid import Oid
from repro.snmp.agent import NMSL_ENTERPRISE, SnmpAgent
from repro.snmp.codec import decode_message, encode_message
from repro.snmp.manager import SnmpManager
from repro.snmp.messages import GenericTrap, Message, TrapPdu, VarBind


@pytest.fixture(scope="module")
def tree():
    return build_mib1()


class TestTrapCodec:
    def make_trap(self, **overrides):
        defaults = dict(
            community="public",
            enterprise="1.3.6.1.4.1.42989",
            agent_addr=b"\x0a\x00\x00\x01",
            generic_trap=GenericTrap.LINK_DOWN,
            specific_trap=0,
            time_stamp=12345,
            bindings=(VarBind.of("1.3.6.1.2.1.2.2.1.1.2", 2),),
        )
        defaults.update(overrides)
        return Message.trap(**defaults)

    def test_roundtrip(self):
        message = self.make_trap()
        back = decode_message(encode_message(message))
        assert back.is_trap()
        pdu = back.pdu
        assert pdu.enterprise == Oid("1.3.6.1.4.1.42989")
        assert pdu.agent_addr == b"\x0a\x00\x00\x01"
        assert pdu.generic_trap == GenericTrap.LINK_DOWN
        assert pdu.time_stamp == 12345
        assert pdu.bindings[0].value == 2

    def test_context_tag_is_a4(self):
        octets = encode_message(self.make_trap())
        assert 0xA4 in octets

    def test_all_generic_codes_roundtrip(self):
        for code in GenericTrap:
            message = self.make_trap(generic_trap=code, bindings=())
            assert decode_message(encode_message(message)).pdu.generic_trap == code

    def test_bad_agent_addr_rejected(self):
        with pytest.raises(SnmpError, match="4 octets"):
            TrapPdu(
                enterprise=Oid("1.3"),
                agent_addr=b"\x01\x02",
                generic_trap=GenericTrap.COLD_START,
            )

    def test_requests_are_not_traps(self):
        message = Message.get("c", 1, ["1.3"])
        assert not message.is_trap()


class TestAgentTrapEmission:
    CONF = """
view v include mgmt.mib.system
community public v ReadOnly min-interval 0
"""

    def make_agent(self, tree, sink):
        store = InstanceStore(tree, module=Asn1Module())
        store.bind("1.3.6.1.2.1.1.1.0", b"x")
        agent = SnmpAgent(
            "a", store, tree=tree, trap_sink=sink, agent_addr=b"\x0a\x00\x00\x02"
        )
        agent.load_config(self.CONF, tree)
        return agent

    def test_cold_start_on_demand(self, tree):
        traps = []
        agent = self.make_agent(tree, traps.append)
        agent.emit_cold_start(now=1.5)
        (trap,) = traps
        assert trap.pdu.generic_trap == GenericTrap.COLD_START
        assert trap.pdu.time_stamp == 150  # TimeTicks are 1/100 s
        assert trap.pdu.enterprise == NMSL_ENTERPRISE
        assert agent.stats.traps_sent == 1

    def test_authentication_failure_trap(self, tree):
        traps = []
        agent = self.make_agent(tree, traps.append)
        manager = SnmpManager("wrong-community", agent.handle_octets)
        with pytest.raises(SnmpError):
            manager.get(["1.3.6.1.2.1.1.1.0"])
        assert len(traps) == 1
        assert traps[0].pdu.generic_trap == GenericTrap.AUTHENTICATION_FAILURE

    def test_view_misses_do_not_trap(self, tree):
        """Only auth failures trap; an OID outside the view is noSuchName."""
        traps = []
        agent = self.make_agent(tree, traps.append)
        manager = SnmpManager("public", agent.handle_octets)
        with pytest.raises(SnmpError):
            manager.get(["1.3.6.1.2.1.7.1.0"])  # udp, outside view
        assert traps == []

    def test_no_sink_is_silent(self, tree):
        store = InstanceStore(tree, module=Asn1Module())
        agent = SnmpAgent("a", store, tree=tree)
        agent.emit_cold_start()
        assert agent.stats.traps_sent == 0


class TestRuntimeTraps:
    def test_cold_start_on_install(self):
        from repro.netsim.processes import ManagementRuntime
        from repro.nmsl.compiler import NmslCompiler
        from repro.workloads.scenarios import campus_internet

        compiler = NmslCompiler()
        runtime = ManagementRuntime(compiler, compiler.compile(campus_internet()))
        runtime.install_configuration()
        cold_starts = [
            record
            for record in runtime.traps
            if record[2].pdu.generic_trap == GenericTrap.COLD_START
        ]
        assert len(cold_starts) == 5
