"""Protocol-based configuration installation (paper Section 5, literal)."""

import pytest

from repro.asn1.types import Asn1Module
from repro.errors import SnmpError
from repro.mib.instances import InstanceStore
from repro.mib.mib1 import build_mib1
from repro.snmp.agent import (
    ADMIN_COMMUNITY,
    NMSL_CONFIG_APPLY,
    NMSL_CONFIG_TEXT,
    SnmpAgent,
)
from repro.snmp.manager import SnmpManager
from repro.snmp.messages import GenericTrap

CONF = """
view v include mgmt.mib.system
community ops v ReadOnly min-interval 60
"""


@pytest.fixture(scope="module")
def tree():
    return build_mib1()


@pytest.fixture
def agent(tree):
    store = InstanceStore(tree, module=Asn1Module())
    store.bind("1.3.6.1.2.1.1.1.0", b"x")
    return SnmpAgent("a", store, tree=tree)


def admin(agent):
    return SnmpManager(ADMIN_COMMUNITY, agent.handle_octets)


class TestInstallFlow:
    def test_single_chunk_install(self, agent):
        manager = admin(agent)
        manager.set([(NMSL_CONFIG_TEXT, CONF.encode())])
        manager.set([(NMSL_CONFIG_APPLY, 1)])
        assert agent.configs_applied == 1
        assert agent.policy.communities() == ("ops",)

    def test_chunked_install(self, agent):
        manager = admin(agent)
        octets = CONF.encode()
        middle = len(octets) // 2
        manager.set([(NMSL_CONFIG_TEXT, octets[:middle])])
        manager.set([(NMSL_CONFIG_TEXT, octets[middle:])])
        manager.set([(NMSL_CONFIG_APPLY, 1)])
        assert agent.policy.communities() == ("ops",)

    def test_installed_policy_enforced(self, agent, tree):
        admin(agent).set([(NMSL_CONFIG_TEXT, CONF.encode())])
        admin(agent).set([(NMSL_CONFIG_APPLY, 1)])
        ops = SnmpManager("ops", agent.handle_octets)
        assert ops.get_one("1.3.6.1.2.1.1.1.0") == b"x"
        with pytest.raises(SnmpError):
            SnmpManager("stranger", agent.handle_octets).get(
                ["1.3.6.1.2.1.1.1.0"]
            )

    def test_apply_emits_cold_start(self, tree):
        traps = []
        store = InstanceStore(tree, module=Asn1Module())
        agent = SnmpAgent("a", store, tree=tree, trap_sink=traps.append)
        manager = admin(agent)
        manager.set([(NMSL_CONFIG_TEXT, CONF.encode())])
        manager.set([(NMSL_CONFIG_APPLY, 1)])
        assert [t.pdu.generic_trap for t in traps] == [GenericTrap.COLD_START]

    def test_pending_readable_before_apply(self, agent):
        manager = admin(agent)
        manager.set([(NMSL_CONFIG_TEXT, b"view v include mgmt.mib\n")])
        assert manager.get_one(NMSL_CONFIG_TEXT) == b"view v include mgmt.mib\n"
        assert manager.get_one(NMSL_CONFIG_APPLY) == 0


class TestRejections:
    def test_wrong_community_rejected(self, agent):
        stranger = SnmpManager("public", agent.handle_octets)
        with pytest.raises(SnmpError, match="noSuchName"):
            stranger.set([(NMSL_CONFIG_TEXT, b"x")])
        assert agent.stats.auth_failures == 1
        assert agent.configs_applied == 0

    def test_bad_apply_value(self, agent):
        manager = admin(agent)
        with pytest.raises(SnmpError, match="badValue"):
            manager.set([(NMSL_CONFIG_APPLY, 7)])

    def test_malformed_config_rejected_and_not_applied(self, agent):
        manager = admin(agent)
        manager.set([(NMSL_CONFIG_TEXT, b"community broken")])
        with pytest.raises(SnmpError, match="badValue"):
            manager.set([(NMSL_CONFIG_APPLY, 1)])
        assert agent.configs_applied == 0

    def test_non_bytes_config_rejected(self, agent):
        manager = admin(agent)
        with pytest.raises(SnmpError, match="badValue"):
            manager.set([(NMSL_CONFIG_TEXT, 42)])


class TestRuntimeViaProtocol:
    def test_campus_installs_over_the_wire(self):
        from repro.netsim.processes import ManagementRuntime
        from repro.nmsl.compiler import NmslCompiler
        from repro.workloads.scenarios import campus_internet

        compiler = NmslCompiler()
        runtime = ManagementRuntime(compiler, compiler.compile(campus_internet()))
        configured = runtime.install_configuration(via_protocol=True)
        assert configured == 5
        assert all(agent.configs_applied == 1 for agent in runtime.agents.values())
        # The installed policies behave identically to the direct path.
        runtime.start(duration_s=1800)
        runtime.run(1800)
        assert set(runtime.outcomes()) == {"ok"}
