"""Protocol-based configuration installation (paper Section 5, literal)."""

import pytest

import hashlib

from repro.asn1.types import Asn1Module
from repro.errors import AgentDownError, SnmpError
from repro.mib.instances import InstanceStore
from repro.mib.mib1 import build_mib1
from repro.snmp.agent import (
    ADMIN_COMMUNITY,
    NMSL_CONFIG_APPLY,
    NMSL_CONFIG_DIGEST,
    NMSL_CONFIG_GENERATION,
    NMSL_CONFIG_RESET,
    NMSL_CONFIG_TEXT,
    SnmpAgent,
)
from repro.snmp.manager import SnmpManager
from repro.snmp.messages import GenericTrap

CONF = """
view v include mgmt.mib.system
community ops v ReadOnly min-interval 60
"""


@pytest.fixture(scope="module")
def tree():
    return build_mib1()


@pytest.fixture
def agent(tree):
    store = InstanceStore(tree, module=Asn1Module())
    store.bind("1.3.6.1.2.1.1.1.0", b"x")
    return SnmpAgent("a", store, tree=tree)


def admin(agent):
    return SnmpManager(ADMIN_COMMUNITY, agent.handle_octets)


class TestInstallFlow:
    def test_single_chunk_install(self, agent):
        manager = admin(agent)
        manager.set([(NMSL_CONFIG_TEXT, CONF.encode())])
        manager.set([(NMSL_CONFIG_APPLY, 1)])
        assert agent.configs_applied == 1
        assert agent.policy.communities() == ("ops",)

    def test_chunked_install(self, agent):
        manager = admin(agent)
        octets = CONF.encode()
        middle = len(octets) // 2
        manager.set([(NMSL_CONFIG_TEXT, octets[:middle])])
        manager.set([(NMSL_CONFIG_TEXT, octets[middle:])])
        manager.set([(NMSL_CONFIG_APPLY, 1)])
        assert agent.policy.communities() == ("ops",)

    def test_installed_policy_enforced(self, agent, tree):
        admin(agent).set([(NMSL_CONFIG_TEXT, CONF.encode())])
        admin(agent).set([(NMSL_CONFIG_APPLY, 1)])
        ops = SnmpManager("ops", agent.handle_octets)
        assert ops.get_one("1.3.6.1.2.1.1.1.0") == b"x"
        with pytest.raises(SnmpError):
            SnmpManager("stranger", agent.handle_octets).get(
                ["1.3.6.1.2.1.1.1.0"]
            )

    def test_apply_emits_cold_start(self, tree):
        traps = []
        store = InstanceStore(tree, module=Asn1Module())
        agent = SnmpAgent("a", store, tree=tree, trap_sink=traps.append)
        manager = admin(agent)
        manager.set([(NMSL_CONFIG_TEXT, CONF.encode())])
        manager.set([(NMSL_CONFIG_APPLY, 1)])
        assert [t.pdu.generic_trap for t in traps] == [GenericTrap.COLD_START]

    def test_pending_readable_before_apply(self, agent):
        manager = admin(agent)
        manager.set([(NMSL_CONFIG_TEXT, b"view v include mgmt.mib\n")])
        assert manager.get_one(NMSL_CONFIG_TEXT) == b"view v include mgmt.mib\n"
        assert manager.get_one(NMSL_CONFIG_APPLY) == 0


class TestRejections:
    def test_wrong_community_rejected(self, agent):
        stranger = SnmpManager("public", agent.handle_octets)
        with pytest.raises(SnmpError, match="noSuchName"):
            stranger.set([(NMSL_CONFIG_TEXT, b"x")])
        assert agent.stats.auth_failures == 1
        assert agent.configs_applied == 0

    def test_bad_apply_value(self, agent):
        manager = admin(agent)
        with pytest.raises(SnmpError, match="badValue"):
            manager.set([(NMSL_CONFIG_APPLY, 7)])

    def test_malformed_config_rejected_and_not_applied(self, agent):
        manager = admin(agent)
        manager.set([(NMSL_CONFIG_TEXT, b"community broken")])
        with pytest.raises(SnmpError, match="badValue"):
            manager.set([(NMSL_CONFIG_APPLY, 1)])
        assert agent.configs_applied == 0

    def test_non_bytes_config_rejected(self, agent):
        manager = admin(agent)
        with pytest.raises(SnmpError, match="badValue"):
            manager.set([(NMSL_CONFIG_TEXT, 42)])

    def test_apply_with_nothing_staged_rejected(self, agent):
        """A duplicated or retransmitted apply trigger must never commit
        an empty configuration."""
        manager = admin(agent)
        manager.set([(NMSL_CONFIG_TEXT, CONF.encode())])
        manager.set([(NMSL_CONFIG_APPLY, 1)])
        with pytest.raises(SnmpError, match="badValue"):
            manager.set([(NMSL_CONFIG_APPLY, 1)])
        assert agent.configs_applied == 1
        assert agent.last_good_config == CONF


class TestStagingObjects:
    def test_digest_tracks_staging_buffer(self, agent):
        manager = admin(agent)
        empty = hashlib.sha256(b"").hexdigest().encode("ascii")
        assert manager.get_one(NMSL_CONFIG_DIGEST) == empty
        manager.set([(NMSL_CONFIG_TEXT, b"view v ")])
        manager.set([(NMSL_CONFIG_TEXT, b"include mgmt.mib\n")])
        staged = hashlib.sha256(b"view v include mgmt.mib\n").hexdigest()
        assert manager.get_one(NMSL_CONFIG_DIGEST) == staged.encode("ascii")

    def test_reset_clears_staging_buffer(self, agent):
        manager = admin(agent)
        manager.set([(NMSL_CONFIG_TEXT, b"half a config")])
        manager.set([(NMSL_CONFIG_RESET, 1)])
        empty = hashlib.sha256(b"").hexdigest().encode("ascii")
        assert manager.get_one(NMSL_CONFIG_DIGEST) == empty
        assert manager.get_one(NMSL_CONFIG_RESET) == 0

    def test_generation_counts_committed_applies(self, agent):
        manager = admin(agent)
        assert manager.get_one(NMSL_CONFIG_GENERATION) == 0
        manager.set([(NMSL_CONFIG_TEXT, CONF.encode())])
        manager.set([(NMSL_CONFIG_APPLY, 1)])
        assert manager.get_one(NMSL_CONFIG_GENERATION) == 1
        manager.set([(NMSL_CONFIG_TEXT, CONF.encode())])
        manager.set([(NMSL_CONFIG_APPLY, 1)])
        assert manager.get_one(NMSL_CONFIG_GENERATION) == 2

    def test_rejected_apply_does_not_advance_generation(self, agent):
        manager = admin(agent)
        manager.set([(NMSL_CONFIG_TEXT, b"community broken")])
        with pytest.raises(SnmpError, match="badValue"):
            manager.set([(NMSL_CONFIG_APPLY, 1)])
        assert manager.get_one(NMSL_CONFIG_GENERATION) == 0

    @pytest.mark.parametrize(
        "oid", [NMSL_CONFIG_DIGEST, NMSL_CONFIG_GENERATION]
    )
    def test_read_only_objects_reject_sets(self, agent, oid):
        with pytest.raises(SnmpError, match="readOnly"):
            admin(agent).set([(oid, 1)])

    def test_staging_objects_hidden_from_other_communities(self, agent):
        stranger = SnmpManager("public", agent.handle_octets)
        with pytest.raises(SnmpError, match="noSuchName"):
            stranger.get([NMSL_CONFIG_DIGEST])


class TestCrashRestart:
    def test_crashed_agent_refuses_all_traffic(self, agent):
        agent.crash()
        with pytest.raises(AgentDownError):
            agent.handle_octets(b"\x30\x00")
        with pytest.raises(AgentDownError):
            admin(agent).get([NMSL_CONFIG_GENERATION])

    def test_restart_restores_last_known_good(self, agent):
        manager = admin(agent)
        manager.set([(NMSL_CONFIG_TEXT, CONF.encode())])
        manager.set([(NMSL_CONFIG_APPLY, 1)])
        # Half-stage a second generation, then crash before the apply.
        manager.set([(NMSL_CONFIG_TEXT, b"view w include mgmt.mib\n")])
        agent.crash()
        agent.restart()
        assert not agent.crashed
        assert agent.last_good_config == CONF
        assert agent.policy.communities() == ("ops",)
        # The staged text is gone; the buffer digests as empty.
        empty = hashlib.sha256(b"").hexdigest().encode("ascii")
        assert admin(agent).get_one(NMSL_CONFIG_DIGEST) == empty

    def test_restart_emits_cold_start(self, tree):
        traps = []
        store = InstanceStore(tree, module=Asn1Module())
        agent = SnmpAgent("a", store, tree=tree, trap_sink=traps.append)
        agent.crash()
        agent.restart()
        assert [t.pdu.generic_trap for t in traps] == [GenericTrap.COLD_START]

    def test_restart_before_any_commit_leaves_default_policy(self, agent):
        before = agent.policy.communities()
        agent.crash()
        agent.restart()
        assert agent.last_good_config is None
        assert agent.policy.communities() == before


class TestRuntimeViaProtocol:
    def test_campus_installs_over_the_wire(self):
        from repro.netsim.processes import ManagementRuntime
        from repro.nmsl.compiler import NmslCompiler
        from repro.workloads.scenarios import campus_internet

        compiler = NmslCompiler()
        runtime = ManagementRuntime(compiler, compiler.compile(campus_internet()))
        configured = runtime.install_configuration(via_protocol=True)
        assert configured == 5
        assert all(agent.configs_applied == 1 for agent in runtime.agents.values())
        # The installed policies behave identically to the direct path.
        runtime.start(duration_s=1800)
        runtime.run(1800)
        assert set(runtime.outcomes()) == {"ok"}
