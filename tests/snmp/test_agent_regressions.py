"""Regression tests for the agent error-path sweep.

Two bugs fixed alongside the error-status metrics audit:

* the admin (enterprise-config) GET answered unknown OIDs with
  ``noSuchName`` but never set the error-index, so a manager could not
  tell which binding of a multi-binding request was at fault;
* multi-binding Sets were applied left to right and kept the early
  writes when a later binding failed — RFC 1067 requires "if ... the
  value of any variable named cannot be altered, then no variables'
  values are altered."

And the audit itself: every error response an agent produces must show
up in ``repro_snmp_errors_total`` labelled with its error-status.
"""

import pytest

from repro import obs
from repro.asn1.types import Asn1Module
from repro.errors import SnmpError
from repro.mib.instances import InstanceStore
from repro.mib.mib1 import build_mib1
from repro.snmp.agent import ADMIN_COMMUNITY, NMSL_CONFIG_DIGEST, SnmpAgent
from repro.snmp.manager import SnmpManager
from repro.snmp.messages import ErrorStatus, Message, PduType

SYS_DESCR = "1.3.6.1.2.1.1.1.0"
SYS_UPTIME = "1.3.6.1.2.1.1.3.0"
IF_ADMIN_1 = "1.3.6.1.2.1.2.2.1.7.1"
UDP_IN = "1.3.6.1.2.1.7.1.0"

CONF = """
view full include mgmt.mib
view sys include mgmt.mib.system
community public sys ReadOnly min-interval 0
community ops full ReadWrite min-interval 0
community slow sys ReadOnly min-interval 60
"""


@pytest.fixture
def tree():
    return build_mib1()


@pytest.fixture
def agent(tree):
    store = InstanceStore(tree, module=Asn1Module())
    store.bind(SYS_DESCR, b"SunOS 4.0.1")
    store.bind(SYS_UPTIME, 12345)
    store.bind(IF_ADMIN_1, 1)
    store.bind(UDP_IN, 777)
    agent = SnmpAgent("regression-agent", store, tree=tree)
    agent.load_config(CONF, tree)
    return agent


def manager_for(agent, community="ops", clock=None):
    def send(octets: bytes) -> bytes:
        now = clock() if clock is not None else None
        return agent.handle_octets(octets, now=now)

    return SnmpManager(community, send)


class TestAdminGetErrorIndex:
    def test_unknown_oid_reports_its_position(self, agent):
        """A GET mixing config objects with an unknown OID must name the
        offending binding (position 2), not leave the index unset."""
        request = Message.get(
            ADMIN_COMMUNITY, 1, [NMSL_CONFIG_DIGEST, "1.3.6.1.4.1.42989.9.9.0"]
        )
        response = agent.handle(request).pdu
        assert response.error_status == ErrorStatus.NO_SUCH_NAME
        assert response.error_index == 2


class TestAllOrNothingSet:
    def test_later_readonly_binding_rolls_back_earlier_write(self, agent):
        manager = manager_for(agent)
        with pytest.raises(SnmpError, match="readOnly"):
            manager.set([(IF_ADMIN_1, 2), (SYS_DESCR, b"nope")])
        # The first write must not survive the failed message.
        assert manager.get_one(IF_ADMIN_1) == 1

    def test_later_out_of_view_binding_rolls_back_earlier_write(self, tree):
        store = InstanceStore(tree, module=Asn1Module())
        store.bind(IF_ADMIN_1, 1)
        agent = SnmpAgent("rollback-agent", store, tree=tree)
        agent.load_config(
            "view ifonly include mgmt.mib.interfaces\n"
            "community ifops ifonly ReadWrite min-interval 0\n",
            tree,
        )
        manager = manager_for(agent, community="ifops")
        with pytest.raises(SnmpError, match="noSuchName"):
            # udpInDatagrams is outside the ifonly view.
            manager.set([(IF_ADMIN_1, 2), (UDP_IN, 1)])
        assert manager.get_one(IF_ADMIN_1) == 1

    def test_created_binding_is_unbound_on_rollback(self, agent):
        """A Set that *created* an instance removes it again, rather than
        leaving a stale binding behind."""
        if_admin_2 = "1.3.6.1.2.1.2.2.1.7.2"
        manager = manager_for(agent)
        # Writable and unbound: a lone Set would create this instance.
        manager.set([(if_admin_2, 1)])
        assert agent.store.contains(if_admin_2)
        agent.store.unbind(if_admin_2)
        with pytest.raises(SnmpError):
            manager.set([(if_admin_2, 1), (SYS_DESCR, b"nope")])
        assert not agent.store.contains(if_admin_2)

    def test_successful_multi_set_still_applies_everything(self, agent):
        manager = manager_for(agent)
        manager.set([(IF_ADMIN_1, 2)])
        assert manager.get_one(IF_ADMIN_1) == 2


class TestErrorStatusMetrics:
    """Every error-status path increments repro_snmp_errors_total."""

    def errors(self, session, status):
        return session.metrics.value(
            "repro_snmp_errors_total", agent="regression-agent", status=status
        )

    def test_no_such_name_counted(self, agent):
        with obs.scope() as session:
            manager = manager_for(agent, community="public")
            with pytest.raises(SnmpError):
                manager.get(["1.3.6.1.2.1.1.2.0"])
            assert self.errors(session, "noSuchName") == 1

    def test_read_only_counted(self, agent):
        with obs.scope() as session:
            manager = manager_for(agent)
            with pytest.raises(SnmpError):
                manager.set([(SYS_DESCR, b"nope")])
            assert self.errors(session, "readOnly") == 1

    def test_gen_err_from_rate_violation_counted(self, agent):
        with obs.scope() as session:
            clock_value = [0.0]
            manager = manager_for(
                agent, community="slow", clock=lambda: clock_value[0]
            )
            manager.get([SYS_DESCR])
            clock_value[0] = 5.0
            with pytest.raises(SnmpError, match="genErr"):
                manager.get([SYS_DESCR])
            assert self.errors(session, "genErr") == 1

    def test_gen_err_from_unsupported_pdu_counted(self, agent):
        with obs.scope() as session:
            request = Message.get("public", 1, [SYS_DESCR])
            request.pdu.pdu_type = PduType.GET_RESPONSE
            response = agent.handle(request).pdu
            assert response.error_status == ErrorStatus.GEN_ERR
            assert self.errors(session, "genErr") == 1

    def test_bad_value_from_admin_path_counted(self, agent):
        with obs.scope() as session:
            request = Message.set(
                ADMIN_COMMUNITY, 1, [("1.3.6.1.4.1.42989.1.2.0", 99)]
            )
            response = agent.handle(request).pdu
            assert response.error_status == ErrorStatus.BAD_VALUE
            assert self.errors(session, "badValue") == 1

    def test_auth_failure_on_admin_objects_counted(self, agent):
        with obs.scope() as session:
            request = Message.get("public", 1, [NMSL_CONFIG_DIGEST])
            response = agent.handle(request).pdu
            assert response.error_status == ErrorStatus.NO_SUCH_NAME
            assert self.errors(session, "noSuchName") == 1

    def test_successful_request_counts_no_error(self, agent):
        with obs.scope() as session:
            manager_for(agent).get([SYS_DESCR])
            assert session.metrics.value(
                "repro_snmp_pdus_total",
                agent="regression-agent",
                type="GET_REQUEST",
            ) == 1
            assert self.errors(session, "noSuchName") is None
