"""Agent/manager integration: real BER exchanges against a MIB store."""

import pytest

from repro.asn1.types import Asn1Module
from repro.errors import SnmpError
from repro.mib.instances import InstanceStore
from repro.mib.mib1 import build_mib1
from repro.mib.oid import Oid
from repro.mib.view import MibView
from repro.snmp.agent import SnmpAgent
from repro.snmp.community import CommunityPolicy
from repro.snmp.manager import SnmpManager

SYS_DESCR = "1.3.6.1.2.1.1.1.0"
SYS_UPTIME = "1.3.6.1.2.1.1.3.0"
IF_ADMIN_1 = "1.3.6.1.2.1.2.2.1.7.1"
UDP_IN = "1.3.6.1.2.1.7.1.0"

CONF = """
view full include mgmt.mib
view sys include mgmt.mib.system
community public sys ReadOnly min-interval 0
community ops full ReadWrite min-interval 0
community slow sys ReadOnly min-interval 60
"""


@pytest.fixture(scope="module")
def tree():
    return build_mib1()


@pytest.fixture
def agent(tree):
    store = InstanceStore(tree, module=Asn1Module())
    store.bind(SYS_DESCR, b"SunOS 4.0.1")
    store.bind(SYS_UPTIME, 12345)
    store.bind(IF_ADMIN_1, 1)
    store.bind(UDP_IN, 777)
    agent = SnmpAgent("agent-under-test", store, tree=tree)
    agent.load_config(CONF, tree)
    return agent


def manager_for(agent, community="public", clock=None):
    def send(octets: bytes) -> bytes:
        now = clock() if clock is not None else None
        return agent.handle_octets(octets, now=now)

    return SnmpManager(community, send)


class TestGet:
    def test_get_value(self, agent):
        manager = manager_for(agent)
        assert manager.get_one(SYS_DESCR) == b"SunOS 4.0.1"

    def test_get_multiple(self, agent):
        manager = manager_for(agent)
        bindings = manager.get([SYS_DESCR, SYS_UPTIME])
        assert [binding.value for binding in bindings] == [b"SunOS 4.0.1", 12345]

    def test_get_missing_instance(self, agent):
        manager = manager_for(agent)
        with pytest.raises(SnmpError, match="noSuchName"):
            manager.get(["1.3.6.1.2.1.1.2.0"])

    def test_get_outside_view(self, agent):
        manager = manager_for(agent)  # public sees only system group
        with pytest.raises(SnmpError, match="noSuchName"):
            manager.get([UDP_IN])

    def test_unknown_community(self, agent):
        manager = manager_for(agent, community="ghost")
        with pytest.raises(SnmpError, match="noSuchName"):
            manager.get([SYS_DESCR])
        assert agent.stats.auth_failures == 1


class TestGetNext:
    def test_steps_to_first_instance(self, agent):
        manager = manager_for(agent)
        bindings = manager.get_next(["1.3.6.1.2.1.1"])
        assert bindings[0].oid == Oid(SYS_DESCR)

    def test_skips_instances_outside_view(self, agent):
        """public's view is the system group; get-next past it must not
        leak ifAdminStatus or udpInDatagrams."""
        manager = manager_for(agent)
        with pytest.raises(SnmpError, match="noSuchName"):
            manager.get_next([SYS_UPTIME])

    def test_full_view_walk(self, agent):
        manager = manager_for(agent, community="ops")
        result = manager.walk("1.3.6.1.2.1")
        assert len(result.bindings) == 4
        assert result.requests_sent == 5  # 4 hits + 1 off-the-end

    def test_subtree_walk(self, agent):
        manager = manager_for(agent, community="ops")
        result = manager.walk("1.3.6.1.2.1.1")
        assert [str(b.oid) for b in result.bindings] == [SYS_DESCR, SYS_UPTIME]


class TestSet:
    def test_set_writable(self, agent):
        manager = manager_for(agent, community="ops")
        manager.set([(IF_ADMIN_1, 2)])
        assert manager.get_one(IF_ADMIN_1) == 2

    def test_set_readonly_object(self, agent):
        manager = manager_for(agent, community="ops")
        with pytest.raises(SnmpError, match="readOnly"):
            manager.set([(SYS_DESCR, b"nope")])

    def test_set_denied_for_readonly_community(self, agent):
        manager = manager_for(agent, community="public")
        with pytest.raises(SnmpError, match="noSuchName"):
            manager.set([("1.3.6.1.2.1.1.1.0", b"x")])


class TestRateLimiting:
    def test_too_fast_gets_generr(self, agent):
        clock_value = [0.0]
        manager = manager_for(agent, community="slow", clock=lambda: clock_value[0])
        manager.get([SYS_DESCR])
        clock_value[0] = 5.0
        with pytest.raises(SnmpError, match="genErr"):
            manager.get([SYS_DESCR])
        assert agent.stats.rate_violations == 1

    def test_spaced_requests_fine(self, agent):
        clock_value = [0.0]
        manager = manager_for(agent, community="slow", clock=lambda: clock_value[0])
        manager.get([SYS_DESCR])
        clock_value[0] = 61.0
        manager.get([SYS_DESCR])
        assert agent.stats.rate_violations == 0


class TestStats:
    def test_counters(self, agent):
        manager = manager_for(agent)
        manager.get([SYS_DESCR])
        try:
            manager.get([UDP_IN])
        except SnmpError:
            pass
        assert agent.stats.requests == 2
        assert agent.stats.responses == 2
        assert agent.stats.errors == 1
        assert manager.requests_sent == 2
        assert manager.errors_received == 1

    def test_request_id_matching_enforced(self, agent, tree):
        from repro.snmp.codec import decode_message, encode_message
        from repro.snmp.messages import Message

        def bad_send(octets: bytes) -> bytes:
            response = decode_message(agent.handle_octets(octets))
            response.pdu.request_id += 1
            return encode_message(response)

        manager = SnmpManager("public", bad_send)
        with pytest.raises(SnmpError, match="does not match"):
            manager.get([SYS_DESCR])
