"""Tests for the SNMP wire codec, including RFC 1067 tag structure."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SnmpError
from repro.mib.oid import Oid
from repro.snmp.codec import decode_message, encode_message
from repro.snmp.messages import (
    ErrorStatus,
    Message,
    Pdu,
    PduType,
    VarBind,
)


def roundtrip(message):
    return decode_message(encode_message(message))


class TestWireFormat:
    def test_message_is_universal_sequence(self):
        octets = encode_message(Message.get("public", 1, ["1.3.6.1.2.1.1.1.0"]))
        assert octets[0] == 0x30

    def test_pdu_context_tags(self):
        get = encode_message(Message.get("public", 1, ["1.3"]))
        get_next = encode_message(Message.get_next("public", 1, ["1.3"]))
        set_req = encode_message(Message.set("public", 1, [("1.3", 5)]))
        # After version (02 01 00) and community (04 06 public) comes the
        # context-tagged PDU: a0/a1/a3.
        assert 0xA0 in get
        assert 0xA1 in get_next
        assert 0xA3 in set_req

    def test_version_encoded_as_zero(self):
        octets = encode_message(Message.get("c", 1, ["1.3"]))
        assert octets[2:5] == b"\x02\x01\x00"


class TestRoundTrips:
    def test_get_request(self):
        message = Message.get("public", 42, ["1.3.6.1.2.1.1.1.0"])
        back = roundtrip(message)
        assert back.community == "public"
        assert back.pdu.pdu_type == PduType.GET_REQUEST
        assert back.pdu.request_id == 42
        assert back.pdu.bindings[0].oid == Oid("1.3.6.1.2.1.1.1.0")
        assert back.pdu.bindings[0].value is None

    def test_response_with_values(self):
        pdu = Pdu(
            PduType.GET_RESPONSE,
            7,
            bindings=(
                VarBind.of("1.3.6.1.2.1.1.1.0", b"SunOS"),
                VarBind.of("1.3.6.1.2.1.1.3.0", 123456),
                VarBind.of("1.3.6.1.2.1.1.2.0", Oid("1.3.6.1.4.1.42")),
            ),
        )
        back = roundtrip(Message("public", pdu))
        values = [binding.value for binding in back.pdu.bindings]
        assert values == [b"SunOS", 123456, Oid("1.3.6.1.4.1.42")]

    def test_error_status_preserved(self):
        pdu = Pdu(
            PduType.GET_RESPONSE,
            9,
            error_status=ErrorStatus.NO_SUCH_NAME,
            error_index=2,
            bindings=(VarBind.of("1.3"),),
        )
        back = roundtrip(Message("c", pdu))
        assert back.pdu.error_status == ErrorStatus.NO_SUCH_NAME
        assert back.pdu.error_index == 2

    def test_set_request(self):
        message = Message.set("private", 3, [("1.3.6.1.2.1.1.4.0", b"admin")])
        back = roundtrip(message)
        assert back.pdu.pdu_type == PduType.SET_REQUEST
        assert back.pdu.bindings[0].value == b"admin"

    def test_negative_integer_value(self):
        pdu = Pdu(PduType.GET_RESPONSE, 1, bindings=(VarBind.of("1.3", -5),))
        assert roundtrip(Message("c", pdu)).pdu.bindings[0].value == -5

    def test_empty_bindings(self):
        pdu = Pdu(PduType.GET_REQUEST, 1)
        back = roundtrip(Message("c", pdu))
        assert back.pdu.bindings == ()


class TestErrors:
    def test_malformed_octets(self):
        with pytest.raises(SnmpError, match="malformed"):
            decode_message(b"\x30\x03\x02\x01")

    def test_unencodable_value(self):
        pdu = Pdu(PduType.GET_RESPONSE, 1, bindings=(VarBind.of("1.3", object()),))
        with pytest.raises(SnmpError):
            encode_message(Message("c", pdu))

    def test_trap_not_supported(self):
        pdu = Pdu(PduType.TRAP, 1)
        with pytest.raises(SnmpError, match="cannot encode"):
            encode_message(Message("c", pdu))

    def test_unsupported_version_rejected(self):
        with pytest.raises(SnmpError, match="version"):
            Message("c", Pdu(PduType.GET_REQUEST, 1), version=1)


class TestPropertyBased:
    oids = st.lists(st.integers(0, 10_000), min_size=0, max_size=8).map(
        lambda rest: Oid((1, 3) + tuple(rest))
    )
    values = st.one_of(
        st.none(),
        st.integers(-(2**31), 2**31 - 1),
        st.binary(max_size=64),
        st.lists(st.integers(0, 1000), max_size=6).map(
            lambda rest: Oid((1, 3) + tuple(rest))
        ),
    )

    @given(
        st.integers(0, 2**30),
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=16
        ),
        st.lists(st.tuples(oids, values), max_size=6),
    )
    def test_arbitrary_message_roundtrip(self, request_id, community, pairs):
        pdu = Pdu(
            PduType.GET_RESPONSE,
            request_id,
            bindings=tuple(VarBind(oid, value) for oid, value in pairs),
        )
        back = roundtrip(Message(community, pdu))
        assert back.community == community
        assert back.pdu.request_id == request_id
        assert back.pdu.bindings == pdu.bindings
