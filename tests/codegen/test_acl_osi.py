"""Tests for the acl-table and osi output types."""

import pytest

from repro.nmsl.compiler import NmslCompiler
from repro.workloads.paper import PAPER_SPEC_TEXT
from repro.workloads.scenarios import campus_internet


@pytest.fixture(scope="module")
def compiled():
    compiler = NmslCompiler()
    return compiler, compiler.compile(PAPER_SPEC_TEXT)


class TestAclTable:
    def test_rows_tab_separated(self, compiled):
        compiler, result = compiled
        text = compiler.generate("acl-table", result).text()
        rows = [line for line in text.splitlines() if line]
        for row in rows:
            assert len(row.split("\t")) == 5

    def test_instance_grantor_rows(self, compiled):
        compiler, result = compiled
        text = compiler.generate("acl-table", result).text()
        assert (
            "instance:snmpdReadOnly@romano.cs.wisc.edu#1\tpublic\tmgmt.mib\t"
            "ReadOnly\t300" in text
        )

    def test_domain_grantor_rows(self, compiled):
        compiler, result = compiled
        text = compiler.generate("acl-table", result).text()
        assert "domain:wisc-cs\tpublic\tmgmt.mib\tReadOnly\t300" in text

    def test_processes_without_exports_skipped(self, compiled):
        compiler, result = compiled
        bundle = compiler.generate("acl-table", result)
        assert bundle.unit_for("snmpaddr") is None


class TestOsi:
    def test_domain_block(self, compiled):
        compiler, result = compiled
        text = compiler.generate("osi", result).text()
        assert "managementDomain wisc-cs {" in text
        assert "  managedSystem romano.cs.wisc.edu;" in text
        assert text.rstrip().endswith("}")

    def test_ports_per_permission(self, compiled):
        compiler, result = compiled
        text = compiler.generate("osi", result).text()
        # 2 agent exports (one per element) + 1 domain export = 3 ports.
        assert text.count("port p") == 3
        assert "peerDomain public;" in text
        assert "accessMode ReadOnly;" in text
        assert "minInterOperationTime 300;" in text

    def test_nested_domains_rendered(self):
        compiler = NmslCompiler()
        result = compiler.compile(campus_internet())
        text = compiler.generate("osi", result).text()
        assert "managementDomain campus {" in text
        assert "subDomain cs-domain;" in text
