"""Golden-file snapshots of the prescriptive output.

The consistency engine rework must not silently change what the
configuration generators emit: these tests pin the ``BartsSnmpd`` and
``acl-table`` output for the two checked-in example internets byte for
byte.  The static analyzer's text report for ``campus.nmsl`` is pinned
the same way (``campus.analyze.txt``).

To regenerate after an *intentional* output change::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/codegen/test_golden.py
"""

import os
from pathlib import Path

import pytest

from repro.nmsl.compiler import NmslCompiler

_EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
_GOLDEN = Path(__file__).resolve().parent / "golden"

CASES = [
    ("campus", "BartsSnmpd", "snmpd"),
    ("campus", "acl-table", "acl"),
    ("paper_internet", "BartsSnmpd", "snmpd"),
    ("paper_internet", "acl-table", "acl"),
]


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler()


@pytest.mark.parametrize(
    "stem, tag, suffix", CASES, ids=[f"{s}-{x}" for s, _t, x in CASES]
)
def test_codegen_matches_golden(compiler, stem, tag, suffix):
    source = (_EXAMPLES / f"{stem}.nmsl").read_text(encoding="utf-8")
    result = compiler.compile(source)
    assert result.ok, result.report.errors
    generated = compiler.generate(tag, result).text()

    golden_path = _GOLDEN / f"{stem}.{suffix}.txt"
    if os.environ.get("UPDATE_GOLDEN"):
        golden_path.write_text(generated, encoding="utf-8")
    expected = golden_path.read_text(encoding="utf-8")
    assert generated == expected, (
        f"{tag} output for examples/{stem}.nmsl deviates from "
        f"{golden_path.name}; run with UPDATE_GOLDEN=1 if intentional"
    )


def test_analyzer_text_matches_golden():
    """Pin the static analyzer's text report for campus.nmsl."""
    from repro.analysis import default_registry, render_text
    from repro.nmsl.compiler import CompilerOptions

    stem = "campus"
    # A repo-relative filename keeps the golden stable across checkouts.
    compiler = NmslCompiler(
        CompilerOptions(
            filename=f"examples/{stem}.nmsl", register_codegen=False
        )
    )
    source = (_EXAMPLES / f"{stem}.nmsl").read_text(encoding="utf-8")
    result = compiler.compile(source)
    assert result.ok, result.report.errors
    report = default_registry().run(compiler.analysis_context(result))
    generated = render_text(report) + "\n"

    golden_path = _GOLDEN / f"{stem}.analyze.txt"
    if os.environ.get("UPDATE_GOLDEN"):
        golden_path.write_text(generated, encoding="utf-8")
    expected = golden_path.read_text(encoding="utf-8")
    assert generated == expected, (
        f"analyzer output for examples/{stem}.nmsl deviates from "
        f"{golden_path.name}; run with UPDATE_GOLDEN=1 if intentional"
    )
