"""Tests for shipping transports and the ConfigurationGenerator."""

import pytest

from repro.codegen.base import ConfigurationGenerator
from repro.codegen.transport import (
    CallbackTransport,
    FileDropTransport,
    MailSpoolTransport,
)
from repro.errors import CodegenError
from repro.nmsl.compiler import NmslCompiler
from repro.workloads.paper import PAPER_SPEC_TEXT


@pytest.fixture(scope="module")
def generator():
    compiler = NmslCompiler()
    result = compiler.compile(PAPER_SPEC_TEXT)
    return ConfigurationGenerator(compiler, result)


class TestFileDrop:
    def test_writes_one_file_per_element(self, generator, tmp_path):
        records = generator.ship("BartsSnmpd", FileDropTransport(tmp_path))
        assert len(records) == 2
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["cs.wisc.edu.conf", "romano.cs.wisc.edu.conf"]

    def test_file_contents(self, generator, tmp_path):
        generator.ship("BartsSnmpd", FileDropTransport(tmp_path))
        text = (tmp_path / "romano.cs.wisc.edu.conf").read_text()
        assert "community public" in text

    def test_element_filter(self, generator, tmp_path):
        records = generator.ship(
            "BartsSnmpd",
            FileDropTransport(tmp_path),
            elements=["romano.cs.wisc.edu"],
        )
        assert len(records) == 1

    def test_unsafe_names_sanitised(self, tmp_path):
        transport = FileDropTransport(tmp_path)
        record = transport.deliver("../evil", "x")
        assert "/evil" not in record.destination.replace(str(tmp_path), "")


class TestMailSpool:
    def test_message_format(self, generator, tmp_path):
        records = generator.ship("BartsSnmpd", MailSpoolTransport(tmp_path))
        assert all(record.method == "mail" for record in records)
        message = sorted(tmp_path.iterdir())[0].read_text()
        assert message.startswith("From: nmsl-compiler@noc\n")
        assert "Subject: NMSL configuration update for" in message

    def test_recipient_is_element_postmaster(self, generator, tmp_path):
        records = generator.ship("BartsSnmpd", MailSpoolTransport(tmp_path))
        assert records[0].destination == "postmaster@cs.wisc.edu"


class TestCallback:
    def test_receiver_called_per_element(self, generator):
        received = {}
        transport = CallbackTransport(lambda element, text: received.update({element: text}))
        generator.ship("BartsSnmpd", transport)
        assert set(received) == {"romano.cs.wisc.edu", "cs.wisc.edu"}


class TestDistributedGeneration:
    def test_generate_for_element(self, generator):
        config = generator.generate_for_element("BartsSnmpd", "romano.cs.wisc.edu")
        assert config.element == "romano.cs.wisc.edu"
        assert "snmpd.conf for romano" in config.text

    def test_unknown_element_raises(self, generator):
        with pytest.raises(CodegenError, match="no configuration"):
            generator.generate_for_element("BartsSnmpd", "ghost.example")

    def test_acl_output_routed_to_domain_members(self, generator):
        configs = generator.generate("acl-table")
        elements = {config.element for config in configs}
        # domain-level rows are delivered to both member systems
        assert {"romano.cs.wisc.edu", "cs.wisc.edu"} <= elements
