"""Tests for shipping transports and the ConfigurationGenerator."""

import pytest

from repro.codegen.base import ConfigurationGenerator
from repro.codegen.transport import (
    CallbackTransport,
    FileDropTransport,
    MailSpoolTransport,
    ReliableTransport,
    ShipmentRecord,
    Transport,
)
from repro.errors import CodegenError, TransportError
from repro.nmsl.compiler import NmslCompiler
from repro.rollout import RetryPolicy
from repro.workloads.paper import PAPER_SPEC_TEXT


@pytest.fixture(scope="module")
def generator():
    compiler = NmslCompiler()
    result = compiler.compile(PAPER_SPEC_TEXT)
    return ConfigurationGenerator(compiler, result)


class TestFileDrop:
    def test_writes_one_file_per_element(self, generator, tmp_path):
        records = generator.ship("BartsSnmpd", FileDropTransport(tmp_path))
        assert len(records) == 2
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["cs.wisc.edu.conf", "romano.cs.wisc.edu.conf"]

    def test_file_contents(self, generator, tmp_path):
        generator.ship("BartsSnmpd", FileDropTransport(tmp_path))
        text = (tmp_path / "romano.cs.wisc.edu.conf").read_text()
        assert "community public" in text

    def test_element_filter(self, generator, tmp_path):
        records = generator.ship(
            "BartsSnmpd",
            FileDropTransport(tmp_path),
            elements=["romano.cs.wisc.edu"],
        )
        assert len(records) == 1

    def test_unsafe_names_sanitised(self, tmp_path):
        transport = FileDropTransport(tmp_path)
        record = transport.deliver("../evil", "x")
        assert "/evil" not in record.destination.replace(str(tmp_path), "")


class TestMailSpool:
    def test_message_format(self, generator, tmp_path):
        records = generator.ship("BartsSnmpd", MailSpoolTransport(tmp_path))
        assert all(record.method == "mail" for record in records)
        message = sorted(tmp_path.iterdir())[0].read_text()
        assert message.startswith("From: nmsl-compiler@noc\n")
        assert "Subject: NMSL configuration update for" in message

    def test_recipient_is_element_postmaster(self, generator, tmp_path):
        records = generator.ship("BartsSnmpd", MailSpoolTransport(tmp_path))
        assert records[0].destination == "postmaster@cs.wisc.edu"


class TestCallback:
    def test_receiver_called_per_element(self, generator):
        received = {}
        transport = CallbackTransport(lambda element, text: received.update({element: text}))
        generator.ship("BartsSnmpd", transport)
        assert set(received) == {"romano.cs.wisc.edu", "cs.wisc.edu"}


class TestDistributedGeneration:
    def test_generate_for_element(self, generator):
        config = generator.generate_for_element("BartsSnmpd", "romano.cs.wisc.edu")
        assert config.element == "romano.cs.wisc.edu"
        assert "snmpd.conf for romano" in config.text

    def test_unknown_element_raises(self, generator):
        with pytest.raises(CodegenError, match="no configuration"):
            generator.generate_for_element("BartsSnmpd", "ghost.example")

    def test_acl_output_routed_to_domain_members(self, generator):
        configs = generator.generate("acl-table")
        elements = {config.element for config in configs}
        # domain-level rows are delivered to both member systems
        assert {"romano.cs.wisc.edu", "cs.wisc.edu"} <= elements


class TestOctetAccounting:
    def test_file_octets_are_encoded_utf8_length(self, tmp_path):
        transport = FileDropTransport(tmp_path)
        text = "community publiç # café\n"
        record = transport.deliver("host.example", text)
        assert record.octets == len(text.encode("utf-8"))
        assert record.octets > len(text)  # non-ASCII costs extra octets

    def test_callback_octets_are_encoded_utf8_length(self):
        transport = CallbackTransport(lambda element, text: None)
        record = transport.deliver("host.example", "naïve\n")
        assert record.octets == len("naïve\n".encode("utf-8"))

    def test_mail_octets_count_the_whole_message(self, tmp_path):
        transport = MailSpoolTransport(tmp_path)
        record = transport.deliver("host.example", "x\n")
        spooled = sorted(tmp_path.iterdir())[0]
        assert record.octets == len(spooled.read_bytes())


class TestAtomicWrites:
    def test_no_temporary_left_behind(self, tmp_path):
        FileDropTransport(tmp_path).deliver("host.example", "x\n")
        assert [p.suffix for p in tmp_path.iterdir()] == [".conf"]

    def test_redelivery_replaces_not_appends(self, tmp_path):
        transport = FileDropTransport(tmp_path)
        transport.deliver("host.example", "first\n")
        transport.deliver("host.example", "second\n")
        assert (tmp_path / "host.example.conf").read_text() == "second\n"

    def test_failed_write_leaves_previous_version_intact(self, tmp_path, monkeypatch):
        transport = FileDropTransport(tmp_path)
        transport.deliver("host.example", "good\n")

        import repro.codegen.transport as module

        def torn_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(module.os, "replace", torn_replace)
        with pytest.raises(OSError):
            transport.deliver("host.example", "partial\n")
        assert (tmp_path / "host.example.conf").read_text() == "good\n"


class TestAcknowledgement:
    def test_file_acknowledge_reads_back(self, tmp_path):
        transport = FileDropTransport(tmp_path)
        record = transport.deliver("host.example", "x\n")
        assert transport.acknowledge(record, "x\n")
        assert not transport.acknowledge(record, "y\n")

    def test_file_acknowledge_false_when_file_missing(self, tmp_path):
        transport = FileDropTransport(tmp_path)
        record = transport.deliver("host.example", "x\n")
        (tmp_path / "host.example.conf").unlink()
        assert not transport.acknowledge(record, "x\n")

    def test_mail_acknowledge_checks_spooled_body(self, tmp_path):
        transport = MailSpoolTransport(tmp_path)
        record = transport.deliver("host.example", "payload\n")
        assert transport.acknowledge(record, "payload\n")
        assert not transport.acknowledge(record, "other\n")


class _FlakyTransport(Transport):
    """Fails deliveries until a budget runs out, then succeeds."""

    method = "flaky"

    def __init__(self, failures, ack_failures=0):
        self.failures = failures
        self.ack_failures = ack_failures
        self.deliveries = 0

    def deliver(self, element, text):
        self.deliveries += 1
        if self.failures:
            self.failures -= 1
            raise TransportError("spool unavailable")
        return ShipmentRecord(element, self.method, "dev/null", len(text))

    def acknowledge(self, record, text):
        if self.ack_failures:
            self.ack_failures -= 1
            return False
        return True


class TestReliableTransport:
    POLICY = RetryPolicy(
        max_attempts=3, base_backoff_s=0.01, max_backoff_s=0.1, jitter=0.0
    )

    def make(self, inner):
        sleeps = []
        transport = ReliableTransport(
            inner, policy=self.POLICY, seed=7, sleep=sleeps.append
        )
        return transport, sleeps

    def test_first_attempt_success_records_one_attempt(self, tmp_path):
        transport, sleeps = self.make(FileDropTransport(tmp_path))
        record = transport.deliver("host.example", "x\n")
        assert record.attempts == 1
        assert sleeps == []

    def test_retries_until_success(self):
        inner = _FlakyTransport(failures=2)
        transport, sleeps = self.make(inner)
        record = transport.deliver("host.example", "x\n")
        assert record.attempts == 3
        assert inner.deliveries == 3
        assert len(sleeps) == 2
        assert sleeps == sorted(sleeps)  # exponential growth

    def test_unacknowledged_delivery_is_retried(self):
        inner = _FlakyTransport(failures=0, ack_failures=1)
        transport, _sleeps = self.make(inner)
        record = transport.deliver("host.example", "x\n")
        assert record.attempts == 2

    def test_exhaustion_dead_letters_and_raises(self):
        inner = _FlakyTransport(failures=99)
        transport, sleeps = self.make(inner)
        with pytest.raises(TransportError, match="after 3 attempt"):
            transport.deliver("host.example", "x\n")
        assert transport.dead_letter == ["host.example"]
        assert inner.deliveries == 3
        assert len(sleeps) == 2  # no sleep after the final attempt

    def test_wraps_spool_transport_end_to_end(self, generator, tmp_path):
        transport = ReliableTransport(
            FileDropTransport(tmp_path), policy=self.POLICY, sleep=lambda s: None
        )
        records = generator.ship("BartsSnmpd", transport)
        assert len(records) == 2
        assert all(record.attempts == 1 for record in records)
        assert transport.method == "file"
