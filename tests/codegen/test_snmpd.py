"""Tests for the BartsSnmpd configuration generator."""

import pytest

from repro.nmsl.compiler import NmslCompiler
from repro.workloads.paper import PAPER_SPEC_TEXT
from repro.workloads.scenarios import campus_internet


@pytest.fixture(scope="module")
def paper_bundle():
    compiler = NmslCompiler()
    result = compiler.compile(PAPER_SPEC_TEXT)
    return compiler.generate("BartsSnmpd", result)


class TestPaperConfig:
    def test_one_unit_per_agent_element(self, paper_bundle):
        names = [unit.name for unit in paper_bundle.units if unit.text]
        assert names == ["romano.cs.wisc.edu", "cs.wisc.edu"]

    def test_header_and_identity(self, paper_bundle):
        text = paper_bundle.unit_for("romano.cs.wisc.edu").text
        assert text.startswith("# snmpd.conf for romano.cs.wisc.edu")
        assert "sysName romano.cs.wisc.edu" in text
        assert "sysDescr SunOS 4.0.1" in text

    def test_view_is_effective_intersection(self, paper_bundle):
        """Agent supports mgmt.mib; element lacks EGP: views are the
        element's seven groups, not the whole MIB."""
        text = paper_bundle.unit_for("romano.cs.wisc.edu").text
        view_lines = [l for l in text.splitlines() if l.startswith("view ")]
        assert len(view_lines) == 7
        assert not any("mgmt.mib.egp" in line for line in view_lines)
        assert any(line.endswith("mgmt.mib.ip") for line in view_lines)

    def test_process_export_becomes_community(self, paper_bundle):
        text = paper_bundle.unit_for("romano.cs.wisc.edu").text
        assert (
            "community public view-snmpdReadOnly ReadOnly min-interval 300"
            in text
        )

    def test_intra_domain_community(self, paper_bundle):
        text = paper_bundle.unit_for("romano.cs.wisc.edu").text
        assert "community wisc-cs view-snmpdReadOnly ReadWrite min-interval 0" in text


class TestCampusConfig:
    def test_domain_exports_reach_member_agents(self):
        compiler = NmslCompiler()
        result = compiler.compile(campus_internet())
        bundle = compiler.generate("BartsSnmpd", result)
        text = bundle.unit_for("gw.cs.campus.edu").text
        # cs-domain exports to noc-domain at >= 5 minutes.
        assert "community noc-domain view-snmpAgent ReadOnly min-interval 300" in text

    def test_elements_without_agents_get_no_config(self):
        compiler = NmslCompiler()
        result = compiler.compile(
            """
process app(T: Process) ::=
    queries T requests mgmt.mib frequency infrequent;
end process app.
system "bare.example" ::=
    cpu x; interface i net n type t speed 1 bps; opsys o version 1;
    supports mgmt.mib.system;
    process app(bare.example);
end system "bare.example".
""",
            strict=False,
        )
        bundle = compiler.generate("BartsSnmpd", result)
        assert bundle.unit_for("bare.example") is None
