"""Smoke tests: every example script runs to completion.

The examples double as the library's acceptance tests — each exercises a
whole aspect of the paper end to end.  They are executed as subprocesses
exactly as a user would run them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    ("quickstart.py", "specification is consistent"),
    ("campus_network.py", "INCONSISTENT"),
    ("speculative_planning.py", "period >= 600 seconds"),
    ("extension_demo.py", "billing_rate(meteredAgent, 12)."),
    ("proxy_bridge.py", "proxy-for bridge1.example via bridgeTalk"),
    ("runtime_verification.py", "network adheres to specification"),
]


@pytest.mark.parametrize("script,expected", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(script, expected):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert expected in completed.stdout
