"""Tests for the topology and delay model."""

import pytest

from repro.errors import SimulationError
from repro.netsim.network import Internet
from repro.nmsl.compiler import NmslCompiler
from repro.workloads.scenarios import campus_internet


@pytest.fixture
def small():
    internet = Internet()
    internet.attach("a", "net1", 10_000_000)
    internet.attach("b", "net1", 10_000_000)
    internet.attach("b", "net2", 1_000_000)  # b is a gateway
    internet.attach("c", "net2", 1_000_000)
    return internet


class TestConstruction:
    def test_elements_and_networks(self, small):
        assert small.element_names() == ("a", "b", "c")
        assert small.network_names() == ("net1", "net2")

    def test_interface_speeds(self, small):
        assert small.element("b").speed_on("net1") == 10_000_000
        assert small.element("b").speed_on("net2") == 1_000_000
        assert small.element("a").speed_on("net2") == 0

    def test_unknown_element(self, small):
        with pytest.raises(SimulationError):
            small.element("ghost")

    def test_from_specification(self):
        compiler = NmslCompiler()
        result = compiler.compile(campus_internet())
        internet = Internet.from_specification(result.specification)
        assert "noc.campus.edu" in internet.element_names()
        assert "campus-backbone" in internet.network_names()
        # The cs gateway is multi-homed.
        gw = internet.element("gw.cs.campus.edu")
        assert len(gw.interfaces) == 2


class TestRouting:
    def test_same_network_single_hop(self, small):
        assert small.path_networks("a", "b") == ["net1"]

    def test_via_gateway(self, small):
        assert small.path_networks("a", "c") == ["net1", "net2"]

    def test_self_is_empty(self, small):
        assert small.path_networks("a", "a") == []

    def test_partitioned(self):
        internet = Internet()
        internet.attach("a", "net1", 10)
        internet.attach("b", "net2", 10)
        with pytest.raises(SimulationError, match="no route"):
            internet.path_networks("a", "b")


class TestDelay:
    def test_zero_for_self(self, small):
        assert small.delay("a", "a", 100) == 0.0

    def test_single_hop_delay(self, small):
        # 1ms latency + 100 bytes * 8 / 10Mbps
        expected = 0.001 + 800 / 10_000_000
        assert small.delay("a", "b", 100) == pytest.approx(expected)

    def test_multi_hop_larger(self, small):
        assert small.delay("a", "c", 100) > small.delay("a", "b", 100)

    def test_bottleneck_speed_used(self, small):
        # a->c crosses the 1 Mbps segment.
        delay = small.delay("a", "c", 1000)
        assert delay > (1000 * 8) / 1_000_000

    def test_bytes_counted(self, small):
        small.delay("a", "c", 500)
        assert small.network("net1").bytes_carried == 500
        assert small.network("net2").bytes_carried == 500

    def test_utilisation_report(self, small):
        small.delay("a", "b", 1000)
        report = small.utilisation_report(duration_s=8.0)
        assert report["net1"] == pytest.approx(1000.0)
        assert report["net2"] == 0.0

    def test_bad_duration(self, small):
        with pytest.raises(SimulationError):
            small.utilisation_report(0)
