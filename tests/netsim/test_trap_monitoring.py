"""Trap-directed monitoring: the verifier consumes agent traps."""

import pytest

from repro.netsim.monitor import RuntimeVerifier
from repro.netsim.processes import ManagementRuntime
from repro.nmsl.compiler import NmslCompiler
from repro.snmp.messages import GenericTrap
from repro.workloads.scenarios import campus_internet


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler()


class TestTrapSummary:
    def test_cold_starts_match_installs(self, compiler):
        runtime = ManagementRuntime(compiler, compiler.compile(campus_internet()))
        configured = runtime.install_configuration()
        verifier = RuntimeVerifier(runtime.specification, runtime.facts)
        summary = verifier.trap_summary(runtime.traps)
        assert sum(
            counts.get("cold_start", 0) for counts in summary.values()
        ) == configured

    def test_auth_failures_traced_to_agent(self, compiler):
        runtime = ManagementRuntime(compiler, compiler.compile(campus_internet()))
        runtime.install_configuration()
        agent_id, agent = next(iter(runtime.agents.items()))
        from repro.snmp.manager import SnmpManager
        from repro.errors import SnmpError

        stranger = SnmpManager("intruder", agent.handle_octets)
        for _attempt in range(3):
            with pytest.raises(SnmpError):
                stranger.get(["1.3.6.1.2.1.1.1.0"])
        verifier = RuntimeVerifier(runtime.specification, runtime.facts)
        summary = verifier.trap_summary(runtime.traps)
        assert summary[agent_id]["authentication_failure"] == 3

    def test_empty_traps(self, compiler):
        runtime = ManagementRuntime(compiler, compiler.compile(campus_internet()))
        verifier = RuntimeVerifier(runtime.specification, runtime.facts)
        assert verifier.trap_summary([]) == {}
