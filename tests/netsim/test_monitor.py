"""Tests for the runtime verifier."""

import pytest

from repro.netsim.monitor import RuntimeVerifier
from repro.netsim.processes import ManagementRuntime, QueryRecord
from repro.nmsl.compiler import NmslCompiler
from repro.workloads.scenarios import campus_internet


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler()


@pytest.fixture
def runtime(compiler):
    result = compiler.compile(campus_internet())
    runtime = ManagementRuntime(compiler, result)
    runtime.install_configuration()
    return runtime


def verifier_for(runtime):
    return RuntimeVerifier(runtime.specification, runtime.facts)


class TestAdherence:
    def test_clean_run_adheres(self, runtime):
        runtime.start(duration_s=3600)
        runtime.run(3600)
        report = verifier_for(runtime).verify(runtime.log)
        assert report.adheres
        assert report.observed_queries == len(runtime.log)
        assert report.checked_pairs == 5
        assert "adheres" in report.render()

    def test_misbehaving_client_detected(self, runtime):
        bad = next(
            driver.instance.id
            for driver in runtime.drivers
            if driver.instance.process_name == "nocMonitor"
        )
        runtime.start(duration_s=3600, misbehaving={bad: 60.0})
        runtime.run(3600)
        report = verifier_for(runtime).verify(runtime.log)
        assert not report.adheres
        assert report.violating_clients == (bad,)
        assert "VIOLATES" in report.render()

    def test_violation_details(self, runtime):
        bad = next(
            driver.instance.id
            for driver in runtime.drivers
            if driver.instance.process_name == "nocMonitor"
        )
        runtime.start(duration_s=1800, misbehaving={bad: 60.0})
        runtime.run(1800)
        report = verifier_for(runtime).verify(runtime.log)
        violation = report.violations[0]
        assert violation.observed_interval_s == pytest.approx(60.0, abs=1.0)
        assert violation.promised_min_period_s == 300.0
        assert "queried" in violation.describe()


class TestCrossCheck:
    def test_enforcement_agrees_with_observation(self, runtime):
        bad = next(
            driver.instance.id
            for driver in runtime.drivers
            if driver.instance.process_name == "nocMonitor"
        )
        runtime.start(duration_s=3600, misbehaving={bad: 60.0})
        runtime.run(3600)
        verifier = verifier_for(runtime)
        report = verifier.verify(runtime.log)
        assert verifier.cross_check_enforcement(runtime.log, report) == []

    def test_enforcement_gap_reported(self, runtime):
        """An intra-domain violator is trusted (no rate limit installed),
        so the verifier sees violations the agents never flagged."""
        bad = next(
            driver.instance.id
            for driver in runtime.drivers
            if driver.instance.process_name == "linkWatcher"
        )
        runtime.start(duration_s=1800, misbehaving={bad: 10.0})
        runtime.run(1800)
        verifier = verifier_for(runtime)
        report = verifier.verify(runtime.log)
        assert not report.adheres
        messages = verifier.cross_check_enforcement(runtime.log, report)
        assert any("enforcement gap" in message for message in messages)


class TestSyntheticLogs:
    def test_tolerance_boundary(self, runtime):
        verifier = verifier_for(runtime)
        client = runtime.drivers[0].instance.id
        agent = runtime.drivers[0].target_agent.id
        promised = runtime.drivers[0].period_s
        log = [
            QueryRecord(0.0, client, "e", agent, "c", "p", "ok"),
            QueryRecord(promised, client, "e", agent, "c", "p", "ok"),
        ]
        assert verifier.verify(log).adheres

    def test_unknown_clients_ignored(self, runtime):
        verifier = verifier_for(runtime)
        log = [
            QueryRecord(0.0, "stranger", "e", "a", "c", "p", "ok"),
            QueryRecord(0.1, "stranger", "e", "a", "c", "p", "ok"),
        ]
        assert verifier.verify(log).adheres
