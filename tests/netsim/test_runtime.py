"""Tests for the management runtime (spec -> live simulated managers)."""

import pytest

from repro.nmsl.compiler import NmslCompiler
from repro.netsim.processes import ManagementRuntime
from repro.workloads.paper import PAPER_SPEC_TEXT
from repro.workloads.scenarios import campus_internet


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler()


@pytest.fixture
def campus_runtime(compiler):
    result = compiler.compile(campus_internet())
    return ManagementRuntime(compiler, result)


class TestConstruction:
    def test_agents_built_per_agent_instance(self, campus_runtime):
        assert len(campus_runtime.agents) == 5  # one snmpAgent per element

    def test_drivers_built_per_query(self, campus_runtime):
        # 4 nocMonitor instances + 1 linkWatcher.
        assert len(campus_runtime.drivers) == 5

    def test_driver_periods_match_spec(self, campus_runtime):
        periods = sorted({driver.period_s for driver in campus_runtime.drivers})
        assert periods == [60.0, 300.0]

    def test_agent_stores_populated(self, campus_runtime):
        agent = next(iter(campus_runtime.agents.values()))
        assert len(agent.store) > 50  # scalars + identity rows

    def test_paper_spec_builds(self, compiler):
        result = compiler.compile(PAPER_SPEC_TEXT)
        runtime = ManagementRuntime(compiler, result)
        assert len(runtime.agents) == 2
        assert len(runtime.drivers) == 1  # the wildcard snmpaddr


class TestConfiguration:
    def test_install_configures_all_agents(self, campus_runtime):
        assert campus_runtime.install_configuration() == 5

    def test_agents_enforce_installed_policy(self, campus_runtime):
        campus_runtime.install_configuration()
        agent = campus_runtime.agents["snmpAgent@gw.cs.campus.edu#1"]
        assert "noc-domain" in agent.policy.communities()
        assert "cs-domain" in agent.policy.communities()


class TestExecution:
    def test_clean_run_all_ok(self, campus_runtime):
        campus_runtime.install_configuration()
        campus_runtime.start(duration_s=1800)
        campus_runtime.run(1800)
        outcomes = campus_runtime.outcomes()
        assert set(outcomes) == {"ok"}
        # 4 monitors at 300s (5 each to t=1500... plus 1800) + watcher at 60s.
        assert outcomes["ok"] > 30

    def test_unconfigured_agents_deny(self, campus_runtime):
        # Without install_configuration, agents have empty policies.
        campus_runtime.start(duration_s=600)
        campus_runtime.run(600)
        assert set(campus_runtime.outcomes()) == {"denied"}

    def test_query_log_records_delay(self, campus_runtime):
        campus_runtime.install_configuration()
        campus_runtime.start(duration_s=600)
        campus_runtime.run(600)
        assert all(record.delay_s >= 0 for record in campus_runtime.log)
        cross = [
            record
            for record in campus_runtime.log
            if record.client.startswith("nocMonitor")
        ]
        assert all(record.delay_s > 0 for record in cross)

    def test_misbehaving_manager_rate_limited(self, campus_runtime):
        campus_runtime.install_configuration()
        bad = next(
            driver.instance.id
            for driver in campus_runtime.drivers
            if driver.instance.process_name == "nocMonitor"
        )
        campus_runtime.start(duration_s=3600, misbehaving={bad: 60.0})
        campus_runtime.run(3600)
        outcomes = campus_runtime.outcomes()
        assert outcomes.get("rate-limited", 0) > 0

    def test_network_carries_traffic(self, campus_runtime):
        campus_runtime.install_configuration()
        campus_runtime.start(duration_s=600)
        campus_runtime.run(600)
        report = campus_runtime.internet.utilisation_report(600)
        assert report["campus-backbone"] > 0
