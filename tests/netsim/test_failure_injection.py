"""Failure injection: lossy networks and what the verifier makes of them."""

import pytest

from repro.errors import SimulationError
from repro.netsim.monitor import RuntimeVerifier
from repro.netsim.processes import ManagementRuntime
from repro.nmsl.compiler import NmslCompiler
from repro.workloads.scenarios import campus_internet


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler()


def make_runtime(compiler):
    runtime = ManagementRuntime(compiler, compiler.compile(campus_internet()))
    runtime.install_configuration()
    return runtime


class TestLoss:
    def test_losses_logged(self, compiler):
        runtime = make_runtime(compiler)
        runtime.start(duration_s=7200, loss_rate=0.3, seed=42)
        runtime.run(7200)
        outcomes = runtime.outcomes()
        assert outcomes.get("lost", 0) > 0
        assert outcomes.get("ok", 0) > 0
        total = sum(outcomes.values())
        assert 0.1 < outcomes["lost"] / total < 0.5

    def test_loss_is_deterministic_per_seed(self, compiler):
        first = make_runtime(compiler)
        first.start(duration_s=3600, loss_rate=0.2, seed=7)
        first.run(3600)
        second = make_runtime(compiler)
        second.start(duration_s=3600, loss_rate=0.2, seed=7)
        second.run(3600)
        assert first.outcomes() == second.outcomes()

    def test_zero_loss_default(self, compiler):
        runtime = make_runtime(compiler)
        runtime.start(duration_s=1800)
        runtime.run(1800)
        assert "lost" not in runtime.outcomes()

    def test_invalid_loss_rate(self, compiler):
        runtime = make_runtime(compiler)
        with pytest.raises(SimulationError):
            runtime.start(duration_s=10, loss_rate=1.5)

    def test_lossy_wellbehaved_network_still_adheres(self, compiler):
        """Losing requests never makes an honest client look like a
        violator — lost sends still count as client activity."""
        runtime = make_runtime(compiler)
        runtime.start(duration_s=7200, loss_rate=0.3, seed=11)
        runtime.run(7200)
        verifier = RuntimeVerifier(runtime.specification, runtime.facts)
        report = verifier.verify(runtime.log)
        assert report.adheres

    def test_lossy_violator_still_detected(self, compiler):
        runtime = make_runtime(compiler)
        bad = next(
            driver.instance.id
            for driver in runtime.drivers
            if driver.instance.process_name == "nocMonitor"
        )
        runtime.start(
            duration_s=7200, misbehaving={bad: 60.0}, loss_rate=0.3, seed=11
        )
        runtime.run(7200)
        verifier = RuntimeVerifier(runtime.specification, runtime.facts)
        report = verifier.verify(runtime.log)
        assert not report.adheres
        assert bad in report.violating_clients
