"""Per-kind unit tests for the chaos injector's stateful faults.

``flap`` and ``corrupt_store`` join the menu in this PR; each is pinned
down at the channel level with a counting stub, plus one test against a
real :class:`SnmpAgent` for the store-corruption semantics the
reconciler relies on (digest drifts, running policy keeps serving).
"""

import pytest

from repro.asn1.types import Asn1Module
from repro.errors import DeliveryError
from repro.mib.instances import InstanceStore
from repro.mib.mib1 import build_mib1
from repro.netsim.faults import FaultInjector, FaultSpec
from repro.rollout import RetryPolicy, RolloutCoordinator
from repro.snmp.agent import SnmpAgent

CONF = """view v include mgmt.mib.system
community fleet v ReadOnly min-interval 30
"""


def make_channel(spec, crash_hook=None, restart_hook=None, corrupt_hook=None):
    injector = FaultInjector(seed=1, per_element={"e": spec})
    delivered = []

    def send(octets):
        delivered.append(octets)
        return b"response"

    wrapped = injector.wrap(
        "e",
        send,
        crash_hook=crash_hook,
        restart_hook=restart_hook,
        corrupt_hook=corrupt_hook,
    )
    return wrapped, delivered, injector


class TestFlap:
    def test_crashes_after_n_messages_since_up(self):
        crashes = []
        send, delivered, injector = make_channel(
            FaultSpec(flap_after=3), crash_hook=lambda: crashes.append(1)
        )
        for _ in range(3):
            assert send(b"x") == b"response"
        with pytest.raises(DeliveryError):
            send(b"x")
        assert len(delivered) == 3
        assert crashes == [1]
        assert injector.injected["e"]["flap"] == 1

    def test_restarts_after_flap_restart_after_attempts(self):
        restarts = []
        send, delivered, injector = make_channel(
            FaultSpec(flap_after=1, flap_restart_after=2),
            restart_hook=lambda: restarts.append(1),
        )
        assert send(b"x") == b"response"
        with pytest.raises(DeliveryError):  # the flap itself
            send(b"x")
        with pytest.raises(DeliveryError):  # down, attempt 1 of 2
            send(b"x")
        assert send(b"x") == b"response"  # attempt 2 restarts + delivers
        assert restarts == [1]
        assert injector.injected["e"]["restart"] == 1

    def test_flap_recurs_indefinitely(self):
        send, _, injector = make_channel(
            FaultSpec(flap_after=2, flap_restart_after=1)
        )
        outcomes = []
        for _ in range(12):
            try:
                send(b"x")
                outcomes.append("ok")
            except DeliveryError:
                outcomes.append("down")
        # up 2, down (flap), restart+deliver, up 1 more, flap again...
        assert injector.injected["e"]["flap"] >= 2
        assert injector.injected["e"]["restart"] >= 2
        assert outcomes.count("ok") >= 6

    def test_falls_back_to_restart_after_when_unset(self):
        send, _, injector = make_channel(
            FaultSpec(flap_after=1, restart_after=1)
        )
        assert send(b"x") == b"response"
        with pytest.raises(DeliveryError):
            send(b"x")
        assert send(b"x") == b"response"
        assert injector.injected["e"]["restart"] == 1

    def test_without_restart_the_element_stays_down(self):
        send, _, _ = make_channel(FaultSpec(flap_after=1))
        assert send(b"x") == b"response"
        for _ in range(5):
            with pytest.raises(DeliveryError):
                send(b"x")


class TestCorruptStore:
    def test_fires_once_after_nth_delivery(self):
        corruptions = []
        send, _, injector = make_channel(
            FaultSpec(corrupt_store_after=2),
            corrupt_hook=lambda: corruptions.append(1),
        )
        send(b"x")
        send(b"x")
        assert corruptions == []  # armed, not yet fired
        for _ in range(4):
            send(b"x")
        assert corruptions == [1]  # one-shot
        assert injector.injected["e"]["corrupt_store"] == 1

    def test_zero_threshold_fires_before_first_delivery(self):
        corruptions = []
        send, delivered, _ = make_channel(
            FaultSpec(corrupt_store_after=0),
            corrupt_hook=lambda: corruptions.append(1),
        )
        send(b"x")
        assert corruptions == [1]
        assert len(delivered) == 1

    def test_fires_even_while_the_agent_is_down(self):
        corruptions = []
        send, _, _ = make_channel(
            FaultSpec(crash_after=1, corrupt_store_after=1),
            corrupt_hook=lambda: corruptions.append(1),
        )
        send(b"x")
        with pytest.raises(DeliveryError):  # crash fires
            send(b"x")
        assert corruptions == [1]  # bit-rot is out-of-band

    def test_agent_store_corruption_drifts_digest_not_policy(self):
        tree = build_mib1()
        store = InstanceStore(tree, module=Asn1Module())
        agent = SnmpAgent("e", store, tree=tree)
        report = RolloutCoordinator(
            channels={"e": agent.handle_octets},
            configs={"e": CONF},
            policy=RetryPolicy(max_attempts=2),
        ).run()
        assert report.complete
        before = agent.running_digest()
        agent.corrupt_store()
        assert agent.running_digest() != before
        assert agent.last_good_config != CONF
        # The running policy was compiled before the bit-rot: it serves on.
        assert agent.policy.communities() == ("fleet",)
