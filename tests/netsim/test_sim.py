"""Tests for the discrete-event core."""

import pytest

from repro.errors import SimulationError
from repro.netsim.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5, lambda: fired.append("b"))
        sim.schedule(1, lambda: fired.append("a"))
        sim.schedule(9, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_keep_insertion_order(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(1, lambda tag=tag: fired.append(tag))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(3, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3]

    def test_callbacks_may_reschedule(self):
        sim = Simulator()
        count = [0]

        def again():
            count[0] += 1
            if count[0] < 3:
                sim.schedule(1, again)

        sim.schedule(1, again)
        sim.run()
        assert count[0] == 3
        assert sim.now == 3

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1, lambda: None)


class TestRunUntil:
    def test_horizon_respected(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, lambda: fired.append(1))
        sim.schedule(10, lambda: fired.append(10))
        processed = sim.run_until(5)
        assert processed == 1
        assert fired == [1]
        assert sim.now == 5
        assert sim.pending() == 1

    def test_resume_after_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append(10))
        sim.run_until(5)
        sim.run_until(20)
        assert fired == [10]


class TestPeriodic:
    def test_schedule_every(self):
        sim = Simulator()
        times = []
        sim.schedule_every(10, lambda: times.append(sim.now), until=35)
        sim.run_until(100)
        assert times == [10, 20, 30]

    def test_custom_start(self):
        sim = Simulator()
        times = []
        sim.schedule_every(10, lambda: times.append(sim.now), start=5, until=30)
        sim.run_until(100)
        assert times == [5, 15, 25]

    def test_bad_period(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_every(0, lambda: None)

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1, forever)

        sim.schedule(1, forever)
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run(max_events=100)
