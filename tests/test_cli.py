"""Tests for the nmslc command line."""

import pytest

from repro.cli import main
from repro.workloads.paper import PAPER_SPEC_TEXT
from repro.workloads.scenarios import campus_internet

BILLING_EXTENSION = """
extension billing;
keyword billing in process;
output acct-report for process.billing emit "charge {name} {arg0}";
"""


@pytest.fixture
def paper_file(tmp_path):
    path = tmp_path / "paper.nmsl"
    path.write_text(PAPER_SPEC_TEXT)
    return path


class TestCompileOnly:
    def test_success(self, paper_file, capsys):
        assert main([str(paper_file)]) == 0
        out = capsys.readouterr().out
        assert "2 processes" in out
        assert "2 systems" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main([str(tmp_path / "none.nmsl")]) == 2

    def test_syntax_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.nmsl"
        bad.write_text("process broken ::= supports")
        assert main([str(bad)]) == 2

    def test_semantic_error_lax(self, tmp_path, capsys):
        bad = tmp_path / "bad.nmsl"
        bad.write_text("process p ::= supports mgmt.mib.nosuch; end process p.")
        assert main([str(bad), "--lax"]) == 1
        assert "unknown MIB path" in capsys.readouterr().err


class TestCheck:
    def test_consistent(self, paper_file, capsys):
        assert main([str(paper_file), "--check"]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_inconsistent_exit_code(self, tmp_path, capsys):
        path = tmp_path / "campus.nmsl"
        path.write_text(campus_internet(include_noc_permission=False))
        assert main([str(path), "--check"]) == 1
        assert "INCONSISTENT" in capsys.readouterr().out

    def test_clpr_engine(self, paper_file, capsys):
        assert main([str(paper_file), "--check", "--engine", "clpr"]) == 0


class TestOutput:
    def test_consistency_facts_to_stdout(self, paper_file, capsys):
        assert main([str(paper_file), "--output", "consistency"]) == 0
        assert "proc_supports(snmpdReadOnly" in capsys.readouterr().out

    def test_snmpd_output(self, paper_file, capsys):
        assert main([str(paper_file), "--output", "BartsSnmpd"]) == 0
        assert "snmpd.conf for romano" in capsys.readouterr().out

    def test_ship_dir(self, paper_file, tmp_path, capsys):
        spool = tmp_path / "spool"
        assert (
            main([str(paper_file), "--output", "BartsSnmpd", "--ship-dir", str(spool)])
            == 0
        )
        assert (spool / "romano.cs.wisc.edu.conf").exists()
        assert "shipped" in capsys.readouterr().out

    def test_mail_dir(self, paper_file, tmp_path, capsys):
        spool = tmp_path / "mail"
        assert (
            main([str(paper_file), "--output", "BartsSnmpd", "--mail-dir", str(spool)])
            == 0
        )
        assert list(spool.glob("msg-*.eml"))

    def test_unknown_tag(self, paper_file, capsys):
        assert main([str(paper_file), "--output", "bogus"]) == 2
        assert "no output actions" in capsys.readouterr().err


class TestFormatAndLint:
    def test_format_round_trips(self, paper_file, capsys, tmp_path):
        assert main([str(paper_file), "--format"]) == 0
        rendered = capsys.readouterr().out
        assert rendered.startswith("type ipAddrTable ::=")
        # The formatted output recompiles to the same counts.
        reformatted = tmp_path / "fmt.nmsl"
        reformatted.write_text(rendered)
        assert main([str(reformatted)]) == 0

    def test_list_tags(self, paper_file, capsys):
        assert main([str(paper_file), "--list-tags"]) == 0
        out = capsys.readouterr().out.split()
        assert {"consistency", "BartsSnmpd", "acl-table", "osi"} <= set(out)

    def test_lint(self, tmp_path, capsys):
        spec = tmp_path / "spec.nmsl"
        spec.write_text(
            "process ghost ::= supports mgmt.mib; end process ghost."
        )
        assert main([str(spec), "--lint"]) == 0
        assert "[unused-process] ghost" in capsys.readouterr().out

    def test_capacity_flag(self, paper_file, capsys):
        assert main([str(paper_file), "--check", "--capacity"]) == 0


class TestDiffAgainst:
    def test_breaking_change_flagged(self, tmp_path, capsys):
        old = tmp_path / "old.nmsl"
        old.write_text(campus_internet())
        new = tmp_path / "new.nmsl"
        new.write_text(campus_internet(noc_frequency_minutes=1.0))
        assert main([str(new), "--diff-against", str(old)]) == 1
        out = capsys.readouterr().out
        assert "changed process nocMonitor" in out
        assert "introduced:" in out

    def test_fixing_change_passes(self, tmp_path, capsys):
        old = tmp_path / "old.nmsl"
        old.write_text(campus_internet(include_noc_permission=False))
        new = tmp_path / "new.nmsl"
        new.write_text(campus_internet())
        assert main([str(new), "--diff-against", str(old)]) == 0
        out = capsys.readouterr().out
        assert "fixed:" in out

    def test_no_change(self, tmp_path, capsys):
        old = tmp_path / "old.nmsl"
        old.write_text(campus_internet())
        new = tmp_path / "new.nmsl"
        new.write_text(campus_internet())
        assert main([str(new), "--diff-against", str(old)]) == 0
        assert "no changes" in capsys.readouterr().out


class TestRollout:
    def test_clean_rollout_exits_zero(self, paper_file, capsys):
        assert main(["rollout", str(paper_file)]) == 0
        out = capsys.readouterr().out
        assert "committed" in out
        assert "romano.cs.wisc.edu" in out

    def test_json_report(self, paper_file, capsys):
        import json

        assert main(["rollout", str(paper_file), "--report", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["dead_letter"] == []
        assert set(report["elements"]) == {
            "romano.cs.wisc.edu",
            "cs.wisc.edu",
        }
        assert report["outcomes"] == {"committed": 2}

    def test_report_file_written(self, paper_file, tmp_path, capsys):
        import json

        out_path = tmp_path / "report.json"
        assert (
            main(["rollout", str(paper_file), "--report-file", str(out_path)])
            == 0
        )
        assert json.loads(out_path.read_text())["dead_letter"] == []

    def test_wedged_element_dead_letters_and_exits_one(
        self, paper_file, capsys
    ):
        assert (
            main(
                [
                    "rollout",
                    str(paper_file),
                    "--max-attempts",
                    "2",
                    "--chaos-wedge",
                    "romano.cs.wisc.edu",
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "dead letter" in out
        assert "romano.cs.wisc.edu" in out

    def test_rollout_is_deterministic_per_seed(self, paper_file, capsys):
        args = [
            "rollout",
            str(paper_file),
            "--report",
            "json",
            "--chaos-loss",
            "0.2",
            "--seed",
            "9",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_compile_failure_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.nmsl"
        bad.write_text("process broken ::= supports")
        assert main(["rollout", str(bad)]) == 2


class TestRolloutJournal:
    def test_crash_then_resume_completes_campaign(
        self, paper_file, tmp_path, capsys
    ):
        journal = tmp_path / "campaign.jsonl"
        assert (
            main(
                [
                    "rollout",
                    str(paper_file),
                    "--journal",
                    str(journal),
                    "--chaos-crash-coordinator",
                    "9",
                ]
            )
            == 2
        )
        assert "coordinator killed" in capsys.readouterr().err
        assert journal.exists()
        assert (
            main(
                ["rollout", str(paper_file), "--journal", str(journal), "--resume"]
            )
            == 0
        )
        assert "2/2 committed" in capsys.readouterr().out

    def test_resume_without_journal_is_usage_error(self, paper_file, capsys):
        assert main(["rollout", str(paper_file), "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_fresh_run_truncates_stale_journal(
        self, paper_file, tmp_path, capsys
    ):
        import json

        journal = tmp_path / "campaign.jsonl"
        for _ in range(2):
            assert (
                main(["rollout", str(paper_file), "--journal", str(journal)])
                == 0
            )
            capsys.readouterr()
        records = [
            json.loads(line)
            for line in journal.read_text().splitlines()
            if line
        ]
        assert sum(1 for r in records if r["type"] == "campaign") == 1
        assert records[-1]["type"] == "end"


class TestHeal:
    def test_clean_network_converges_in_one_round(self, paper_file, capsys):
        assert (
            main(["heal", str(paper_file), "--install", "--rounds", "3"]) == 0
        )
        out = capsys.readouterr().out
        assert "converged after 1 round(s)" in out

    def test_corrupt_store_detected_and_repaired(self, paper_file, capsys):
        assert (
            main(
                [
                    "heal",
                    str(paper_file),
                    "--install",
                    "--rounds",
                    "8",
                    "--chaos-corrupt-store",
                    "romano.cs.wisc.edu:0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "digest-mismatch" in out
        assert "1 repaired" in out

    def test_unconverged_drift_exits_one(self, paper_file, capsys):
        # A permanently dead element with an absurdly patient breaker
        # stays unreachable (never quarantined) past the round budget.
        assert (
            main(
                [
                    "heal",
                    str(paper_file),
                    "--install",
                    "--rounds",
                    "2",
                    "--chaos-crash",
                    "romano.cs.wisc.edu:0",
                    "--failure-threshold",
                    "99",
                ]
            )
            == 1
        )
        assert "unreachable" in capsys.readouterr().out

    def test_json_report(self, paper_file, capsys):
        import json

        assert (
            main(
                [
                    "heal",
                    str(paper_file),
                    "--install",
                    "--rounds",
                    "3",
                    "--report",
                    "json",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["converged"] is True
        assert report["rounds"]


class TestVerifyRuntime:
    @pytest.fixture
    def campus_file(self, tmp_path):
        path = tmp_path / "campus.nmsl"
        path.write_text(campus_internet())
        return path

    def test_adherent_network_exits_zero(self, campus_file, capsys):
        assert (
            main(["verify-runtime", str(campus_file), "--duration", "1800"])
            == 0
        )
        assert "adheres" in capsys.readouterr().out

    def test_misbehaving_manager_exits_one(self, campus_file, capsys):
        assert (
            main(
                [
                    "verify-runtime",
                    str(campus_file),
                    "--duration",
                    "1800",
                    "--misbehave",
                    "nocMonitor@noc-domain#1:5",
                ]
            )
            == 1
        )
        assert "VIOLATES" in capsys.readouterr().out

    def test_json_format(self, campus_file, capsys):
        import json

        assert (
            main(
                [
                    "verify-runtime",
                    str(campus_file),
                    "--duration",
                    "1800",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["adheres"] is True
        assert payload["observed_queries"] > 0

    def test_malformed_misbehave_exits_two(self, campus_file, capsys):
        assert (
            main(
                [
                    "verify-runtime",
                    str(campus_file),
                    "--misbehave",
                    "noc:fast",
                ]
            )
            == 2
        )
        assert "misbehave" in capsys.readouterr().err

    def test_compile_failure_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.nmsl"
        bad.write_text("process broken ::= supports")
        assert main(["verify-runtime", str(bad)]) == 2


class TestExtensions:
    def test_extension_file(self, tmp_path, capsys):
        ext = tmp_path / "billing.nmslx"
        ext.write_text(BILLING_EXTENSION)
        spec = tmp_path / "spec.nmsl"
        spec.write_text(
            "process p ::= supports mgmt.mib; billing 5; end process p."
        )
        assert (
            main([str(spec), "--extensions", str(ext), "--output", "acct-report"])
            == 0
        )
        assert "charge p 5" in capsys.readouterr().out


class TestKeyboardInterrupt:
    def test_ctrl_c_exits_130_without_traceback(
        self, paper_file, capsys, monkeypatch
    ):
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_run", interrupted)
        assert main([str(paper_file)]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "Traceback" not in err

    def test_ctrl_c_mid_rollout_flushes_journal(
        self, tmp_path, capsys, monkeypatch
    ):
        """The journal's finally-block close runs before the 130 exit."""
        from repro.rollout import journal as journal_module

        spec = tmp_path / "paper.nmsl"
        spec.write_text(PAPER_SPEC_TEXT)
        journal_path = tmp_path / "rollout.jsonl"
        closed = []
        original_close = journal_module.RolloutJournal.close

        def tracking_close(self):
            closed.append(True)
            return original_close(self)

        monkeypatch.setattr(
            journal_module.RolloutJournal, "close", tracking_close
        )

        import repro.rollout.coordinator as coordinator_module

        def interrupted_run(self):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            coordinator_module.RolloutCoordinator, "run", interrupted_run
        )
        code = main(
            ["rollout", str(spec), "--journal", str(journal_path)]
        )
        assert code == 130
        assert closed, "journal must be flushed on Ctrl-C"
