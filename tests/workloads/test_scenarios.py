"""Tests for the canned scenarios."""

import pytest

from repro.consistency.checker import ConsistencyChecker
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.workloads.paper import PAPER_SPEC_TEXT
from repro.workloads.scenarios import campus_internet, new_organization


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler(CompilerOptions(register_codegen=False))


class TestPaperText:
    def test_compiles_clean(self, compiler):
        result = compiler.compile(PAPER_SPEC_TEXT)
        assert result.ok
        assert result.specification.counts() == {
            "types": 2,
            "processes": 2,
            "systems": 2,
            "domains": 1,
        }


class TestCampus:
    def test_default_consistent(self, compiler):
        result = compiler.compile(campus_internet())
        assert ConsistencyChecker(result.specification, compiler.tree).check().consistent

    def test_nested_domains(self, compiler):
        result = compiler.compile(campus_internet())
        campus = result.specification.domains["campus"]
        assert set(campus.subdomains) == {"cs-domain", "engr-domain", "noc-domain"}

    def test_knobs_are_independent(self, compiler):
        broken_both = compiler.compile(
            campus_internet(include_noc_permission=False, noc_frequency_minutes=1)
        )
        outcome = ConsistencyChecker(
            broken_both.specification, compiler.tree
        ).check()
        assert len(outcome.inconsistencies) >= 3


class TestNewOrganization:
    def test_merges_with_campus(self, compiler):
        result = compiler.compile(campus_internet() + new_organization())
        assert result.ok
        assert "newdept-domain" in result.specification.domains

    def test_combined_consistent_at_default(self, compiler):
        result = compiler.compile(campus_internet() + new_organization())
        assert ConsistencyChecker(result.specification, compiler.tree).check().consistent

    def test_combined_inconsistent_when_fast(self, compiler):
        result = compiler.compile(
            campus_internet() + new_organization(query_minutes=1)
        )
        outcome = ConsistencyChecker(result.specification, compiler.tree).check()
        assert not outcome.consistent
