"""Tests for the synthetic internet generator."""

import pytest

from repro.consistency.checker import ConsistencyChecker
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.workloads.generator import InternetParameters, SyntheticInternet


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler(CompilerOptions(register_codegen=False))


class TestShape:
    def test_counts(self, compiler):
        parameters = InternetParameters(n_domains=4, systems_per_domain=3)
        spec = SyntheticInternet(parameters).specification()
        counts = spec.counts()
        assert counts["systems"] == 12
        assert counts["domains"] == 4
        assert counts["processes"] == 4  # stdAgent + 3 poller kinds

    def test_text_compiles_to_same_counts(self, compiler):
        parameters = InternetParameters(n_domains=3, systems_per_domain=2)
        internet = SyntheticInternet(parameters)
        result = compiler.compile(internet.text())
        assert result.specification.counts() == internet.specification().counts()

    def test_deterministic(self):
        parameters = InternetParameters(n_domains=2, systems_per_domain=2, seed=7)
        assert (
            SyntheticInternet(parameters).text()
            == SyntheticInternet(parameters).text()
        )

    def test_cross_domain_targets(self):
        parameters = InternetParameters(n_domains=3, systems_per_domain=2)
        internet = SyntheticInternet(parameters)
        spec = internet.specification()
        invocation = spec.domains["dom00000"].processes[0]
        assert invocation.args == ("host00000.dom00001.net",)


class TestVerdicts:
    def test_clean_internet_consistent(self, compiler):
        spec = SyntheticInternet(
            InternetParameters(n_domains=3, systems_per_domain=2)
        ).specification()
        assert ConsistencyChecker(spec, compiler.tree).check().consistent

    def test_expected_counts_with_all_injections(self, compiler):
        parameters = InternetParameters(
            n_domains=5,
            systems_per_domain=2,
            applications_per_domain=2,
            silent_domains=(2,),
            fast_pollers=(0, 7),
            egp_pollers=(4,),
        )
        internet = SyntheticInternet(parameters)
        outcome = ConsistencyChecker(
            internet.specification(), compiler.tree
        ).check()
        assert len(outcome.inconsistencies) == (
            internet.expected_inconsistent_references()
        )

    def test_silent_domain_count(self):
        parameters = InternetParameters(
            n_domains=4, systems_per_domain=1, applications_per_domain=3,
            silent_domains=(1,),
        )
        # Domain 0's three pollers target domain 1: three failures.
        assert SyntheticInternet(parameters).expected_inconsistent_references() == 3
