"""Tests for nested (umbrella) domain generation."""

import pytest

from repro.consistency.checker import ConsistencyChecker
from repro.consistency.facts import FactGenerator
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.workloads.generator import InternetParameters, SyntheticInternet


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler(CompilerOptions(register_codegen=False))


class TestStructure:
    def test_umbrella_counts(self):
        parameters = InternetParameters(
            n_domains=8, systems_per_domain=1, umbrella_fanout=3
        )
        spec = SyntheticInternet(parameters).specification()
        # 8 base + ceil(8/3)=3 regions + 1 root.
        assert spec.counts()["domains"] == 12
        assert spec.domains["root"].subdomains == (
            "region0000",
            "region0001",
            "region0002",
        )

    def test_no_umbrellas_by_default(self):
        spec = SyntheticInternet(
            InternetParameters(n_domains=4, systems_per_domain=1)
        ).specification()
        assert spec.counts()["domains"] == 4

    def test_text_and_model_agree(self, compiler):
        internet = SyntheticInternet(
            InternetParameters(n_domains=5, systems_per_domain=1, umbrella_fanout=2)
        )
        from_text = compiler.compile(internet.text()).specification
        assert from_text.counts() == internet.specification().counts()

    def test_containment_chain_depth(self, compiler):
        internet = SyntheticInternet(
            InternetParameters(n_domains=4, systems_per_domain=1, umbrella_fanout=2)
        )
        facts = FactGenerator(internet.specification(), compiler.tree).generate()
        agent = facts.instances_on_system(internet.system_name(0, 0))[0]
        # instance -> dom -> region -> root: three domains above it.
        assert len(facts.domains_of_instance(agent)) == 3
        # ... but only one immediate domain.
        assert facts.direct_domains_of_instance(agent) == (
            internet.domain_name(0),
        )


class TestSemantics:
    def test_umbrellas_do_not_change_verdicts(self, compiler):
        flat = InternetParameters(
            n_domains=6, systems_per_domain=2, silent_domains=(2,), fast_pollers=(1,)
        )
        nested = InternetParameters(
            n_domains=6,
            systems_per_domain=2,
            silent_domains=(2,),
            fast_pollers=(1,),
            umbrella_fanout=2,
        )
        flat_outcome = ConsistencyChecker(
            SyntheticInternet(flat).specification(), compiler.tree
        ).check()
        nested_outcome = ConsistencyChecker(
            SyntheticInternet(nested).specification(), compiler.tree
        ).check()
        assert flat_outcome.consistent == nested_outcome.consistent
        assert len(flat_outcome.inconsistencies) == len(
            nested_outcome.inconsistencies
        )
