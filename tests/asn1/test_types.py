"""Tests for the Asn1Module registry and value validation."""

import pytest

from repro.asn1.nodes import IntegerType, SequenceType, TypeRef, named_fields
from repro.asn1.parser import parse_type
from repro.asn1.types import Asn1Module
from repro.errors import Asn1Error


@pytest.fixture
def module():
    return Asn1Module()


class TestRegistry:
    def test_standard_types_predeclared(self, module):
        for name in ("IpAddress", "Counter", "Gauge", "TimeTicks", "Opaque"):
            assert name in module

    def test_define_and_lookup(self, module):
        module.define("Port", IntegerType(minimum=0, maximum=65535))
        assert module.lookup("Port").maximum == 65535

    def test_define_text(self, module):
        module.define_text("Pair", "SEQUENCE { a INTEGER, b INTEGER }")
        assert isinstance(module.lookup("Pair"), SequenceType)

    def test_redefinition_rejected(self, module):
        module.define("X", IntegerType())
        with pytest.raises(Asn1Error):
            module.define("X", IntegerType())

    def test_redefinition_with_replace(self, module):
        module.define("X", IntegerType())
        module.define("X", IntegerType(minimum=1), replace=True)
        assert module.lookup("X").minimum == 1

    def test_unknown_lookup_raises(self, module):
        with pytest.raises(Asn1Error):
            module.lookup("Nope")

    def test_empty_module(self):
        bare = Asn1Module(include_standard=False)
        assert len(bare) == 0


class TestResolution:
    def test_resolves_reference_chain(self, module):
        module.define("A", IntegerType())
        module.define("B", TypeRef(name="A"))
        module.define("C", TypeRef(name="B"))
        assert module.resolve(TypeRef(name="C")) == IntegerType()

    def test_detects_cycle(self, module):
        module.define("A", TypeRef(name="B"))
        module.define("B", TypeRef(name="A"))
        with pytest.raises(Asn1Error, match="circular"):
            module.resolve(TypeRef(name="A"))

    def test_undefined_references(self, module):
        module.define("T", parse_type("SEQUENCE { x Missing, y IpAddress }"))
        assert module.undefined_references(["T"]) == {"Missing"}


class TestValidation:
    def test_integer_ok(self, module):
        module.validate(5, IntegerType())

    def test_integer_range_violation(self, module):
        with pytest.raises(Asn1Error, match="above maximum"):
            module.validate(300, IntegerType(minimum=0, maximum=255))

    def test_bool_is_not_integer(self, module):
        with pytest.raises(Asn1Error):
            module.validate(True, IntegerType())

    def test_named_number_by_name(self, module):
        module.validate("up", IntegerType(named_values=(("up", 1),)))

    def test_unknown_named_number(self, module):
        with pytest.raises(Asn1Error):
            module.validate("sideways", IntegerType(named_values=(("up", 1),)))

    def test_octets_accepts_str_and_bytes(self, module):
        module.validate("hello", parse_type("OCTET STRING"))
        module.validate(b"hello", parse_type("OCTET STRING"))

    def test_octets_size_violation(self, module):
        with pytest.raises(Asn1Error, match="size"):
            module.validate(b"toolong", parse_type("OCTET STRING (SIZE (4))"))

    def test_ip_address_size_enforced(self, module):
        module.validate(b"\x01\x02\x03\x04", module.lookup("IpAddress"))
        with pytest.raises(Asn1Error):
            module.validate(b"\x01\x02\x03", module.lookup("IpAddress"))

    def test_null(self, module):
        module.validate(None, parse_type("NULL"))
        with pytest.raises(Asn1Error):
            module.validate(0, parse_type("NULL"))

    def test_oid_value(self, module):
        module.validate((1, 3, 6, 1), parse_type("OBJECT IDENTIFIER"))
        with pytest.raises(Asn1Error):
            module.validate((1,), parse_type("OBJECT IDENTIFIER"))

    def test_sequence_value(self, module):
        module.define("Pair", parse_type("SEQUENCE { a INTEGER, b INTEGER }"))
        module.validate({"a": 1, "b": 2}, TypeRef(name="Pair"))

    def test_sequence_missing_field(self, module):
        sequence = parse_type("SEQUENCE { a INTEGER, b INTEGER }")
        with pytest.raises(Asn1Error, match="missing field 'b'"):
            module.validate({"a": 1}, sequence)

    def test_sequence_optional_field_may_be_absent(self, module):
        sequence = parse_type("SEQUENCE { a INTEGER, b INTEGER OPTIONAL }")
        module.validate({"a": 1}, sequence)

    def test_sequence_unknown_field(self, module):
        sequence = parse_type("SEQUENCE { a INTEGER }")
        with pytest.raises(Asn1Error, match="unknown fields"):
            module.validate({"a": 1, "z": 2}, sequence)

    def test_sequence_of(self, module):
        module.validate([1, 2, 3], parse_type("SEQUENCE OF INTEGER"))
        with pytest.raises(Asn1Error):
            module.validate([1, "x"], parse_type("SEQUENCE OF INTEGER"))

    def test_choice(self, module):
        choice = parse_type("CHOICE { num INTEGER, str OCTET STRING }")
        module.validate(("num", 7), choice)
        with pytest.raises(Asn1Error):
            module.validate(("other", 7), choice)

    def test_error_names_path(self, module):
        sequence = parse_type("SEQUENCE { addr IpAddress }")
        with pytest.raises(Asn1Error, match="value.addr"):
            module.validate({"addr": b"xx"}, sequence)

    def test_paper_ip_addr_entry_value(self, module):
        module.define_text(
            "IpAddrEntry",
            """SEQUENCE (
                ipAdEntAddr IpAddress,
                ipAdEntIfIndex INTEGER,
                ipAdEntNetMask IpAddress,
                ipAdEntBcastAddr INTEGER
            )""",
        )
        module.validate(
            {
                "ipAdEntAddr": b"\x80\x69\x01\x01",
                "ipAdEntIfIndex": 1,
                "ipAdEntNetMask": b"\xff\xff\xff\x00",
                "ipAdEntBcastAddr": 1,
            },
            TypeRef(name="IpAddrEntry"),
        )
