"""Tests for the ASN.1 tokenizer."""

import pytest

from repro.asn1.lexer import EOF, IDENT, NUMBER, PUNCT, TYPEREF, tokenize
from repro.errors import Asn1Error


def kinds(text):
    return [token.kind for token in tokenize(text)]


def texts(text):
    return [token.text for token in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == EOF

    def test_whitespace_only(self):
        assert kinds("  \n\t ") == [EOF]

    def test_typeref_starts_uppercase(self):
        (token, _eof) = tokenize("IpAddress")
        assert token.kind == TYPEREF
        assert token.text == "IpAddress"

    def test_ident_starts_lowercase(self):
        (token, _eof) = tokenize("ipAdEntAddr")
        assert token.kind == IDENT

    def test_number(self):
        (token, _eof) = tokenize("12345")
        assert token.kind == NUMBER
        assert token.text == "12345"

    def test_negative_number(self):
        (token, _eof) = tokenize("-7")
        assert token.kind == NUMBER
        assert token.text == "-7"

    def test_assignment_operator(self):
        (token, _eof) = tokenize("::=")
        assert token.kind == PUNCT
        assert token.text == "::="

    def test_range_operator(self):
        assert texts("(0..255)") == ["(", "0", "..", "255", ")"]

    def test_hyphenated_identifier(self):
        (token, _eof) = tokenize("ethernet-csmacd")
        assert token.text == "ethernet-csmacd"

    def test_punctuation_characters(self):
        assert texts("{},;|[]") == ["{", "}", ",", ";", "|", "[", "]"]

    def test_unexpected_character_raises(self):
        with pytest.raises(Asn1Error):
            tokenize("@")


class TestComments:
    def test_comment_to_end_of_line(self):
        assert texts("INTEGER -- a counter\n42") == ["INTEGER", "42"]

    def test_comment_closed_by_double_dash(self):
        assert texts("INTEGER -- inline -- 42") == ["INTEGER", "42"]

    def test_comment_at_end_of_input(self):
        assert texts("INTEGER -- trailing") == ["INTEGER"]


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("A\n  B")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_filename_propagates(self):
        (token, _eof) = tokenize("X", filename="spec.asn1")
        assert token.location.filename == "spec.asn1"

    def test_error_carries_location(self):
        with pytest.raises(Asn1Error) as info:
            tokenize("INTEGER\n  @")
        assert info.value.location.line == 2


class TestFullSequenceText:
    def test_paper_figure_42_body_tokenizes(self):
        body = """
        SEQUENCE (
            ipAdEntAddr IpAddress,
            ipAdEntIfIndex INTEGER,
            ipAdEntNetMask IpAddress,
            ipAdEntBcastAddr INTEGER
        )
        """
        words = texts(body)
        assert words[0] == "SEQUENCE"
        assert "ipAdEntAddr" in words
        assert words.count(",") == 3
