"""Tests for the ASN.1 subset parser."""

import pytest

from repro.asn1.nodes import (
    ChoiceType,
    IntegerType,
    NullType,
    ObjectIdentifierType,
    OctetStringType,
    SequenceOfType,
    SequenceType,
    TaggedType,
    TypeRef,
    references,
)
from repro.asn1.parser import parse_assignments, parse_type
from repro.errors import Asn1Error


class TestPrimitives:
    def test_integer(self):
        assert parse_type("INTEGER") == IntegerType()

    def test_integer_with_range(self):
        parsed = parse_type("INTEGER (0..255)")
        assert parsed.minimum == 0
        assert parsed.maximum == 255

    def test_integer_with_named_numbers(self):
        parsed = parse_type("INTEGER { up(1), down(2), testing(3) }")
        assert parsed.named_values == (("up", 1), ("down", 2), ("testing", 3))
        assert parsed.name_for(2) == "down"
        assert parsed.value_for("testing") == 3

    def test_octet_string(self):
        assert parse_type("OCTET STRING") == OctetStringType()

    def test_octet_string_with_size(self):
        parsed = parse_type("OCTET STRING (SIZE (4))")
        assert parsed.min_size == 4
        assert parsed.max_size == 4

    def test_octet_string_with_size_range(self):
        parsed = parse_type("OCTET STRING (SIZE (0..255))")
        assert (parsed.min_size, parsed.max_size) == (0, 255)

    def test_null(self):
        assert parse_type("NULL") == NullType()

    def test_object_identifier(self):
        assert parse_type("OBJECT IDENTIFIER") == ObjectIdentifierType()

    def test_type_reference(self):
        assert parse_type("IpAddress") == TypeRef(name="IpAddress")


class TestConstructed:
    def test_sequence_of_uppercase(self):
        parsed = parse_type("SEQUENCE OF INTEGER")
        assert isinstance(parsed, SequenceOfType)
        assert parsed.element == IntegerType()

    def test_sequence_of_lowercase_as_in_paper(self):
        parsed = parse_type("SEQUENCE of IpAddrEntry")
        assert isinstance(parsed, SequenceOfType)
        assert parsed.element == TypeRef(name="IpAddrEntry")

    def test_sequence_with_braces(self):
        parsed = parse_type("SEQUENCE { a INTEGER, b OCTET STRING }")
        assert isinstance(parsed, SequenceType)
        assert parsed.field_names() == ("a", "b")

    def test_sequence_with_parens_as_in_paper(self):
        body = """SEQUENCE (
            ipAdEntAddr IpAddress,
            ipAdEntIfIndex INTEGER,
            ipAdEntNetMask IpAddress,
            ipAdEntBcastAddr INTEGER
        )"""
        parsed = parse_type(body)
        assert parsed.field_names() == (
            "ipAdEntAddr",
            "ipAdEntIfIndex",
            "ipAdEntNetMask",
            "ipAdEntBcastAddr",
        )
        assert parsed.field_named("ipAdEntAddr").type == TypeRef(name="IpAddress")

    def test_empty_sequence(self):
        assert parse_type("SEQUENCE { }") == SequenceType()

    def test_optional_field(self):
        parsed = parse_type("SEQUENCE { a INTEGER OPTIONAL }")
        assert parsed.fields[0].optional

    def test_nested_sequence(self):
        parsed = parse_type("SEQUENCE { inner SEQUENCE { x INTEGER } }")
        inner = parsed.field_named("inner").type
        assert isinstance(inner, SequenceType)

    def test_choice(self):
        parsed = parse_type("CHOICE { num INTEGER, str OCTET STRING }")
        assert isinstance(parsed, ChoiceType)
        assert parsed.alternative_named("num").type == IntegerType()


class TestTagged:
    def test_application_implicit(self):
        parsed = parse_type("[APPLICATION 0] IMPLICIT OCTET STRING (SIZE (4))")
        assert isinstance(parsed, TaggedType)
        assert parsed.tag_class == "APPLICATION"
        assert parsed.tag_number == 0
        assert parsed.implicit
        assert parsed.inner.min_size == 4

    def test_context_default_class(self):
        parsed = parse_type("[3] INTEGER")
        assert parsed.tag_class == "CONTEXT"
        assert parsed.tag_number == 3

    def test_explicit(self):
        parsed = parse_type("[1] EXPLICIT INTEGER")
        assert not parsed.implicit


class TestErrors:
    def test_trailing_garbage_rejected(self):
        with pytest.raises(Asn1Error):
            parse_type("INTEGER INTEGER")

    def test_missing_close_brace(self):
        with pytest.raises(Asn1Error):
            parse_type("SEQUENCE { a INTEGER")

    def test_mismatched_delimiters(self):
        with pytest.raises(Asn1Error):
            parse_type("SEQUENCE { a INTEGER )")

    def test_lowercase_not_a_type(self):
        with pytest.raises(Asn1Error):
            parse_type("integer")

    def test_trailing_semicolon_allowed(self):
        assert parse_type("INTEGER ;") == IntegerType()


class TestAssignments:
    def test_single_assignment(self):
        parsed = parse_assignments("Ip ::= OCTET STRING")
        assert parsed == {"Ip": OctetStringType()}

    def test_multiple_assignments(self):
        parsed = parse_assignments(
            "A ::= INTEGER; B ::= SEQUENCE OF A; C ::= NULL"
        )
        assert set(parsed) == {"A", "B", "C"}
        assert parsed["B"].element == TypeRef(name="A")


class TestReferences:
    def test_collects_nested_references(self):
        parsed = parse_type("SEQUENCE { a IpAddress, b SEQUENCE OF Foo }")
        assert set(references(parsed)) == {"IpAddress", "Foo"}
