"""Tests for ASN.1 rendering (parse/render round-trips)."""

import pytest
from hypothesis import given, strategies as st

from repro.asn1.nodes import (
    ChoiceType,
    IntegerType,
    NamedField,
    NullType,
    ObjectIdentifierType,
    OctetStringType,
    SequenceOfType,
    SequenceType,
    TaggedType,
    TypeRef,
)
from repro.asn1.parser import parse_type
from repro.asn1.render import render_type


def roundtrip(type_):
    return parse_type(render_type(type_))


class TestRendering:
    def test_primitives(self):
        assert render_type(IntegerType()) == "INTEGER"
        assert render_type(OctetStringType()) == "OCTET STRING"
        assert render_type(NullType()) == "NULL"
        assert render_type(ObjectIdentifierType()) == "OBJECT IDENTIFIER"

    def test_integer_range(self):
        assert render_type(IntegerType(minimum=0, maximum=255)) == "INTEGER (0..255)"

    def test_integer_named_values(self):
        rendered = render_type(IntegerType(named_values=(("up", 1), ("down", 2))))
        assert rendered == "INTEGER { up(1), down(2) }"

    def test_octets_size(self):
        assert render_type(OctetStringType(min_size=4, max_size=4)) == (
            "OCTET STRING (SIZE (4))"
        )
        assert render_type(OctetStringType(min_size=0, max_size=255)) == (
            "OCTET STRING (SIZE (0..255))"
        )

    def test_tagged(self):
        tagged = TaggedType(tag_class="APPLICATION", tag_number=0,
                            inner=OctetStringType(min_size=4, max_size=4))
        assert render_type(tagged) == (
            "[APPLICATION 0] IMPLICIT OCTET STRING (SIZE (4))"
        )

    def test_sequence_layout(self):
        seq = SequenceType(
            fields=(
                NamedField("a", IntegerType()),
                NamedField("b", TypeRef("IpAddress"), optional=True),
            )
        )
        rendered = render_type(seq)
        assert rendered.startswith("SEQUENCE {")
        assert "a INTEGER," in rendered
        assert "b IpAddress OPTIONAL" in rendered

    def test_empty_sequence(self):
        assert render_type(SequenceType()) == "SEQUENCE { }"


class TestRoundTrips:
    CASES = [
        "INTEGER",
        "INTEGER { up(1), down(2), testing(3) }",
        "INTEGER (0..4294967295)",
        "OCTET STRING (SIZE (4))",
        "NULL",
        "OBJECT IDENTIFIER",
        "SEQUENCE OF INTEGER",
        "SEQUENCE { a INTEGER, b OCTET STRING, c Foo OPTIONAL }",
        "CHOICE { num INTEGER, str OCTET STRING }",
        "[APPLICATION 1] IMPLICIT INTEGER (0..100)",
        "[2] EXPLICIT SEQUENCE { x INTEGER }",
        "SEQUENCE { outer SEQUENCE { inner SEQUENCE OF IpAddress } }",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_render_parse(self, text):
        parsed = parse_type(text)
        assert roundtrip(parsed) == parsed

    def test_paper_figure_42(self):
        parsed = parse_type(
            """SEQUENCE (
                ipAdEntAddr IpAddress,
                ipAdEntIfIndex INTEGER,
                ipAdEntNetMask IpAddress,
                ipAdEntBcastAddr INTEGER
            )"""
        )
        # Renders in standard spelling but round-trips structurally.
        assert roundtrip(parsed) == parsed
        assert "SEQUENCE {" in render_type(parsed)


types_strategy = st.recursive(
    st.one_of(
        st.just(IntegerType()),
        st.just(OctetStringType()),
        st.just(NullType()),
        st.just(ObjectIdentifierType()),
        st.from_regex(r"[A-Z][a-zA-Z0-9]{0,8}", fullmatch=True).map(
            lambda name: TypeRef(name)
        ),
        st.tuples(st.integers(0, 100), st.integers(0, 100)).map(
            lambda pair: IntegerType(
                minimum=min(pair), maximum=max(pair)
            )
        ),
    ),
    lambda children: st.one_of(
        children.map(lambda t: SequenceOfType(element=t)),
        st.lists(
            st.tuples(
                st.from_regex(r"[a-z][a-zA-Z0-9]{0,6}", fullmatch=True), children
            ),
            min_size=1,
            max_size=3,
            unique_by=lambda pair: pair[0],
        ).map(
            lambda pairs: SequenceType(
                fields=tuple(NamedField(n, t) for n, t in pairs)
            )
        ),
    ),
    max_leaves=6,
)


class TestPropertyBased:
    @given(types_strategy)
    def test_arbitrary_types_round_trip(self, type_):
        assert roundtrip(type_) == type_
