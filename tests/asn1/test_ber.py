"""Tests for the BER encoder/decoder, including property-based round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.asn1.ber import Tag, TagClass, ber_decode, ber_encode
from repro.asn1.nodes import (
    ChoiceType,
    IntegerType,
    NamedField,
    NullType,
    ObjectIdentifierType,
    OctetStringType,
    SequenceOfType,
    SequenceType,
    TaggedType,
    TypeRef,
)
from repro.asn1.types import Asn1Module
from repro.errors import BerError

INT = IntegerType()
OCTETS = OctetStringType()
OID_T = ObjectIdentifierType()


def roundtrip(value, type_, module=None):
    return ber_decode(ber_encode(value, type_, module), type_, module)


class TestKnownEncodings:
    """Spot-check against octet strings computed from the BER definition."""

    def test_integer_zero(self):
        assert ber_encode(0, INT) == b"\x02\x01\x00"

    def test_integer_positive(self):
        assert ber_encode(127, INT) == b"\x02\x01\x7f"
        assert ber_encode(128, INT) == b"\x02\x02\x00\x80"

    def test_integer_negative(self):
        assert ber_encode(-1, INT) == b"\x02\x01\xff"
        assert ber_encode(-129, INT) == b"\x02\x02\xff\x7f"

    def test_octet_string(self):
        assert ber_encode(b"hi", OCTETS) == b"\x04\x02hi"

    def test_null(self):
        assert ber_encode(None, NullType()) == b"\x05\x00"

    def test_oid_mib2_prefix(self):
        # 1.3.6.1.2.1 encodes as 2b 06 01 02 01.
        assert ber_encode((1, 3, 6, 1, 2, 1), OID_T) == b"\x06\x05\x2b\x06\x01\x02\x01"

    def test_oid_large_component_base128(self):
        encoded = ber_encode((1, 3, 840), OID_T)
        assert encoded == b"\x06\x03\x2b\x86\x48"

    def test_long_form_length(self):
        payload = b"x" * 200
        encoded = ber_encode(payload, OCTETS)
        assert encoded[:3] == b"\x04\x81\xc8"

    def test_implicit_application_tag(self):
        ip = TaggedType(tag_class="APPLICATION", tag_number=0, inner=OCTETS)
        assert ber_encode(b"\x0a\x00\x00\x01", ip) == b"\x40\x04\x0a\x00\x00\x01"

    def test_sequence_is_constructed(self):
        seq = SequenceType(fields=(NamedField("a", INT),))
        encoded = ber_encode({"a": 1}, seq)
        assert encoded[0] == 0x30


class TestRoundTrips:
    def test_sequence_roundtrip(self):
        seq = SequenceType(fields=(NamedField("a", INT), NamedField("b", OCTETS)))
        assert roundtrip({"a": 42, "b": b"net"}, seq) == {"a": 42, "b": b"net"}

    def test_sequence_of_roundtrip(self):
        assert roundtrip([1, 2, 3], SequenceOfType(element=INT)) == [1, 2, 3]

    def test_optional_field_absent(self):
        seq = SequenceType(
            fields=(NamedField("a", INT), NamedField("b", OCTETS, optional=True))
        )
        assert roundtrip({"a": 5}, seq) == {"a": 5}

    def test_explicit_tag_roundtrip(self):
        wrapped = TaggedType(tag_class="CONTEXT", tag_number=2, implicit=False, inner=INT)
        assert roundtrip(-5, wrapped) == -5

    def test_choice_roundtrip(self):
        choice = ChoiceType(
            alternatives=(NamedField("num", INT), NamedField("str", OCTETS))
        )
        assert roundtrip(("num", 9), choice) == ("num", 9)
        assert roundtrip(("str", b"x"), choice) == ("str", b"x")

    def test_typeref_through_module(self):
        module = Asn1Module()
        value = roundtrip(b"\x01\x02\x03\x04", TypeRef(name="IpAddress"), module)
        assert value == b"\x01\x02\x03\x04"

    def test_str_encoded_as_utf8(self):
        assert roundtrip("abc", OCTETS) == b"abc"


class TestErrors:
    def test_tag_mismatch(self):
        encoded = ber_encode(1, INT)
        with pytest.raises(BerError, match="tag mismatch"):
            ber_decode(encoded, OCTETS)

    def test_trailing_octets(self):
        with pytest.raises(BerError, match="trailing"):
            ber_decode(ber_encode(1, INT) + b"\x00", INT)

    def test_truncated_input(self):
        with pytest.raises(BerError):
            ber_decode(b"\x02\x05\x00", INT)

    def test_unresolved_reference_without_module(self):
        with pytest.raises(BerError, match="unresolved"):
            ber_encode(1, TypeRef(name="Counter"))

    def test_missing_sequence_field(self):
        seq = SequenceType(fields=(NamedField("a", INT),))
        with pytest.raises(BerError, match="missing"):
            ber_encode({}, seq)

    def test_bad_oid_prefix(self):
        with pytest.raises(BerError):
            ber_encode((5, 1), OID_T)

    def test_choice_with_unknown_tag(self):
        choice = ChoiceType(alternatives=(NamedField("num", INT),))
        with pytest.raises(BerError, match="no CHOICE alternative"):
            ber_decode(ber_encode(b"x", OCTETS), choice)

    def test_tag_identifier_octet_limit(self):
        with pytest.raises(BerError):
            Tag(TagClass.UNIVERSAL, False, 40).identifier_octet()


class TestPropertyBased:
    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_integer_roundtrip(self, value):
        assert roundtrip(value, INT) == value

    @given(st.binary(max_size=300))
    def test_octets_roundtrip(self, value):
        assert roundtrip(value, OCTETS) == value

    @given(
        st.tuples(
            st.integers(0, 2),
            st.integers(0, 39),
        ),
        st.lists(st.integers(0, 2**28), max_size=8),
    )
    def test_oid_roundtrip(self, prefix, rest):
        components = prefix + tuple(rest)
        assert roundtrip(components, OID_T) == components

    @given(st.lists(st.integers(-1000, 1000), max_size=20))
    def test_sequence_of_integers_roundtrip(self, values):
        assert roundtrip(values, SequenceOfType(element=INT)) == values

    @given(st.binary(max_size=64), st.integers(-100, 100))
    def test_nested_sequence_roundtrip(self, blob, number):
        inner = SequenceType(fields=(NamedField("n", INT),))
        outer = SequenceType(
            fields=(NamedField("data", OCTETS), NamedField("pair", inner))
        )
        value = {"data": blob, "pair": {"n": number}}
        assert roundtrip(value, outer) == value
