"""The health registry: statuses, auto-quarantine, operator release."""

from repro.heal import HealthRegistry, HealthStatus


def make(**overrides):
    kwargs = dict(
        elements=("a", "b"),
        failure_threshold=2,
        cooldown_s=10.0,
        quarantine_after=2,
    )
    kwargs.update(overrides)
    return HealthRegistry(**kwargs)


class TestStatuses:
    def test_fresh_elements_are_healthy(self):
        registry = make()
        assert registry.status("a") is HealthStatus.HEALTHY
        assert registry.allow("a", 0.0)

    def test_failures_degrade(self):
        registry = make()
        registry.note_failure("a", 1.0)
        assert registry.status("a") is HealthStatus.DEGRADED
        assert registry.status("b") is HealthStatus.HEALTHY
        assert registry.allow("a", 1.0)  # degraded is still contactable

    def test_success_restores_health(self):
        registry = make()
        registry.note_failure("a", 1.0)
        registry.note_success("a", 2.0)
        assert registry.status("a") is HealthStatus.HEALTHY

    def test_open_breaker_blocks_contact(self):
        registry = make()
        registry.note_failure("a", 1.0)
        registry.note_failure("a", 2.0)  # threshold 2 -> open
        assert registry.status("a") is HealthStatus.DEGRADED
        assert not registry.allow("a", 2.0)
        assert registry.allow("a", 12.0)  # cool-down elapsed -> half-open


class TestQuarantine:
    def trip_twice(self, registry, element):
        registry.note_failure(element, 1.0)
        registry.note_failure(element, 2.0)  # open #1
        assert registry.allow(element, 12.0)  # half-open probe
        registry.note_failure(element, 12.5)  # open #2 -> quarantine

    def test_auto_quarantine_after_repeated_opens(self):
        registry = make()
        self.trip_twice(registry, "a")
        assert registry.is_quarantined("a")
        assert registry.status("a") is HealthStatus.QUARANTINED
        assert registry.quarantined() == ["a"]
        assert not registry.allow("a", 1e9)  # no amount of waiting helps

    def test_manual_quarantine(self):
        registry = make()
        registry.quarantine("b")
        assert registry.is_quarantined("b")
        registry.quarantine("b")  # idempotent
        assert registry.quarantined() == ["b"]

    def test_release_resets_the_breaker(self):
        registry = make()
        self.trip_twice(registry, "a")
        registry.release("a")
        assert not registry.is_quarantined("a")
        assert registry.status("a") is HealthStatus.HEALTHY
        assert registry.breaker("a").opens == 0
        assert registry.allow("a", 0.0)


class TestSnapshot:
    def test_snapshot_is_sorted_and_json_ready(self):
        import json

        registry = make(elements=("b", "a"))
        registry.note_failure("b", 1.0)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "b"]
        assert snapshot["a"]["status"] == "healthy"
        assert snapshot["b"]["status"] == "degraded"
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_unknown_elements_get_breakers_lazily(self):
        registry = make(elements=())
        assert registry.status("new") is HealthStatus.HEALTHY
        assert "new" in registry.snapshot()
