"""Circuit breakers: deterministic trip, cool-down, half-open probing."""

import pytest

from repro.heal import BreakerState, CircuitBreaker


def make(**overrides):
    kwargs = dict(
        element="e",
        failure_threshold=3,
        cooldown_s=60.0,
        cooldown_multiplier=2.0,
        max_cooldown_s=900.0,
        half_open_successes=1,
    )
    kwargs.update(overrides)
    return CircuitBreaker(**kwargs)


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker = make()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(0.0)

    def test_failures_below_threshold_stay_closed(self):
        breaker = make()
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 2

    def test_success_resets_the_failure_streak(self):
        breaker = make()
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        breaker.record_success(3.0)
        assert breaker.consecutive_failures == 0
        breaker.record_failure(4.0)
        breaker.record_failure(5.0)
        assert breaker.state is BreakerState.CLOSED


class TestTripAndCooldown:
    def test_threshold_trips_open(self):
        breaker = make()
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 1
        assert breaker.opened_at == 3.0

    def test_open_blocks_until_cooldown_elapses(self):
        breaker = make()
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert not breaker.allow(3.0)
        assert not breaker.allow(62.9)
        assert breaker.allow(63.0)  # 3.0 + 60s
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_success_closes(self):
        breaker = make()
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert breaker.allow(63.0)
        breaker.record_success(63.1)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0
        assert breaker.opened_at is None

    def test_half_open_failure_reopens_with_escalated_cooldown(self):
        breaker = make()
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert breaker.allow(63.0)
        breaker.record_failure(63.1)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2
        assert breaker.current_cooldown() == 120.0
        assert not breaker.allow(120.0)
        assert breaker.allow(63.1 + 120.0)

    def test_cooldown_escalation_is_capped(self):
        breaker = make(cooldown_s=100.0, max_cooldown_s=250.0)
        breaker.opens = 5
        assert breaker.current_cooldown() == 250.0

    def test_multiple_half_open_successes_required(self):
        breaker = make(failure_threshold=1, half_open_successes=2)
        breaker.record_failure(0.0)
        assert breaker.allow(60.0)
        breaker.record_success(60.1)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(60.2)
        assert breaker.state is BreakerState.CLOSED


class TestTelemetry:
    def test_gauge_values_are_stable(self):
        breaker = make(failure_threshold=1)
        assert breaker.gauge_value() == 0
        breaker.record_failure(0.0)
        assert breaker.gauge_value() == 2
        breaker.allow(60.0)
        assert breaker.gauge_value() == 1

    def test_as_dict_is_json_ready(self):
        import json

        breaker = make(failure_threshold=1)
        breaker.record_failure(5.0)
        payload = breaker.as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["state"] == "open"
        assert payload["opens"] == 1
        assert payload["opened_at"] == 5.0
