"""The heal loop: drift detection, repair, quarantine, convergence.

The acceptance scenario: four elements behind chaos — ``a`` on a lossy
link, ``b`` suffering store bit-rot, ``c`` permanently dead, ``d``
flapping (its restarts reset the generation counter) — must reach zero
drift on every reachable element within the round budget, quarantine the
dead one, and do all of it byte-identically across same-seed runs.
"""

import pytest

from repro import obs
from repro.asn1.types import Asn1Module
from repro.errors import HealError
from repro.heal import (
    DriftKind,
    HealthRegistry,
    HealthStatus,
    Reconciler,
)
from repro.mib.instances import InstanceStore
from repro.mib.mib1 import build_mib1
from repro.netsim.faults import FaultInjector, FaultSpec
from repro.rollout import RetryPolicy, RolloutCoordinator

CONF = """view v include mgmt.mib.system
community fleet v ReadOnly min-interval 30
"""

FAST = RetryPolicy(max_attempts=3, exchange_retries=1, base_backoff_s=0.1)

#: The acceptance chaos menu, counted in messages through the injector
#: (the heal phase only — the baseline install uses clean channels).
CHAOS = {
    "a": FaultSpec(loss_rate=0.1),
    "b": FaultSpec(corrupt_store_after=0),  # bit-rot before the 1st poll
    "c": FaultSpec(crash_after=0),  # dead from the 1st poll, never back
    "d": FaultSpec(flap_after=2, flap_restart_after=1),
}


@pytest.fixture(scope="module")
def tree():
    return build_mib1()


def build_fleet(tree, chaos=None, seed=7):
    """Agents with CONF installed; heal-phase channels wear the chaos."""
    agents = {}
    channels = {}
    names = sorted(chaos) if chaos else ("a", "b", "c", "d")
    for name in names:
        store = InstanceStore(tree, module=Asn1Module())
        from repro.snmp.agent import SnmpAgent

        agents[name] = SnmpAgent(name, store, tree=tree)
        channels[name] = agents[name].handle_octets
    install = RolloutCoordinator(
        channels=channels,
        configs={n: CONF for n in names},
        policy=FAST,
        seed=11,
    ).run()
    assert install.complete
    if chaos:
        injector = FaultInjector(seed=seed, per_element=dict(chaos))
        channels = {
            name: injector.wrap(
                name,
                agent.handle_octets,
                crash_hook=agent.crash,
                restart_hook=agent.restart,
                corrupt_hook=agent.corrupt_store,
            )
            for name, agent in agents.items()
        }
    return agents, channels


def make_reconciler(channels, names, registry=None, **overrides):
    kwargs = dict(
        channels=channels,
        configs={n: CONF for n in names},
        policy=FAST,
        seed=42,
        registry=registry
        or HealthRegistry(
            sorted(names),
            failure_threshold=2,
            cooldown_s=45.0,
            quarantine_after=2,
        ),
        interval_s=30.0,
        max_rounds=12,
        expected_generations={n: 1 for n in names},
    )
    kwargs.update(overrides)
    return Reconciler(**kwargs)


def run_acceptance(tree, seed=7):
    agents, channels = build_fleet(tree, CHAOS, seed=seed)
    reconciler = make_reconciler(channels, sorted(CHAOS))
    return agents, reconciler, reconciler.run()


class TestAcceptanceScenario:
    def test_converges_within_the_round_budget(self, tree):
        _, _, report = run_acceptance(tree)
        assert report.converged
        assert report.rounds_used <= 12

    def test_every_drift_class_is_exercised(self, tree):
        _, _, report = run_acceptance(tree)
        kinds = {
            (o.element, o.kind)
            for r in report.rounds
            for o in r.observations
        }
        assert ("b", DriftKind.DIGEST_MISMATCH) in kinds
        assert ("c", DriftKind.UNREACHABLE) in kinds
        assert ("d", DriftKind.GENERATION_REGRESSION) in kinds

    def test_bit_rot_is_repaired_on_the_wire(self, tree):
        agents, _, report = run_acceptance(tree)
        assert "b" in {e for r in report.rounds for e in r.repaired}
        assert agents["b"].last_good_config == CONF

    def test_dead_element_is_quarantined_not_retried_forever(self, tree):
        _, reconciler, report = run_acceptance(tree)
        assert report.quarantined == ("c",)
        assert (
            reconciler.registry.status("c") is HealthStatus.QUARANTINED
        )
        final = report.rounds[-1]
        for observation in final.observations:
            assert observation.kind in (
                DriftKind.IN_SYNC,
                DriftKind.QUARANTINED,
            )

    def test_flap_rebaselines_generation_without_wire_work(self, tree):
        _, _, report = run_acceptance(tree)
        regressions = [
            o
            for r in report.rounds
            for o in r.observations
            if o.kind == DriftKind.GENERATION_REGRESSION
        ]
        assert regressions and all(o.repaired for o in regressions)
        # Generation regressions are never re-driven (no redundant
        # campaign): only digest mismatches enter the redrive list.
        for round_ in report.rounds:
            assert "d" not in round_.redriven

    def test_drift_accounting_balances(self, tree):
        _, _, report = run_acceptance(tree)
        assert report.drift_detected() >= 2
        assert report.drift_repaired() == report.drift_detected()

    def test_same_seed_runs_are_byte_identical(self, tree):
        def artifacts():
            with obs.scope(clock=obs.LogicalClock()) as session:
                _, _, report = run_acceptance(tree)
                return (
                    report.to_json(),
                    session.metrics.snapshot_json(),
                    session.tracer.to_jsonl(),
                )

        first = artifacts()
        second = artifacts()
        assert first[0] == second[0], "heal reports differ between runs"
        assert first[1] == second[1], "metrics snapshots differ"
        assert first[2] == second[2], "traces differ"

    def test_heal_metrics_are_published(self, tree):
        import json

        with obs.scope(clock=obs.LogicalClock()) as session:
            run_acceptance(tree)
            metrics = json.loads(session.metrics.snapshot_json())
        assert "repro_heal_polls_total" in metrics
        assert "repro_heal_rounds_total" in metrics
        assert "repro_heal_drift_detected_total" in metrics
        assert "repro_heal_drift_repaired_total" in metrics
        assert "repro_heal_breaker_state" in metrics
        assert "repro_heal_quarantined_total" in metrics


class TestQuietNetwork:
    def test_clean_fleet_converges_in_one_round(self, tree):
        _, channels = build_fleet(tree)
        report = make_reconciler(channels, ("a", "b", "c", "d")).run()
        assert report.converged
        assert report.rounds_used == 1
        assert report.drift_detected() == 0

    def test_rounds_override_caps_the_budget(self, tree):
        _, channels = build_fleet(tree)
        report = make_reconciler(channels, ("a", "b", "c", "d")).run(rounds=1)
        assert report.rounds_used == 1


class TestSingleFaultScenarios:
    def test_manual_store_corruption_is_detected_and_repaired(self, tree):
        agents, channels = build_fleet(tree, chaos={"a": FaultSpec()})
        agents["a"].corrupt_store()
        report = make_reconciler(channels, ("a",)).run()
        assert report.converged
        first = report.rounds[0].observations[0]
        assert first.kind == DriftKind.DIGEST_MISMATCH
        assert report.rounds[0].redriven == ("a",)
        assert agents["a"].last_good_config == CONF

    def test_agent_restart_is_a_benign_regression(self, tree):
        agents, channels = build_fleet(tree, chaos={"a": FaultSpec()})
        agents["a"].restart()
        report = make_reconciler(channels, ("a",)).run()
        assert report.converged
        first = report.rounds[0].observations[0]
        assert first.kind == DriftKind.GENERATION_REGRESSION
        assert first.repaired
        assert report.rounds[0].redriven == ()  # no wire work

    def test_unreachable_without_quarantine_budget_does_not_converge(
        self, tree
    ):
        _, channels = build_fleet(
            tree, chaos={"a": FaultSpec(crash_after=0)}
        )
        registry = HealthRegistry(
            ("a",), failure_threshold=99, cooldown_s=1.0
        )
        report = make_reconciler(
            channels, ("a",), registry=registry, max_rounds=3
        ).run()
        assert not report.converged
        assert report.quarantined == ()

    def test_pre_quarantined_elements_are_never_polled(self, tree):
        _, channels = build_fleet(tree, chaos={"a": FaultSpec()})
        polled = []
        original = channels["a"]
        channels["a"] = lambda octets: polled.append(1) or original(octets)
        registry = HealthRegistry(("a",))
        registry.quarantine("a")
        report = make_reconciler(channels, ("a",), registry=registry).run()
        assert report.converged  # all-quarantined counts as settled
        assert polled == []
        assert report.rounds[0].observations[0].kind == DriftKind.QUARANTINED


class TestValidation:
    def test_missing_channel_rejected(self, tree):
        with pytest.raises(HealError):
            Reconciler(channels={}, configs={"a": CONF})

    def test_bad_round_budget_rejected(self, tree):
        _, channels = build_fleet(tree, chaos={"a": FaultSpec()})
        with pytest.raises(HealError):
            make_reconciler(channels, ("a",), max_rounds=0)
        with pytest.raises(HealError):
            make_reconciler(channels, ("a",)).run(rounds=0)

    def test_bad_interval_rejected(self, tree):
        _, channels = build_fleet(tree, chaos={"a": FaultSpec()})
        with pytest.raises(HealError):
            make_reconciler(channels, ("a",), interval_s=0.0)
