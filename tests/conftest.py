"""Shared test configuration.

The property-based tests default to a reduced example budget so the full
suite stays fast on small machines; set ``HYPOTHESIS_PROFILE=thorough`` for
a deeper run.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "fast",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "fast"))
