"""Tests for the frequency interval algebra."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import NmslSemanticError
from repro.nmsl.frequency import (
    FrequencySpec,
    INFREQUENT_PERIOD_SECONDS,
)


class TestConstruction:
    def test_from_clause_ge_minutes(self):
        spec = FrequencySpec.from_clause(">=", 5, "minutes")
        assert spec.min_period == 300
        assert spec.max_period is None

    def test_from_clause_le(self):
        spec = FrequencySpec.from_clause("<=", 2, "hours")
        assert spec.min_period == 0
        assert spec.max_period == 7200

    def test_from_clause_eq(self):
        spec = FrequencySpec.from_clause("=", 30, "seconds")
        assert spec.as_tuple() == (30, 30)

    def test_from_clause_bare_value_reads_as_equal(self):
        spec = FrequencySpec.from_clause("", 10, "seconds")
        assert spec.as_tuple() == (10, 10)

    def test_strict_ops(self):
        assert FrequencySpec.from_clause(">", 1, "minutes").min_period == 60
        assert FrequencySpec.from_clause("<", 1, "minutes").max_period == 60

    def test_infrequent(self):
        spec = FrequencySpec.infrequent()
        assert spec.min_period == INFREQUENT_PERIOD_SECONDS

    def test_unknown_unit(self):
        with pytest.raises(NmslSemanticError):
            FrequencySpec.from_clause(">=", 5, "fortnights")

    def test_nonpositive_value(self):
        with pytest.raises(NmslSemanticError):
            FrequencySpec.from_clause(">=", 0, "minutes")

    def test_unconstrained(self):
        assert FrequencySpec.unconstrained().is_unconstrained()


class TestCoverage:
    def test_infrequent_covered_by_5min_export(self):
        """The paper's own pairing: infrequent client, >=5min export."""
        reference = FrequencySpec.infrequent()
        permission = FrequencySpec.from_clause(">=", 5, "minutes")
        assert reference.covered_by(permission)

    def test_fast_reference_not_covered(self):
        reference = FrequencySpec.from_clause("=", 30, "seconds")
        permission = FrequencySpec.from_clause(">=", 5, "minutes")
        assert not reference.covered_by(permission)

    def test_equal_bounds_covered(self):
        reference = FrequencySpec.from_clause(">=", 5, "minutes")
        permission = FrequencySpec.from_clause(">=", 5, "minutes")
        assert reference.covered_by(permission)

    def test_unbounded_reference_not_covered_by_bounded_permission(self):
        reference = FrequencySpec.from_clause(">=", 10, "minutes")
        permission = FrequencySpec.from_clause("=", 10, "minutes")
        assert not reference.covered_by(permission)

    def test_anything_covered_by_unconstrained(self):
        assert FrequencySpec.from_clause("=", 1, "seconds").covered_by(
            FrequencySpec.unconstrained()
        )


class TestAlgebra:
    def test_intersect_overlapping(self):
        a = FrequencySpec.at_most_every(300)
        b = FrequencySpec.at_least_every(900)
        both = a.intersect(b)
        assert both is not None
        assert both.as_tuple() == (300, 900)

    def test_intersect_empty(self):
        a = FrequencySpec.at_most_every(900)  # period >= 900
        b = FrequencySpec.at_least_every(300)  # period <= 300
        assert a.intersect(b) is None

    def test_max_rate(self):
        assert FrequencySpec.at_most_every(300).max_rate_per_second() == pytest.approx(
            1 / 300
        )
        assert FrequencySpec.unconstrained().max_rate_per_second() == math.inf

    def test_describe_forms(self):
        assert "5" in FrequencySpec.from_clause(">=", 5, "minutes").describe()
        assert "unconstrained" in FrequencySpec.unconstrained().describe()
        assert "infrequent" in FrequencySpec.infrequent().describe()


class TestProperties:
    periods = st.floats(min_value=1, max_value=10_000)

    @given(periods, periods)
    def test_coverage_matches_interval_containment(self, ref_min, perm_min):
        reference = FrequencySpec.at_most_every(ref_min)
        permission = FrequencySpec.at_most_every(perm_min)
        assert reference.covered_by(permission) == (ref_min >= perm_min)

    @given(periods, periods)
    def test_intersection_is_commutative(self, a_min, b_min):
        a = FrequencySpec.at_most_every(a_min)
        b = FrequencySpec.at_most_every(b_min)
        left = a.intersect(b)
        right = b.intersect(a)
        assert (left is None) == (right is None)
        if left is not None:
            assert left.as_tuple() == right.as_tuple()

    @given(periods)
    def test_self_coverage(self, period):
        spec = FrequencySpec.at_most_every(period)
        assert spec.covered_by(spec)
