"""The full-language features: modifies/executes queries, proxies,
recursive queries (paper Sections 3.1 and 4.1.3)."""

import pytest

from repro.consistency.checker import ConsistencyChecker, check_with_clpr
from repro.consistency.facts import FactGenerator
from repro.consistency.report import InconsistencyKind
from repro.errors import NmslSemanticError
from repro.mib.tree import Access
from repro.nmsl.compiler import CompilerOptions, NmslCompiler


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler(CompilerOptions(register_codegen=False))


def _element(name, agent="agent", extra=""):
    return f"""
system "{name}" ::=
    cpu sparc;
    interface ie0 net shared type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system, mgmt.mib.interfaces, mgmt.mib.ip;
{extra}    process {agent};
end system "{name}".
"""


class TestModifies:
    def test_modifies_parses_with_readwrite_access(self, compiler):
        result = compiler.compile(
            """
process setter(T: Process) ::=
    queries T
        modifies mgmt.mib.interfaces.ifTable.IfEntry.ifAdminStatus
        frequency infrequent;
end process setter.
"""
        )
        query = result.specification.processes["setter"].queries[0]
        assert query.kind == "modifies"
        assert query.access is Access.READ_WRITE

    def test_modifies_readonly_object_rejected(self, compiler):
        with pytest.raises(NmslSemanticError, match="no writable objects"):
            compiler.compile(
                """
process setter(T: Process) ::=
    queries T
        modifies mgmt.mib.system.sysDescr
        frequency infrequent;
end process setter.
"""
            )

    def test_modifies_subtree_with_writable_leaf_ok(self, compiler):
        result = compiler.compile(
            """
process setter(T: Process) ::=
    queries T modifies mgmt.mib.at frequency infrequent;
end process setter.
"""
        )
        assert result.ok

    def test_modify_against_readonly_export_inconsistent(self, compiler):
        text = """
process agent ::= supports mgmt.mib.system, mgmt.mib.interfaces, mgmt.mib.ip;
end process agent.
""" + _element("server.example") + """
process setter(T: Process) ::=
    queries T
        modifies mgmt.mib.interfaces.ifTable.IfEntry.ifAdminStatus
        frequency infrequent;
end process setter.
domain servers ::=
    system server.example;
    exports mgmt.mib to clients access ReadOnly frequency >= 5 minutes;
end domain servers.
domain clients ::= process setter(server.example); end domain clients.
"""
        outcome = ConsistencyChecker(
            compiler.compile(text).specification, compiler.tree
        ).check()
        assert outcome.kinds() == [InconsistencyKind.ACCESS_EXCEEDED]

    def test_modify_against_readwrite_export_ok(self, compiler):
        text = """
process agent ::= supports mgmt.mib.system, mgmt.mib.interfaces, mgmt.mib.ip;
end process agent.
""" + _element("server.example") + """
process setter(T: Process) ::=
    queries T
        modifies mgmt.mib.interfaces.ifTable.IfEntry.ifAdminStatus
        frequency infrequent;
end process setter.
domain servers ::=
    system server.example;
    exports mgmt.mib to clients access ReadWrite frequency >= 5 minutes;
end domain servers.
domain clients ::= process setter(server.example); end domain clients.
"""
        outcome = ConsistencyChecker(
            compiler.compile(text).specification, compiler.tree
        ).check()
        assert outcome.consistent


class TestExecutes:
    def test_executes_parses_with_any_access(self, compiler):
        result = compiler.compile(
            """
process rebooter(T: Process) ::=
    queries T executes mgmt.mib.system.sysUpTime frequency infrequent;
end process rebooter.
"""
        )
        query = result.specification.processes["rebooter"].queries[0]
        assert query.kind == "executes"
        assert query.access is Access.ANY

    def test_only_one_interaction_kind_per_clause(self, compiler):
        with pytest.raises(NmslSemanticError, match="only one of"):
            compiler.compile(
                """
process confused(T: Process) ::=
    queries T requests mgmt.mib.system
        modifies mgmt.mib.at frequency infrequent;
end process confused.
"""
            )


PROXY_TEXT = """
process bridgeProxy ::=
    supports mgmt.mib.interfaces, mgmt.mib.system;
    proxies bridge1.example via bridgeTalk;
    exports mgmt.mib.interfaces to clients
        access ReadOnly
        frequency >= 5 minutes;
end process bridgeProxy.

system "proxyhost.example" ::=
    cpu sparc;
    interface ie0 net shared type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system, mgmt.mib.interfaces, mgmt.mib.ip;
    process bridgeProxy;
end system "proxyhost.example".

system "bridge1.example" ::=
    cpu z80;
    interface p0 net shared type ethernet-csmacd speed 10000000 bps;
    opsys firmware version 2;
    supports mgmt.mib.interfaces;
end system "bridge1.example".

process watcher(T: Process) ::=
    queries T requests mgmt.mib.interfaces frequency >= 10 minutes;
end process watcher.

domain servers ::=
    system proxyhost.example;
    system bridge1.example;
end domain servers.
domain clients ::= process watcher(bridge1.example); end domain clients.
"""


class TestProxies:
    def test_proxy_clause_parses(self, compiler):
        result = compiler.compile(PROXY_TEXT)
        proxy_process = result.specification.processes["bridgeProxy"]
        assert proxy_process.is_proxy()
        (proxy,) = proxy_process.proxies
        assert proxy.target_system == "bridge1.example"
        assert proxy.protocol == "bridgeTalk"

    def test_unknown_proxied_element_rejected(self, compiler):
        with pytest.raises(NmslSemanticError, match="proxies unknown element"):
            compiler.compile(
                "process p ::= supports mgmt.mib; proxies ghost.example; "
                "end process p."
            )

    def test_reference_to_proxied_element_covered(self, compiler):
        """bridge1 has no agent; the proxy answers, and its export covers."""
        spec = compiler.compile(PROXY_TEXT).specification
        outcome = ConsistencyChecker(spec, compiler.tree).check()
        assert outcome.consistent

    def test_clpr_path_agrees_on_proxy(self, compiler):
        spec = compiler.compile(PROXY_TEXT).specification
        assert check_with_clpr(spec, compiler.tree).consistent

    def test_without_proxy_no_server(self, compiler):
        text = PROXY_TEXT.replace("    proxies bridge1.example via bridgeTalk;\n", "")
        spec = compiler.compile(text).specification
        outcome = ConsistencyChecker(spec, compiler.tree).check()
        assert outcome.kinds() == [InconsistencyKind.NO_SERVER]

    def test_proxied_data_must_be_on_proxied_element(self, compiler):
        """Requesting the ip group: the proxy could translate it, but the
        bridge itself only supports interfaces."""
        text = PROXY_TEXT.replace(
            "    queries T requests mgmt.mib.interfaces frequency >= 10 minutes;",
            "    queries T requests mgmt.mib.ip frequency >= 10 minutes;",
        ).replace(
            "    exports mgmt.mib.interfaces to clients",
            "    exports mgmt.mib.ip to clients",
        )
        spec = compiler.compile(text).specification
        outcome = ConsistencyChecker(spec, compiler.tree).check()
        assert not outcome.consistent
        assert outcome.kinds()[0] in (
            InconsistencyKind.UNSUPPORTED_BY_ELEMENT,
            InconsistencyKind.UNSUPPORTED_BY_PROCESS,
        )

    def test_proxy_facts_emitted(self, compiler):
        result = compiler.compile(PROXY_TEXT)
        facts = FactGenerator(result.specification, compiler.tree).generate()
        text = facts.to_clpr_text()
        assert (
            "proxy_for(bridgeProxy, system('bridge1.example'), bridgeTalk)."
            in text
        )

    def test_proxies_for_system_lookup(self, compiler):
        result = compiler.compile(PROXY_TEXT)
        facts = FactGenerator(result.specification, compiler.tree).generate()
        (proxy_instance,) = facts.proxies_for_system("bridge1.example")
        assert proxy_instance.process_name == "bridgeProxy"

    def test_snmpd_config_lists_proxy(self):
        full_compiler = NmslCompiler()
        result = full_compiler.compile(PROXY_TEXT)
        bundle = full_compiler.generate("BartsSnmpd", result)
        text = bundle.unit_for("proxyhost.example").text
        assert "proxy-for bridge1.example via bridgeTalk" in text


class TestRecursiveQueries:
    """One server queries another to process the query (Section 3.1):
    a process may both support data and issue queries."""

    TEXT = """
process leafAgent ::= supports mgmt.mib.system, mgmt.mib.interfaces,
    mgmt.mib.ip;
end process leafAgent.

process summarizer(Backend: Process) ::=
    supports mgmt.mib.system;
    exports mgmt.mib.system to "public"
        access ReadOnly
        frequency >= 5 minutes;
    queries Backend
        requests mgmt.mib.interfaces
        frequency >= 5 minutes;
end process summarizer.
""" + _element("leaf.example", agent="leafAgent") + _element(
        "mid.example", agent="summarizer(leaf.example)"
    ) + """
process client(T: Process) ::=
    queries T requests mgmt.mib.system frequency infrequent;
end process client.

domain leaves ::=
    system leaf.example;
    exports mgmt.mib to middle access ReadOnly frequency >= 5 minutes;
end domain leaves.
domain middle ::=
    system mid.example;
end domain middle.
domain clients ::= process client(mid.example); end domain clients.
"""

    def test_summarizer_is_both_agent_and_client(self, compiler):
        spec = compiler.compile(self.TEXT).specification
        summarizer = spec.processes["summarizer"]
        assert summarizer.is_agent()
        assert summarizer.queries  # also a client

    def test_recursive_chain_consistent(self, compiler):
        spec = compiler.compile(self.TEXT).specification
        outcome = ConsistencyChecker(spec, compiler.tree).check()
        assert outcome.consistent

    def test_breaking_backend_permission_breaks_chain(self, compiler):
        text = self.TEXT.replace(
            "    exports mgmt.mib to middle access ReadOnly frequency >= 5 minutes;\n",
            "",
        )
        spec = compiler.compile(text).specification
        outcome = ConsistencyChecker(spec, compiler.tree).check()
        assert not outcome.consistent
        assert outcome.inconsistencies[0].reference.origin.startswith(
            "process summarizer"
        )
