"""Tests for the compiler driver and output generation."""

import pytest

from repro.clpr.program import parse_program
from repro.errors import CodegenError
from repro.nmsl.compiler import CompilerOptions, NmslCompiler, compile_text
from repro.workloads.paper import PAPER_SPEC_TEXT


@pytest.fixture(scope="module")
def compiled():
    compiler = NmslCompiler()
    return compiler, compiler.compile(PAPER_SPEC_TEXT)


class TestCompile:
    def test_compile_text_helper(self):
        compiler, result = compile_text(PAPER_SPEC_TEXT)
        assert result.ok
        assert result.specification.counts()["systems"] == 2

    def test_declarations_preserved(self, compiled):
        _compiler, result = compiled
        assert len(result.declarations) == 7


class TestConsistencyOutput:
    def test_facts_parse_as_clpr_program(self, compiled):
        compiler, result = compiled
        text = compiler.generate("consistency", result).text()
        program = parse_program(text)
        assert len(program) > 20

    def test_type_facts(self, compiled):
        compiler, result = compiled
        text = compiler.generate("consistency", result).text()
        assert "nm_type(ipAddrTable)." in text
        assert "type_access(ipAddrTable, readonly)." in text

    def test_process_facts(self, compiled):
        compiler, result = compiled
        text = compiler.generate("consistency", result).text()
        assert "proc_supports(snmpdReadOnly, 'mgmt.mib')." in text
        assert (
            "proc_export(snmpdReadOnly, public, 'mgmt.mib', readonly, 300)."
            in text
        )
        assert "proc_query(snmpaddr, param(0)," in text

    def test_system_facts(self, compiled):
        compiler, result = compiled
        text = compiler.generate("consistency", result).text()
        assert "instance('snmpdReadOnly@romano.cs.wisc.edu#" in text
        assert "system_supports('romano.cs.wisc.edu', 'mgmt.mib.ip')." in text
        assert "speed('romano.cs.wisc.edu', 10000000)." in text

    def test_domain_facts(self, compiled):
        compiler, result = compiled
        text = compiler.generate("consistency", result).text()
        assert "contains(domain('wisc-cs'), system('romano.cs.wisc.edu'))." in text
        assert "dom_export('wisc-cs', public, 'mgmt.mib', readonly, 300)." in text

    def test_epilogue_facts(self, compiled):
        compiler, result = compiled
        text = compiler.generate("consistency", result).text()
        assert "data_covers('mgmt.mib', 'mgmt.mib.ip.ipAddrTable.IpAddrEntry')." in text
        assert "access_covers(readwrite, readonly)." in text

    def test_units_attributed_to_declarations(self, compiled):
        compiler, result = compiled
        bundle = compiler.generate("consistency", result)
        names = [unit.name for unit in bundle.units]
        assert "snmpdReadOnly" in names
        assert "wisc-cs" in names

    def test_unknown_tag_raises(self, compiled):
        compiler, result = compiled
        with pytest.raises(CodegenError, match="no output actions"):
            compiler.generate("nonexistent-tag", result)


class TestConfigurationOutput:
    def test_snmpd_tag_registered(self, compiled):
        compiler, result = compiled
        text = compiler.generate("BartsSnmpd", result).text()
        assert "snmpd.conf for romano.cs.wisc.edu" in text
        assert "community public view-snmpdReadOnly ReadOnly min-interval 300" in text

    def test_acl_table(self, compiled):
        compiler, result = compiled
        text = compiler.generate("acl-table", result).text()
        assert "instance:snmpdReadOnly@romano.cs.wisc.edu#1\tpublic" in text
        assert "domain:wisc-cs\tpublic" in text

    def test_osi_output(self, compiled):
        compiler, result = compiled
        text = compiler.generate("osi", result).text()
        assert "managementDomain wisc-cs {" in text
        assert "managedSystem romano.cs.wisc.edu;" in text
        assert "peerDomain public;" in text

    def test_tags_listed(self, compiled):
        compiler, _result = compiled
        tags = compiler.registry.tags()
        assert "consistency" in tags
        assert "BartsSnmpd" in tags
        assert "acl-table" in tags
        assert "osi" in tags
