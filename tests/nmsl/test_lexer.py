"""Tests for the NMSL tokenizer."""

import pytest

from repro.errors import NmslSyntaxError
from repro.nmsl.lexer import (
    EOF,
    NUMBER,
    PERIOD,
    PUNCT,
    STRING,
    WORD,
    tokenize,
)


def kinds(text):
    return [token.kind for token in tokenize(text)[:-1]]


def texts(text):
    return [token.text for token in tokenize(text)[:-1]]


class TestWords:
    def test_keyword(self):
        (token,) = tokenize("process")[:-1]
        assert token.kind == WORD

    def test_dotted_path(self):
        (token,) = tokenize("mgmt.mib.ip.ipAddrTable")[:-1]
        assert token.kind == WORD
        assert token.text == "mgmt.mib.ip.ipAddrTable"

    def test_hyphenated(self):
        (token,) = tokenize("wisc-research")[:-1]
        assert token.text == "wisc-research"

    def test_version_like_word(self):
        (token,) = tokenize("4.0.1")[:-1]
        assert token.kind == WORD  # not a number: two dots
        assert token.text == "4.0.1"

    def test_trailing_dot_split_off(self):
        tokens = tokenize("ipAddrTable.")[:-1]
        assert [t.kind for t in tokens] == [WORD, PERIOD]

    def test_trailing_dot_after_path(self):
        tokens = tokenize("end domain wisc-cs.")[:-1]
        assert [t.text for t in tokens] == ["end", "domain", "wisc-cs", "."]

    def test_wrapped_path_produces_period(self):
        tokens = tokenize("mgmt.mib.ip.\n    IpAddrEntry")[:-1]
        assert [t.kind for t in tokens] == [WORD, PERIOD, WORD]


class TestNumbersAndStrings:
    def test_integer(self):
        (token,) = tokenize("10000000")[:-1]
        assert token.kind == NUMBER

    def test_decimal(self):
        (token,) = tokenize("2.5")[:-1]
        assert token.kind == NUMBER

    def test_string(self):
        (token,) = tokenize('"romano.cs.wisc.edu"')[:-1]
        assert token.kind == STRING
        assert token.text == "romano.cs.wisc.edu"

    def test_unterminated_string(self):
        with pytest.raises(NmslSyntaxError):
            tokenize('"oops')

    def test_newline_in_string(self):
        with pytest.raises(NmslSyntaxError):
            tokenize('"a\nb"')


class TestPunctuation:
    def test_assignment(self):
        assert texts("::=") == ["::="]

    def test_becomes(self):
        assert texts(":=") == [":="]

    def test_comparisons(self):
        assert texts(">= <= < > =") == [">=", "<=", "<", ">", "="]

    def test_star(self):
        assert texts("(*, *)") == ["(", "*", ",", "*", ")"]

    def test_semicolon_comma_colon(self):
        assert texts("; , :") == [";", ",", ":"]


class TestCommentsAndLayout:
    def test_comment_to_eol(self):
        assert texts("supports mgmt.mib; -- entire MIB subtree\nexports") == [
            "supports",
            "mgmt.mib",
            ";",
            "exports",
        ]

    def test_empty_input(self):
        assert tokenize("")[-1].kind == EOF

    def test_offsets_allow_raw_slicing(self):
        text = "type  Foo ::= INTEGER ;"
        tokens = tokenize(text)[:-1]
        for token in tokens:
            assert text[token.start : token.end] == token.text or token.kind == STRING


class TestPaperFigures:
    def test_figure_44_frequency_clause(self):
        tokens = texts("frequency >= 5 minutes;")
        assert tokens == ["frequency", ">=", "5", "minutes", ";"]

    def test_figure_44_using_assignment(self):
        tokens = texts("ipAdEntAddr := Dest")
        assert tokens == ["ipAdEntAddr", ":=", "Dest"]

    def test_figure_46_interface_clause(self):
        tokens = texts("interface ie0 net wisc-research speed 10000000 bps;")
        assert tokens[:4] == ["interface", "ie0", "net", "wisc-research"]
        assert tokens[4:] == ["speed", "10000000", "bps", ";"]

    def test_unexpected_character(self):
        with pytest.raises(NmslSyntaxError):
            tokenize("a @ b")
