"""Unit tests for keyword tables, segmentation and the output registry."""

import pytest

from repro.errors import NmslSemanticError
from repro.nmsl.actions import (
    BASE_KEYWORDS,
    KeywordEntry,
    KeywordTable,
    OutputRegistry,
    Subclause,
    segment_clause,
)
from repro.nmsl.generic import parse_generic


def clause_from(text: str, decltype: str = "process"):
    """Build a GenericClause by parsing a one-clause declaration."""
    (decl,) = parse_generic(f"{decltype} x ::= {text}; end {decltype} x.")
    return decl.clauses[0]


class TestKeywordTable:
    def test_base_lookup(self):
        table = KeywordTable()
        assert table.is_keyword("exports", "process")
        assert table.is_keyword("exports", "domain")
        assert not table.is_keyword("exports", "system")
        assert not table.is_keyword("gyrates", "process")

    def test_keywords_for(self):
        table = KeywordTable()
        keywords = table.keywords_for("type")
        assert keywords == ("access",)

    def test_prepend_extends_without_breaking_base(self):
        table = KeywordTable()
        table.prepend(KeywordEntry("exports", ("system",)))
        # The prepended entry wins the lookup for its decltypes...
        assert table.is_keyword("exports", "system")
        # ...while other decltypes fall through to the base entry.
        assert table.is_keyword("exports", "process")

    def test_prepend_overrides_same_decltype(self):
        table = KeywordTable()
        table.prepend(
            KeywordEntry("exports", ("process",), starts_clause=False)
        )
        # First match wins: the extension changed the keyword's role.
        assert not table.lookup("exports", "process").starts_clause

    def test_starts_clause_flags(self):
        table = KeywordTable()
        assert table.lookup("queries", "process").starts_clause
        assert not table.lookup("requests", "process").starts_clause
        assert not table.lookup("to", "domain").starts_clause


class TestSegmentation:
    def test_exports_clause(self):
        table = KeywordTable()
        clause = clause_from(
            'exports mgmt.mib to "public" access ReadOnly frequency >= 5 minutes'
        )
        subclauses = segment_clause(clause, "process", table)
        assert [s.keyword for s in subclauses] == [
            "exports",
            "to",
            "access",
            "frequency",
        ]
        assert subclauses[0].words() == ["mgmt.mib"]
        assert subclauses[3].texts() == [">=", "5", "minutes"]

    def test_interface_clause(self):
        table = KeywordTable()
        clause = clause_from(
            "interface ie0 net wisc type ethernet-csmacd speed 10000000 bps",
            decltype="system",
        )
        subclauses = segment_clause(clause, "system", table)
        assert [s.keyword for s in subclauses] == [
            "interface",
            "net",
            "type",
            "speed",
        ]

    def test_keywords_inside_parens_do_not_split(self):
        table = KeywordTable()
        table.prepend(KeywordEntry("custom", ("domain",)))
        clause = clause_from("process p(net, type)", decltype="domain")
        subclauses = segment_clause(clause, "domain", table)
        # 'net' and 'type' are system keywords; inside parentheses they are
        # arguments — and they are not domain keywords anyway, but even a
        # domain keyword would be protected by the depth tracking.
        assert [s.keyword for s in subclauses] == ["process"]

    def test_continuation_keyword_cannot_start(self):
        table = KeywordTable()
        clause = clause_from("requests mgmt.mib")
        with pytest.raises(NmslSemanticError, match="does not start"):
            segment_clause(clause, "process", table)

    def test_unknown_first_keyword(self):
        table = KeywordTable()
        clause = clause_from("cpu sparc")  # 'cpu' is a system keyword
        with pytest.raises(NmslSemanticError):
            segment_clause(clause, "process", table)


class TestOutputRegistry:
    def test_register_and_lookup(self):
        registry = OutputRegistry()
        action = lambda ctx, spec: "x"
        registry.register("t", "process", action)
        assert registry.lookup("t", "process") is action
        assert registry.lookup("t", "domain") is None
        assert registry.lookup("other", "process") is None

    def test_prepend_shadows(self):
        registry = OutputRegistry()
        base = lambda ctx, spec: "base"
        override = lambda ctx, spec: "override"
        registry.register("t", "process", base)
        registry.prepend("t", "process", override)
        assert registry.lookup("t", "process") is override

    def test_prepend_does_not_touch_other_tags(self):
        registry = OutputRegistry()
        base_a = lambda ctx, spec: "a"
        base_b = lambda ctx, spec: "b"
        registry.register("a", "process", base_a)
        registry.register("b", "process", base_b)
        registry.prepend("a", "process", lambda ctx, spec: "a2")
        assert registry.lookup("b", "process") is base_b

    def test_tags_in_first_seen_order(self):
        registry = OutputRegistry()
        registry.register("x", "process", lambda c, s: "")
        registry.register("y", "domain", lambda c, s: "")
        registry.register("x", "domain", lambda c, s: "")
        assert registry.tags() == ("x", "y")

    def test_copy_is_independent(self):
        registry = OutputRegistry()
        registry.register("x", "process", lambda c, s: "")
        duplicate = registry.copy()
        duplicate.register("y", "process", lambda c, s: "")
        assert "y" not in registry.tags()
        assert "y" in duplicate.tags()


class TestSubclause:
    def test_words_filters_punctuation(self):
        table = KeywordTable()
        clause = clause_from("supports mgmt.mib.ip, mgmt.mib.udp")
        (subclause,) = segment_clause(clause, "process", table)
        assert subclause.words() == ["mgmt.mib.ip", "mgmt.mib.udp"]
        assert "," in subclause.texts()
