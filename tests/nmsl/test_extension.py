"""Tests for the extension language (paper Section 6.3)."""

import pytest

from repro.errors import ExtensionError, NmslSemanticError
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.nmsl.extension import Extension, ExtensionAction, parse_extension
from repro.nmsl.actions import KeywordEntry

BILLING_EXTENSION = """
-- charge-back accounting for management traffic
extension billing;
keyword billing in process, domain;
output consistency for process.billing emit "billing_rate({name}, {arg0}).";
output acct-report for process.billing emit "charge {name} {arg0} cents per query";
"""

SPEC_WITH_BILLING = """
process meteredAgent ::=
    supports mgmt.mib;
    exports mgmt.mib to "public"
        access ReadOnly
        frequency >= 5 minutes;
    billing 12;
end process meteredAgent.
"""


class TestParseExtension:
    def test_name(self):
        extension = parse_extension(BILLING_EXTENSION)
        assert extension.name == "billing"

    def test_keyword_entries(self):
        extension = parse_extension(BILLING_EXTENSION)
        (entry,) = extension.keywords
        assert entry.keyword == "billing"
        assert entry.decltypes == ("process", "domain")
        assert entry.starts_clause

    def test_continuation_keyword(self):
        extension = parse_extension(
            "extension x; keyword rate in process continues;"
        )
        assert not extension.keywords[0].starts_clause

    def test_decltype_statement(self):
        extension = parse_extension("extension x; decltype organization;")
        assert extension.decltypes == ("organization",)

    def test_actions(self):
        extension = parse_extension(BILLING_EXTENSION)
        tags = {action.tag for action in extension.actions}
        assert tags == {"consistency", "acct-report"}

    def test_decl_level_action(self):
        extension = parse_extension(
            'extension x; output t for process emit "# {name}";'
        )
        (action,) = extension.actions
        assert action.keyword is None

    def test_missing_name(self):
        with pytest.raises(ExtensionError, match="must begin"):
            parse_extension("keyword k in process;")

    def test_malformed_keyword(self):
        with pytest.raises(ExtensionError):
            parse_extension("extension x; keyword nope;")

    def test_unquoted_template(self):
        with pytest.raises(ExtensionError, match="double-quoted"):
            parse_extension("extension x; output t for process.k emit bare;")

    def test_unterminated_statement(self):
        with pytest.raises(ExtensionError, match="not terminated"):
            parse_extension("extension x; keyword k in process")

    def test_unknown_statement(self):
        with pytest.raises(ExtensionError, match="unknown"):
            parse_extension("extension x; frobnicate y;")

    def test_comments_ignored(self):
        extension = parse_extension(
            "-- header\nextension x; -- trailing\nkeyword k in domain;"
        )
        assert extension.keywords[0].keyword == "k"


class TestExtensionActionObject:
    def test_template_renderer(self):
        action = ExtensionAction(
            tag="t", decltype="process", keyword="k", template="{name}: {arg0}"
        )
        assert action.renderer()("p", ("5",)) == "p: 5"

    def test_callable_renderer(self):
        action = ExtensionAction(
            tag="t",
            decltype="process",
            keyword="k",
            render=lambda name, args: f"<{name}>",
        )
        assert action.renderer()("p", ()) == "<p>"

    def test_needs_exactly_one_body(self):
        with pytest.raises(ExtensionError):
            ExtensionAction(tag="t", decltype="process")
        with pytest.raises(ExtensionError):
            ExtensionAction(
                tag="t",
                decltype="process",
                template="x",
                render=lambda n, a: "",
            )

    def test_missing_arg_renders_empty(self):
        action = ExtensionAction(
            tag="t", decltype="process", keyword="k", template="[{arg3}]"
        )
        assert action.renderer()("p", ()) == "[]"


class TestExtendedCompilation:
    def make_compiler(self):
        return NmslCompiler(
            CompilerOptions(
                extensions=(parse_extension(BILLING_EXTENSION),),
                register_codegen=False,
            )
        )

    def test_extended_keyword_accepted(self):
        compiler = self.make_compiler()
        result = compiler.compile(SPEC_WITH_BILLING)
        stored = result.specification.extension_clauses[("process", "meteredAgent")]
        assert stored == [("billing", ("12",))]

    def test_without_extension_rejected(self):
        compiler = NmslCompiler(CompilerOptions(register_codegen=False))
        with pytest.raises(NmslSemanticError, match="billing"):
            compiler.compile(SPEC_WITH_BILLING)

    def test_extension_output_tag(self):
        compiler = self.make_compiler()
        result = compiler.compile(SPEC_WITH_BILLING)
        bundle = compiler.generate("acct-report", result)
        assert "charge meteredAgent 12 cents per query" in bundle.text()

    def test_extension_adds_to_consistency_output(self):
        compiler = self.make_compiler()
        result = compiler.compile(SPEC_WITH_BILLING)
        bundle = compiler.generate("consistency", result)
        assert "billing_rate(meteredAgent, 12)." in bundle.text()
        # basic consistency facts are still present (not overridden)
        assert "proc_supports(meteredAgent," in bundle.text()

    def test_extension_decltype(self):
        extension = parse_extension(
            "extension org; decltype organization;\n"
            'output consistency for organization emit "org({name}).";'
        )
        compiler = NmslCompiler(
            CompilerOptions(extensions=(extension,), register_codegen=False)
        )
        result = compiler.compile(
            "organization acme ::= anything goes; end organization acme."
        )
        assert "organization" in result.specification.extras
        bundle = compiler.generate("consistency", result)
        assert "org(acme)." in bundle.text()

    def test_override_basic_output_action(self):
        """Prepending an action for an existing (tag, decltype) overrides it."""
        override = Extension(
            name="override",
            actions=(
                ExtensionAction(
                    tag="consistency",
                    decltype="type",
                    template="shadowed({name}).",
                ),
            ),
        )
        compiler = NmslCompiler(
            CompilerOptions(extensions=(override,), register_codegen=False)
        )
        result = compiler.compile(
            "type Foo ::= INTEGER; access ReadOnly; end type Foo."
        )
        text = compiler.generate("consistency", result).text()
        assert "shadowed(Foo)." in text
        assert "nm_type" not in text

    def test_override_is_per_tag_only(self):
        """The paper's DavesSnmpd example: overriding one tag does not
        disturb the generic action or other tags."""
        daves = Extension(
            name="daves",
            keywords=(KeywordEntry("queries", ("process",)),),
            actions=(
                ExtensionAction(
                    tag="DavesSnmpd",
                    decltype="process",
                    template="# daves config for {name}",
                ),
            ),
        )
        compiler = NmslCompiler(
            CompilerOptions(extensions=(daves,), register_codegen=False)
        )
        result = compiler.compile(
            "process p(T: Process) ::= queries T requests mgmt.mib "
            "frequency infrequent; end process p."
        )
        # generic action still built the typed query spec
        assert result.specification.processes["p"].queries
        # the new tag renders
        assert "# daves config for p" in compiler.generate("DavesSnmpd", result).text()
        # the consistency tag still renders the basic facts
        assert "proc_query(p," in compiler.generate("consistency", result).text()
