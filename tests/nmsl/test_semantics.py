"""Tests for pass-2 semantic checking and typed-spec construction."""

import pytest

from repro.errors import NmslSemanticError
from repro.mib.tree import Access
from repro.nmsl.compiler import NmslCompiler, CompilerOptions
from repro.workloads.paper import PAPER_SPEC_TEXT


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler(CompilerOptions(register_codegen=False))


@pytest.fixture(scope="module")
def paper(compiler):
    return compiler.compile(PAPER_SPEC_TEXT)


class TestPaperTypes:
    def test_both_types_built(self, paper):
        assert set(paper.specification.types) == {"ipAddrTable", "IpAddrEntry"}

    def test_access_clause(self, paper):
        assert paper.specification.types["ipAddrTable"].access is Access.READ_ONLY

    def test_access_inherited_is_none(self, paper):
        assert paper.specification.types["IpAddrEntry"].access is None

    def test_asn1_body_parsed(self, paper):
        entry = paper.specification.types["IpAddrEntry"].asn1_type
        assert entry.field_names() == (
            "ipAdEntAddr",
            "ipAdEntIfIndex",
            "ipAdEntNetMask",
            "ipAdEntBcastAddr",
        )


class TestPaperProcesses:
    def test_agent_and_application(self, paper):
        agent = paper.specification.processes["snmpdReadOnly"]
        app = paper.specification.processes["snmpaddr"]
        assert agent.is_agent() and not agent.is_application()
        assert app.is_application() and not app.is_agent()

    def test_agent_supports_full_mib(self, paper):
        agent = paper.specification.processes["snmpdReadOnly"]
        assert agent.supports == ("mgmt.mib",)

    def test_agent_export(self, paper):
        export = paper.specification.processes["snmpdReadOnly"].exports[0]
        assert export.to_domain == "public"
        assert export.access is Access.READ_ONLY
        assert export.frequency.min_period == 300

    def test_application_params(self, paper):
        app = paper.specification.processes["snmpaddr"]
        assert app.params == (("SysAddr", "Process"), ("Dest", "IpAddress"))

    def test_application_query(self, paper):
        query = paper.specification.processes["snmpaddr"].queries[0]
        assert query.target == "SysAddr"
        assert query.requests == ("mgmt.mib.ip.ipAddrTable.IpAddrEntry",)
        assert query.frequency.min_period == 3600

    def test_wrapped_using_path_joined(self, paper):
        query = paper.specification.processes["snmpaddr"].queries[0]
        assert query.using == (
            ("mgmt.mib.ip.ipAddrTable.IpAddrEntry.ipAdEntAddr", "Dest"),
        )


class TestPaperSystem:
    def test_hardware(self, paper):
        system = paper.specification.systems["romano.cs.wisc.edu"]
        assert system.cpu == "sparc"
        interface = system.interfaces[0]
        assert interface.name == "ie0"
        assert interface.network == "wisc-research"
        assert interface.if_type == "ethernet-csmacd"
        assert interface.speed_bps == 10_000_000

    def test_software(self, paper):
        system = paper.specification.systems["romano.cs.wisc.edu"]
        assert system.opsys == "SunOS"
        assert system.opsys_version == "4.0.1"

    def test_supports_excludes_egp(self, paper):
        system = paper.specification.systems["romano.cs.wisc.edu"]
        assert "mgmt.mib.egp" not in system.supports
        assert len(system.supports) == 7

    def test_process_invocation(self, paper):
        system = paper.specification.systems["romano.cs.wisc.edu"]
        assert system.processes[0].process_name == "snmpdReadOnly"
        assert system.processes[0].args == ()


class TestPaperDomain:
    def test_members(self, paper):
        domain = paper.specification.domains["wisc-cs"]
        assert domain.systems == ("romano.cs.wisc.edu", "cs.wisc.edu")

    def test_wildcard_invocation(self, paper):
        domain = paper.specification.domains["wisc-cs"]
        invocation = domain.processes[0]
        assert invocation.process_name == "snmpaddr"
        assert invocation.args == ("*", "*")

    def test_domain_export(self, paper):
        export = paper.specification.domains["wisc-cs"].exports[0]
        assert export.variables == ("mgmt.mib",)
        assert export.frequency.min_period == 300


class TestSemanticErrors:
    def fails_with(self, compiler, text, pattern):
        with pytest.raises(NmslSemanticError, match=pattern):
            compiler.compile(text)

    def test_unknown_mib_path(self, compiler):
        self.fails_with(
            compiler,
            "process p ::= supports mgmt.mib.nosuch; end process p.",
            "unknown MIB path",
        )

    def test_duplicate_specification(self, compiler):
        self.fails_with(
            compiler,
            "process p ::= supports mgmt.mib; end process p. "
            "process p ::= supports mgmt.mib; end process p.",
            "duplicate process",
        )

    def test_bad_access_mode(self, compiler):
        self.fails_with(
            compiler,
            'process p ::= supports mgmt.mib; '
            'exports mgmt.mib to "x" access Sometimes frequency infrequent; '
            "end process p.",
            "unknown access mode",
        )

    def test_exports_missing_to(self, compiler):
        self.fails_with(
            compiler,
            "process p ::= exports mgmt.mib access ReadOnly; end process p.",
            "missing 'to",
        )

    def test_queries_missing_requests(self, compiler):
        self.fails_with(
            compiler,
            "process p(T: Process) ::= queries T frequency infrequent; "
            "end process p.",
            "requests nothing",
        )

    def test_bad_frequency_unit(self, compiler):
        self.fails_with(
            compiler,
            "process p(T: Process) ::= queries T requests mgmt.mib "
            "frequency >= 5 days; end process p.",
            "unknown time unit",
        )

    def test_unknown_invoked_process(self, compiler):
        self.fails_with(
            compiler,
            'system "s" ::= cpu x; interface i net n type t speed 1 bps; '
            'opsys o version 1; process ghost; end system "s".',
            "unknown process 'ghost'",
        )

    def test_wrong_invocation_arity(self, compiler):
        self.fails_with(
            compiler,
            "process p(A: Process) ::= queries A requests mgmt.mib "
            "frequency infrequent; end process p. "
            "domain d ::= process p(x, y); end domain d.",
            "declares 1 parameters",
        )

    def test_unknown_domain_member_system(self, compiler):
        self.fails_with(
            compiler,
            "domain d ::= system ghost.example.com; end domain d.",
            "unknown system",
        )

    def test_domain_cycle(self, compiler):
        self.fails_with(
            compiler,
            "domain a ::= domain b; end domain a. "
            "domain b ::= domain a; end domain b.",
            "cycle",
        )

    def test_query_target_not_param_or_process(self, compiler):
        self.fails_with(
            compiler,
            "process p ::= queries ghost requests mgmt.mib "
            "frequency infrequent; end process p.",
            "unknown target",
        )

    def test_malformed_parameter(self, compiler):
        self.fails_with(
            compiler,
            "process p(Broken) ::= supports mgmt.mib; end process p.",
            "malformed parameter",
        )

    def test_type_with_bad_asn1(self, compiler):
        self.fails_with(
            compiler,
            "type T ::= SEQUENCE { a }; end type T.",
            "invalid ASN.1 body",
        )

    def test_unknown_clause_keyword(self, compiler):
        self.fails_with(
            compiler,
            "process p ::= gyrates wildly; end process p.",
            "not valid in a process",
        )

    def test_lax_mode_collects_errors(self, compiler):
        result = compiler.compile(
            "process p ::= supports mgmt.mib.nosuch, mgmt.mib.alsobad; "
            "end process p.",
            strict=False,
        )
        assert len(result.report.errors) == 2


class TestWarnings:
    def test_foreign_export_domain_warns(self, compiler):
        result = compiler.compile(
            'process p ::= supports mgmt.mib; exports mgmt.mib to "elsewhere" '
            "access ReadOnly frequency >= 5 minutes; end process p.",
        )
        assert any("foreign" in warning for warning in result.report.warnings)

    def test_public_domain_never_warns(self, compiler):
        result = compiler.compile(
            'process p ::= supports mgmt.mib; exports mgmt.mib to "public" '
            "access ReadOnly frequency >= 5 minutes; end process p.",
        )
        assert not result.report.warnings
