"""Round-trip tests: render a Specification to NMSL, recompile, compare.

The invariant: for specifications without type declarations (whose ASN.1
bodies the typed model does not store verbatim), ``compile(render(spec))``
is semantically equal to ``spec``.  Checked on hand-written cases, on the
campus scenario, and property-based over random synthetic internets.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.nmsl.pprint import render_process, render_specification, render_system
from repro.workloads.generator import InternetParameters, SyntheticInternet
from repro.workloads.scenarios import campus_internet


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler(CompilerOptions(register_codegen=False))


def normalise(spec):
    """A semantic fingerprint of a specification (order-insensitive)."""
    processes = {}
    for name, process in spec.processes.items():
        processes[name] = (
            process.params,
            tuple(sorted(process.supports)),
            tuple(
                sorted(
                    (e.variables, e.to_domain, e.access, e.frequency.as_tuple())
                    for e in process.exports
                )
            ),
            tuple(
                sorted(
                    (
                        q.target,
                        q.requests,
                        q.using,
                        q.kind,
                        q.access,
                        q.frequency.as_tuple(),
                    )
                    for q in process.queries
                )
            ),
            tuple(sorted((p.target_system, p.protocol) for p in process.proxies)),
        )
    systems = {}
    for name, system in spec.systems.items():
        systems[name] = (
            system.cpu,
            tuple(
                (i.name, i.network, i.if_type, i.speed_bps, i.protocols)
                for i in system.interfaces
            ),
            system.opsys,
            system.opsys_version,
            tuple(sorted(system.supports)),
            tuple((p.process_name, p.args) for p in system.processes),
        )
    domains = {}
    for name, domain in spec.domains.items():
        domains[name] = (
            tuple(sorted(domain.systems)),
            tuple(sorted(domain.subdomains)),
            tuple((p.process_name, p.args) for p in domain.processes),
            tuple(
                sorted(
                    (e.variables, e.to_domain, e.access, e.frequency.as_tuple())
                    for e in domain.exports
                )
            ),
        )
    return processes, systems, domains


class TestRoundTrip:
    def test_campus_round_trips(self, compiler):
        original = compiler.compile(campus_internet()).specification
        rendered = render_specification(original)
        recompiled = compiler.compile(rendered).specification
        assert normalise(recompiled) == normalise(original)

    def test_synthetic_round_trips(self, compiler):
        internet = SyntheticInternet(
            InternetParameters(n_domains=3, systems_per_domain=2, fast_pollers=(1,))
        )
        original = internet.specification()
        recompiled = compiler.compile(render_specification(original)).specification
        assert normalise(recompiled) == normalise(original)

    def test_full_language_round_trips(self, compiler):
        text = """
process bridgeProxy ::=
    supports mgmt.mib.interfaces;
    proxies bridge.example via bridgeTalk;
    exports mgmt.mib.interfaces to "ops"
        access ReadOnly
        frequency >= 5 minutes;
end process bridgeProxy.

process setter(T: Process; V: IpAddress) ::=
    queries T
        modifies mgmt.mib.at
        using mgmt.mib.at.atTable.AtEntry.atNetAddress := V
        frequency infrequent;
end process setter.

system "bridge.example" ::=
    cpu z80;
    interface p0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys firmware version 2;
    supports mgmt.mib.interfaces;
end system "bridge.example".

system "host.example" ::=
    cpu sparc;
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.interfaces, mgmt.mib.at;
    process bridgeProxy;
end system "host.example".

domain lab ::=
    system bridge.example;
    system host.example;
    process setter(host.example, *);
end domain lab.
"""
        original = compiler.compile(text).specification
        recompiled = compiler.compile(render_specification(original)).specification
        assert normalise(recompiled) == normalise(original)

    def test_render_is_stable(self, compiler):
        """render(compile(render(x))) == render(x): a fixed point."""
        original = compiler.compile(campus_internet()).specification
        once = render_specification(original)
        twice = render_specification(compiler.compile(once).specification)
        assert once == twice


class TestRenderedForms:
    def test_process_with_params(self, compiler):
        spec = compiler.compile(
            "process p(A: Process; B: IpAddress) ::= "
            "queries A requests mgmt.mib frequency infrequent; end process p."
        ).specification
        text = render_process(spec.processes["p"])
        assert text.startswith("process p(A: Process; B: IpAddress) ::=")
        assert "frequency infrequent;" in text

    def test_quoted_system_name(self, compiler):
        spec = compiler.compile(
            'system "a.b.c" ::= cpu x; interface i net n type t speed 1 bps; '
            'opsys o version 1; supports mgmt.mib.system; end system "a.b.c".'
        ).specification
        text = render_system(spec.systems["a.b.c"])
        # Dotted names stay words; the trailing-dot ambiguity is handled by
        # the lexer, so no quoting is required.
        assert "system a.b.c ::=" in text

    def test_wildcard_rendering(self, compiler):
        spec = compiler.compile(
            "process p(A: Process) ::= queries A requests mgmt.mib "
            "frequency infrequent; end process p. "
            "domain d ::= process p(*); end domain d."
        ).specification
        from repro.nmsl.pprint import render_domain

        assert "process p(*);" in render_domain(spec.domains["d"])


class TestPropertyBased:
    @settings(max_examples=15, deadline=None)
    @given(
        n_domains=st.integers(2, 4),
        systems=st.integers(1, 3),
        apps=st.integers(1, 2),
        export_minutes=st.sampled_from([1.0, 5.0, 10.0]),
        query_minutes=st.sampled_from([5.0, 15.0, 60.0]),
    )
    def test_synthetic_internets_round_trip(
        self, n_domains, systems, apps, export_minutes, query_minutes
    ):
        compiler = NmslCompiler(CompilerOptions(register_codegen=False))
        internet = SyntheticInternet(
            InternetParameters(
                n_domains=n_domains,
                systems_per_domain=systems,
                applications_per_domain=apps,
                export_period_s=export_minutes * 60,
                query_period_s=query_minutes * 60,
            )
        )
        original = internet.specification()
        recompiled = compiler.compile(
            render_specification(original)
        ).specification
        assert normalise(recompiled) == normalise(original)
