"""Tests for the pass-1 generalized parser (paper Figure 6.1)."""

import pytest

from repro.errors import NmslSyntaxError
from repro.nmsl.generic import parse_generic
from repro.workloads.paper import (
    FIG_42_TYPE_SPECS,
    FIG_44_PROCESS_SPECS,
    FIG_46_SYSTEM_SPEC,
    FIG_48_DOMAIN_SPEC,
    PAPER_SPEC_TEXT,
)


class TestBasicShape:
    def test_single_declaration(self):
        (decl,) = parse_generic("process p ::= supports mgmt.mib; end process p.")
        assert decl.decltype == "process"
        assert decl.name == "p"
        assert len(decl.clauses) == 1

    def test_multiple_declarations(self):
        decls = parse_generic(
            "process a ::= supports x; end process a. "
            "domain b ::= system s; end domain b."
        )
        assert [d.decltype for d in decls] == ["process", "domain"]

    def test_quoted_name(self):
        (decl,) = parse_generic(
            'system "host.example.com" ::= cpu sparc; end system "host.example.com".'
        )
        assert decl.name == "host.example.com"

    def test_params_parsed(self):
        (decl,) = parse_generic(
            "process p(A: Process; B: IpAddress) ::= "
            "queries A requests x frequency infrequent; end process p."
        )
        assert len(decl.params) == 2
        assert [t.text for t in decl.params[0]] == ["A", ":", "Process"]

    def test_empty_params(self):
        (decl,) = parse_generic(
            "process p() ::= supports mgmt.mib; end process p."
        )
        assert decl.params == []

    def test_clause_raw_text_preserved(self):
        text = "type T ::= SEQUENCE of Foo; end type T."
        (decl,) = parse_generic(text)
        assert decl.clauses[0].raw_text == "SEQUENCE of Foo"

    def test_nested_parens_inside_clause(self):
        (decl,) = parse_generic(
            "type T ::= SEQUENCE ( a INTEGER, b SEQUENCE ( c INTEGER ) ); end type T."
        )
        assert len(decl.clauses) == 1

    def test_clauses_starting_helper(self):
        (decl,) = parse_generic(
            "system s ::= cpu sparc; process a; process b; end system s."
        )
        assert len(decl.clauses_starting("process")) == 2


class TestErrors:
    def test_mismatched_end_type(self):
        with pytest.raises(NmslSyntaxError, match="does not match"):
            parse_generic("process p ::= supports x; end domain p.")

    def test_mismatched_end_name(self):
        with pytest.raises(NmslSyntaxError, match="does not match"):
            parse_generic("process p ::= supports x; end process q.")

    def test_missing_final_period(self):
        with pytest.raises(NmslSyntaxError):
            parse_generic("process p ::= supports x; end process p")

    def test_missing_assignment(self):
        with pytest.raises(NmslSyntaxError, match="::="):
            parse_generic("process p supports x; end process p.")

    def test_unterminated_clause(self):
        with pytest.raises(NmslSyntaxError):
            parse_generic("process p ::= supports x end")

    def test_missing_end(self):
        with pytest.raises(NmslSyntaxError, match="terminated"):
            parse_generic("process p ::= supports x;")

    def test_unbalanced_paren_in_clause(self):
        with pytest.raises(NmslSyntaxError, match="unbalanced"):
            parse_generic("process p ::= supports x); end process p.")

    def test_empty_clause(self):
        with pytest.raises(NmslSyntaxError, match="empty clause"):
            parse_generic("process p ::= ; end process p.")

    def test_generalized_grammar_accepts_unknown_decltypes(self):
        """Pass 1 accepts any decltype; differentiation is pass 2's job."""
        (decl,) = parse_generic(
            "gadget g ::= whirr quietly; end gadget g."
        )
        assert decl.decltype == "gadget"


class TestPaperFigures:
    def test_figure_42_parses(self):
        decls = parse_generic(FIG_42_TYPE_SPECS)
        assert [d.name for d in decls] == ["ipAddrTable", "IpAddrEntry"]
        # first clause of the first type is the ASN.1 body
        assert decls[0].clauses[0].raw_text.startswith("SEQUENCE of")

    def test_figure_44_parses(self):
        decls = parse_generic(FIG_44_PROCESS_SPECS)
        assert [d.name for d in decls] == ["snmpdReadOnly", "snmpaddr"]
        snmpaddr = decls[1]
        assert len(snmpaddr.params) == 2

    def test_figure_46_parses(self):
        (decl,) = parse_generic(FIG_46_SYSTEM_SPEC)
        assert decl.decltype == "system"
        assert decl.name == "romano.cs.wisc.edu"
        assert len(decl.clauses) == 5  # cpu, interface, opsys, supports, process

    def test_figure_48_parses(self):
        (decl,) = parse_generic(FIG_48_DOMAIN_SPEC)
        assert decl.decltype == "domain"
        assert decl.name == "wisc-cs"
        assert len(decl.clauses) == 4  # two systems, one process, one exports

    def test_all_figures_together(self):
        decls = parse_generic(PAPER_SPEC_TEXT)
        assert len(decls) == 7
