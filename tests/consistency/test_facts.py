"""Tests for fact generation from the typed specification."""

import pytest

from repro.clpr.program import parse_program
from repro.consistency.facts import FactGenerator
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.workloads.paper import PAPER_SPEC_TEXT


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler(CompilerOptions(register_codegen=False))


@pytest.fixture(scope="module")
def facts(compiler):
    result = compiler.compile(PAPER_SPEC_TEXT)
    return FactGenerator(result.specification, compiler.tree).generate()


class TestInstantiation:
    def test_instance_per_invocation(self, facts):
        # 2 agents (one per system) + 1 snmpaddr in the domain.
        assert len(facts.instances) == 3

    def test_instance_ids_unique(self, facts):
        ids = [instance.id for instance in facts.instances]
        assert len(set(ids)) == len(ids)

    def test_owner_kinds(self, facts):
        kinds = {instance.owner_kind for instance in facts.instances}
        assert kinds == {"system", "domain"}

    def test_agents_classified(self, facts):
        agents = facts.agents()
        assert len(agents) == 2
        assert all(agent.process_name == "snmpdReadOnly" for agent in agents)

    def test_instances_on_system(self, facts):
        found = facts.instances_on_system("romano.cs.wisc.edu")
        assert len(found) == 1

    def test_instances_of_process(self, facts):
        assert len(facts.instances_of_process("snmpaddr")) == 1


class TestContainment:
    def test_domain_contains_systems(self, facts):
        assert ("domain:wisc-cs", "system:romano.cs.wisc.edu") in facts.containment

    def test_owner_contains_instances(self, facts):
        instance_edges = [
            edge for edge in facts.containment if edge[1].startswith("instance:")
        ]
        assert len(instance_edges) == 3

    def test_transitive_closure(self, facts):
        closure = facts.transitive_containment()
        agent = facts.instances_on_system("romano.cs.wisc.edu")[0]
        containers = closure[f"instance:{agent.id}"]
        assert "domain:wisc-cs" in containers
        assert "system:romano.cs.wisc.edu" in containers

    def test_domains_of_instance(self, facts):
        agent = facts.instances_on_system("romano.cs.wisc.edu")[0]
        assert facts.domains_of_instance(agent) == ("wisc-cs",)

    def test_direct_domains(self, facts):
        agent = facts.instances_on_system("romano.cs.wisc.edu")[0]
        assert facts.direct_domains_of_instance(agent) == ("wisc-cs",)
        app = facts.instances_of_process("snmpaddr")[0]
        assert facts.direct_domains_of_instance(app) == ("wisc-cs",)


class TestReferencesAndPermissions:
    def test_reference_expanded_per_instance(self, facts):
        (reference,) = facts.references
        assert reference.server == "*"  # wildcard parameter
        assert reference.client_domains == ("wisc-cs",)
        assert reference.frequency.min_period == 3600

    def test_permissions_from_processes_and_domains(self, facts):
        grantors = {permission.grantor for permission in facts.permissions}
        assert "domain:wisc-cs" in grantors
        assert any(g.startswith("instance:snmpdReadOnly@") for g in grantors)

    def test_permission_details(self, facts):
        domain_perm = next(
            p for p in facts.permissions if p.grantor == "domain:wisc-cs"
        )
        assert domain_perm.grantee_domain == "public"
        assert domain_perm.frequency.min_period == 300


class TestViews:
    def test_system_view_excludes_egp(self, facts):
        view = facts.system_supports["romano.cs.wisc.edu"]
        assert view.covers_path("mgmt.mib.ip")
        assert not view.covers_path("mgmt.mib.egp")

    def test_instance_view_full_mib(self, facts):
        agent = facts.instances_on_system("romano.cs.wisc.edu")[0]
        assert facts.instance_supports[agent.id].covers_path("mgmt.mib.egp")


class TestClprText:
    def test_parses(self, facts):
        program = parse_program(facts.to_clpr_text())
        assert len(program) > 30

    def test_hierarchical_facts(self, facts):
        text = facts.to_clpr_text()
        assert "contains(domain('wisc-cs'), instance('snmpaddr@wisc-cs#" in text

    def test_data_covers_reflexive(self, facts):
        text = facts.to_clpr_text()
        assert "data_covers('mgmt.mib', 'mgmt.mib')." in text


class TestTargetClassification:
    def test_literal_targets(self, compiler):
        result = compiler.compile(
            """
process a ::= supports mgmt.mib; end process a.
system "s1" ::=
    cpu x; interface i net n type t speed 1 bps; opsys o version 1;
    supports mgmt.mib.system;
    process a;
end system "s1".
process byproc(T: Process) ::=
    queries T requests mgmt.mib.system frequency infrequent;
end process byproc.
domain d ::=
    system s1;
    process byproc(a);
    process byproc(s1);
    process byproc(10.0.0.1);
end domain d.
"""
        )
        facts = FactGenerator(result.specification, compiler.tree).generate()
        servers = sorted(reference.server for reference in facts.references)
        assert servers == ["external:10.0.0.1", "process:a", "system:s1"]
