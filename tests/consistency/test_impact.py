"""The relational impact analyzer against its brute-force definition.

Two families of guarantees:

* **identity** — diffing a revision against itself yields an empty
  impact set, over the same seeded 50-spec corpus the differential
  oracle uses (an analyzer that invents impact out of a no-op delta
  would make every rollout gate cry wolf);
* **equivalence** — on random single-edit deltas, the verdict flips the
  incremental analyzer reports equal the flips obtained by two fresh
  full checks of A and B (Hypothesis property; the impact set must be a
  *view* of the semantics, never an approximation of it).
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.checker import ConsistencyChecker
from repro.consistency.impact import (
    ImpactAnalyzer,
    _flip_kind,
    _verdict_signature,
    grantor_permission_changes,
    impacted_elements,
)
from repro.consistency.evolution import diff_specifications
from repro.consistency.relations import Permission
from repro.mib.tree import Access
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.nmsl.frequency import FrequencySpec
from repro.workloads.generator import InternetParameters, SyntheticInternet

#: Same corpus contract as tests/consistency/test_differential.py.
CORPUS_SIZE = 50
CORPUS_SEED = 1989

_COMPILER = NmslCompiler(CompilerOptions(register_codegen=False))
TREE = _COMPILER.tree


def _draw_parameters(rng: random.Random) -> InternetParameters:
    """One random internet (duplicated from the differential oracle)."""
    n_domains = rng.randint(2, 4)
    systems = rng.randint(1, 3)
    applications = rng.randint(1, 2)
    poller_slots = n_domains * applications
    return InternetParameters(
        n_domains=n_domains,
        systems_per_domain=systems,
        applications_per_domain=applications,
        silent_domains=tuple(
            sorted(
                rng.sample(
                    range(n_domains), k=rng.randint(0, min(2, n_domains - 1))
                )
            )
        ),
        fast_pollers=tuple(
            sorted(rng.sample(range(poller_slots), k=rng.randint(0, 2)))
        ),
        egp_pollers=tuple(
            sorted(rng.sample(range(poller_slots), k=rng.randint(0, 1)))
        ),
        seed=rng.randint(0, 2**31),
    )


def _corpus():
    rng = random.Random(CORPUS_SEED)
    return [_draw_parameters(rng) for _ in range(CORPUS_SIZE)]


# ----------------------------------------------------------------------
# Single-edit delta constructors over compiled specifications.
# ----------------------------------------------------------------------
def _replace_domain(spec, name, domain):
    domains = dict(spec.domains)
    domains[name] = domain
    return dataclasses.replace(spec, domains=domains)


def _edit_exports(spec, name, edit):
    domain = spec.domains[name]
    return _replace_domain(
        spec,
        name,
        dataclasses.replace(
            domain,
            exports=tuple(edit(export) for export in domain.exports),
        ),
    )


def _drop_exports(spec, name):
    return _replace_domain(
        spec, name, dataclasses.replace(spec.domains[name], exports=())
    )


def _widen_access(spec, name):
    return _edit_exports(
        spec,
        name,
        lambda export: dataclasses.replace(export, access=Access.READ_WRITE),
    )


def _loosen_frequency(spec, name):
    return _edit_exports(
        spec,
        name,
        lambda export: dataclasses.replace(
            export, frequency=FrequencySpec.unconstrained()
        ),
    )


def _tighten_frequency(spec, name):
    def edit(export):
        floor = max(export.frequency.min_period, 1.0)
        return dataclasses.replace(
            export, frequency=FrequencySpec.at_most_every(floor * 4)
        )

    return _edit_exports(spec, name, edit)


EDITS = {
    "drop": _drop_exports,
    "widen": _widen_access,
    "loosen": _loosen_frequency,
    "tighten": _tighten_frequency,
}


def _pick_domain(spec, position):
    names = sorted(spec.domains)
    return names[position % len(names)]


def _brute_force_flips(spec_a, spec_b):
    """Verdict flips by definition: two fresh full checks, keyed align."""
    checker_a = ConsistencyChecker(spec_a, TREE)
    checker_a.check()
    checker_b = ConsistencyChecker(spec_b, TREE)
    checker_b.check()
    key = ConsistencyChecker._reference_key
    old = {
        key(reference): tuple(problems)
        for reference, problems in checker_a.reference_verdicts()
    }
    new = {
        key(reference): tuple(problems)
        for reference, problems in checker_b.reference_verdicts()
    }
    flips = {}
    for reference_key, new_problems in new.items():
        old_problems = old.get(reference_key, ())
        if _verdict_signature(old_problems) != _verdict_signature(
            new_problems
        ):
            flips[reference_key] = _flip_kind(old_problems, new_problems)
    for reference_key, old_problems in old.items():
        if reference_key not in new and old_problems:
            flips[reference_key] = "fixed"
    return flips


# ----------------------------------------------------------------------
# Identity: self-diff over the corpus is empty.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "parameters",
    _corpus(),
    ids=[f"spec{i:02d}" for i in range(CORPUS_SIZE)],
)
def test_self_diff_is_empty(parameters):
    specification = SyntheticInternet(parameters).specification()
    analyzer = ImpactAnalyzer(TREE)
    analyzer.baseline(specification)
    impact = analyzer.analyze(specification)
    assert impact.is_empty(), (
        f"self-diff invented impact on {parameters!r}: "
        f"{impact.verdict_flips} {impact.permission_changes} "
        f"{impact.config_changes} {impact.orphaned}"
    )
    assert impact.stats["diff_entries"] == 0
    assert not impact.impacted_elements
    assert not impact.redrive_elements()


# ----------------------------------------------------------------------
# Equivalence: incremental flips == brute-force flips (Hypothesis).
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    edit=st.sampled_from(sorted(EDITS)),
    position=st.integers(min_value=0, max_value=7),
)
def test_flips_equal_brute_force(seed, edit, position):
    parameters = _draw_parameters(random.Random(seed))
    spec_a = SyntheticInternet(parameters).specification()
    name = _pick_domain(spec_a, position)
    spec_b = EDITS[edit](spec_a, name)

    analyzer = ImpactAnalyzer(TREE, tags=())  # skip codegen: flips only
    analyzer.baseline(spec_a)
    impact = analyzer.analyze(spec_b)

    key = ConsistencyChecker._reference_key
    incremental = {
        key(flip.reference): flip.kind for flip in impact.verdict_flips
    }
    assert incremental == _brute_force_flips(spec_a, spec_b)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    position=st.integers(min_value=0, max_value=7),
)
def test_widening_edit_is_reported_widened(seed, position):
    parameters = _draw_parameters(random.Random(seed))
    spec_a = SyntheticInternet(parameters).specification()
    name = _pick_domain(spec_a, position)
    spec_b = _widen_access(spec_a, name)

    analyzer = ImpactAnalyzer(TREE, tags=())
    analyzer.baseline(spec_a)
    impact = analyzer.analyze(spec_b)

    readonly_exports = [
        export
        for export in spec_a.domains[name].exports
        if export.access is not Access.READ_WRITE
    ]
    widened = impact.widened()
    if readonly_exports:
        assert widened, f"ReadOnly->ReadWrite on {name} not flagged"
        for change in widened:
            assert change.grantor == f"domain:{name}"
            assert "access" in change.dimensions
    else:
        assert not widened  # nothing to widen => nothing invented
    # A pure widening never tightens any frequency budget.
    assert not any(
        change.kind == "tightened" and "frequency" in change.dimensions
        for change in impact.permission_changes
    )


# ----------------------------------------------------------------------
# The grant-coverage algebra on hand-built permissions.
# ----------------------------------------------------------------------
def _grant(access=Access.READ_ONLY, seconds=300.0, grantee="noc",
           variables=("mgmt.mib",)):
    return Permission(
        grantor="domain:lab",
        grantor_domains=("lab",),
        grantee_domain=grantee,
        variables=variables,
        access=access,
        frequency=FrequencySpec.at_most_every(seconds),
    )


class TestGrantAlgebra:
    def view(self, paths):
        return ConsistencyChecker(
            SyntheticInternet(
                InternetParameters(n_domains=2, seed=1)
            ).specification(),
            TREE,
        ).view(paths)

    def test_identical_grants_cancel(self):
        grants = [_grant(), _grant(seconds=60.0)]
        assert grantor_permission_changes(
            "domain:lab", grants, list(grants), self.view
        ) == []

    def test_access_raise_is_widened(self):
        changes = grantor_permission_changes(
            "domain:lab",
            [_grant()],
            [_grant(access=Access.READ_WRITE)],
            self.view,
        )
        widened = [c for c in changes if c.kind == "widened"]
        assert len(widened) == 1
        assert widened[0].dimensions == ("access",)
        # The dropped ReadOnly grant is covered by ReadWrite: benign.
        assert {c.kind for c in changes} == {"widened", "removed"}

    def test_frequency_tightening_is_flagged(self):
        changes = grantor_permission_changes(
            "domain:lab",
            [_grant(seconds=300.0)],
            [_grant(seconds=1200.0)],
            self.view,
        )
        tightened = [c for c in changes if c.kind == "tightened"]
        assert len(tightened) == 1
        assert "frequency" in tightened[0].dimensions
        # ...and the new, stricter budget is itself a new grant the old
        # one covered, so it reads as "added", not "widened".
        assert not [c for c in changes if c.kind == "widened"]

    def test_public_grant_covers_any_grantee(self):
        changes = grantor_permission_changes(
            "domain:lab",
            [_grant(grantee="public")],
            [_grant(grantee="public"), _grant(grantee="engr")],
            self.view,
        )
        assert {c.kind for c in changes} == {"added"}

    def test_new_grantee_is_widened(self):
        changes = grantor_permission_changes(
            "domain:lab",
            [_grant(grantee="noc")],
            [_grant(grantee="noc"), _grant(grantee="engr")],
            self.view,
        )
        widened = [c for c in changes if c.kind == "widened"]
        assert len(widened) == 1
        assert "grantee" in widened[0].dimensions


# ----------------------------------------------------------------------
# Impacted-element closure.
# ----------------------------------------------------------------------
def test_impacted_elements_follow_subdomain_closure():
    text = """
process agent ::= supports mgmt.mib.system; end process agent.
system "a.example" ::=
    cpu sparc;
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system;
    process agent;
end system "a.example".
system "b.example" ::=
    cpu sparc;
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system;
    process agent;
end system "b.example".
domain inner ::= system b.example; end domain inner.
domain outer ::=
    system a.example;
    domain inner;
    exports mgmt.mib.system to "public"
        access ReadOnly frequency >= 5 minutes;
end domain outer.
"""
    spec_a = _COMPILER.compile(text).specification
    spec_b = _drop_exports(spec_a, "outer")
    diff = diff_specifications(spec_a, spec_b)
    impacted = impacted_elements(diff, spec_a, spec_b)
    # Editing "outer" taints its member system AND inner's, transitively.
    assert impacted == {"a.example", "b.example"}


def test_orphaned_elements_are_reported():
    parameters = InternetParameters(
        n_domains=2, systems_per_domain=2, seed=7
    )
    spec_a = SyntheticInternet(parameters).specification()
    victim = sorted(spec_a.systems)[0]
    systems = {
        name: system
        for name, system in spec_a.systems.items()
        if name != victim
    }
    domains = {
        name: dataclasses.replace(
            domain,
            systems=tuple(s for s in domain.systems if s != victim),
        )
        for name, domain in spec_a.domains.items()
    }
    spec_b = dataclasses.replace(spec_a, systems=systems, domains=domains)

    analyzer = ImpactAnalyzer(TREE)
    analyzer.baseline(spec_a)
    impact = analyzer.analyze(spec_b)
    assert victim in impact.orphaned
    # An orphan has no B-side configuration, so it is not a redrive.
    assert victim not in impact.redrive_elements()


def test_chained_analyze_diffs_against_last_revision():
    parameters = InternetParameters(
        n_domains=3, systems_per_domain=2, seed=11
    )
    spec_a = SyntheticInternet(parameters).specification()
    name = _pick_domain(spec_a, 1)
    spec_b = _widen_access(spec_a, name)

    analyzer = ImpactAnalyzer(TREE, tags=())
    analyzer.baseline(spec_a)
    first = analyzer.analyze(spec_b)
    assert first.widened() or not spec_a.domains[name].exports
    # Analyzing B again now diffs B against B: empty.
    second = analyzer.analyze(spec_b)
    assert second.is_empty()
