"""Tests for specification diffing and incremental re-checking."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency.checker import ConsistencyChecker
from repro.consistency.evolution import (
    DeltaChecker,
    diff_specifications,
)
from repro.mib.tree import Access
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.nmsl.frequency import FrequencySpec
from repro.nmsl.specs import ExportSpec
from repro.workloads.generator import InternetParameters, SyntheticInternet
from repro.workloads.scenarios import campus_internet


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler(CompilerOptions(register_codegen=False))


class TestDiff:
    def test_identical_specs_empty_diff(self, compiler):
        a = compiler.compile(campus_internet()).specification
        b = compiler.compile(campus_internet()).specification
        diff = diff_specifications(a, b)
        assert diff.is_empty()
        assert diff.render() == "no changes"

    def test_changed_export_detected(self, compiler):
        a = compiler.compile(campus_internet()).specification
        b = compiler.compile(campus_internet(include_noc_permission=False)).specification
        diff = diff_specifications(a, b)
        assert diff.changed_names("domain") == {"engr-domain"}

    def test_changed_process_detected(self, compiler):
        a = compiler.compile(campus_internet()).specification
        b = compiler.compile(campus_internet(noc_frequency_minutes=1.0)).specification
        diff = diff_specifications(a, b)
        assert diff.changed_names("process") == {"nocMonitor"}

    def test_added_and_removed(self, compiler):
        from repro.workloads.scenarios import new_organization

        a = compiler.compile(campus_internet()).specification
        b = compiler.compile(campus_internet() + new_organization()).specification
        diff = diff_specifications(a, b)
        assert "newdept-domain" in diff.changed_names("domain")
        back = diff_specifications(b, a)
        assert any(entry.change == "removed" for entry in back.entries)

    def test_render_lists_entries(self, compiler):
        a = compiler.compile(campus_internet()).specification
        b = compiler.compile(campus_internet(noc_frequency_minutes=1.0)).specification
        assert "changed process nocMonitor" in diff_specifications(a, b).render()


class TestDeltaChecker:
    def test_first_check_is_full(self, compiler):
        checker = DeltaChecker(compiler.tree)
        spec = compiler.compile(campus_internet()).specification
        outcome = checker.check(spec)
        assert outcome.consistent
        assert checker.last_reused == 0

    def test_unchanged_respec_reuses_everything(self, compiler):
        checker = DeltaChecker(compiler.tree)
        checker.check(compiler.compile(campus_internet()).specification)
        outcome = checker.check(compiler.compile(campus_internet()).specification)
        assert outcome.consistent
        assert outcome.stats["rechecked"] == 0
        assert outcome.stats["reused"] == outcome.stats["references"]

    def test_detects_newly_introduced_problem(self, compiler):
        checker = DeltaChecker(compiler.tree)
        checker.check(compiler.compile(campus_internet()).specification)
        outcome = checker.check(
            compiler.compile(campus_internet(noc_frequency_minutes=1.0)).specification
        )
        assert not outcome.consistent
        assert outcome.stats["rechecked"] > 0

    def test_detects_fixed_problem(self, compiler):
        checker = DeltaChecker(compiler.tree)
        first = checker.check(
            compiler.compile(
                campus_internet(include_noc_permission=False)
            ).specification
        )
        assert not first.consistent
        second = checker.check(compiler.compile(campus_internet()).specification)
        assert second.consistent

    def test_partial_recheck_on_local_change(self, compiler):
        """Changing one domain's export leaves other references untouched."""
        checker = DeltaChecker(compiler.tree)
        base = SyntheticInternet(
            InternetParameters(n_domains=6, systems_per_domain=2)
        )
        checker.check(base.specification())
        # Silence one domain: only the pollers targeting it are affected.
        changed = SyntheticInternet(
            InternetParameters(n_domains=6, systems_per_domain=2, silent_domains=(3,))
        )
        outcome = checker.check(changed.specification())
        assert not outcome.consistent
        assert 0 < outcome.stats["rechecked"] < outcome.stats["references"]
        assert outcome.stats["reused"] > 0


class TestDeltaEquivalence:
    """The delta check must agree with a from-scratch full check."""

    @settings(max_examples=12, deadline=None)
    @given(
        before_silent=st.sets(st.integers(0, 3), max_size=1).map(tuple),
        after_silent=st.sets(st.integers(0, 3), max_size=2).map(tuple),
        after_fast=st.sets(st.integers(0, 7), max_size=2).map(tuple),
    )
    def test_equivalence(self, before_silent, after_silent, after_fast):
        compiler = NmslCompiler(CompilerOptions(register_codegen=False))
        before = SyntheticInternet(
            InternetParameters(
                n_domains=4, systems_per_domain=2, silent_domains=before_silent
            )
        ).specification()
        after_params = InternetParameters(
            n_domains=4,
            systems_per_domain=2,
            silent_domains=after_silent,
            fast_pollers=after_fast,
        )
        after = SyntheticInternet(after_params).specification()

        delta = DeltaChecker(compiler.tree)
        delta.check(before)
        incremental = delta.check(after)
        full = ConsistencyChecker(after, compiler.tree).check()
        assert incremental.consistent == full.consistent
        assert len(incremental.inconsistencies) == len(full.inconsistencies)
