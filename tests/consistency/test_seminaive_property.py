"""Property test: the compiled semi-naive engine equals the naive oracle.

:func:`repro.consistency.seminaive.seminaive_fixpoint` compiles each
rule to specialized closures, joins through lazy hash indexes and only
revisits the delta of each round.  :func:`naive_fixpoint` is the
textbook engine — re-scan every rule against every fact until nothing
new appears — kept precisely so the fast path has an executable
specification.  Hypothesis draws random safe rule/fact sets (seeded and
derandomized, so failures shrink and reproduce) and asserts both reach
the same fixpoint.

The generator mirrors datalog's termination conditions: constructor
terms (``("f", X)``) may appear in *body* patterns, where they only
destructure existing facts, but heads are function-free — vars and
constants only — so the Herbrand base stays finite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.seminaive import (
    Guard,
    Literal,
    Rule,
    Var,
    naive_fixpoint,
    seminaive_fixpoint,
)

#: The predicate universe: name -> arity.
PREDICATES = {"p": 1, "q": 2, "r": 2}

VARS = tuple(Var(name) for name in ("X", "Y", "Z"))

constants = st.integers(min_value=0, max_value=3)

#: A ground argument: an int, or a one-level constructor over an int.
ground_args = st.one_of(
    constants, st.tuples(st.just("f"), constants)
)


@st.composite
def facts(draw):
    pred = draw(st.sampled_from(sorted(PREDICATES)))
    args = tuple(
        draw(ground_args) for _ in range(PREDICATES[pred])
    )
    return (pred, *args)


@st.composite
def body_patterns(draw):
    """A body argument: var, constant, or destructuring constructor."""
    choice = draw(st.integers(min_value=0, max_value=3))
    if choice == 0:
        return draw(st.sampled_from(VARS))
    if choice == 1:
        return draw(constants)
    if choice == 2:
        return ("f", draw(st.sampled_from(VARS)))
    return ("f", draw(constants))


@st.composite
def rules(draw):
    body = []
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        pred = draw(st.sampled_from(sorted(PREDICATES)))
        args = tuple(
            draw(body_patterns()) for _ in range(PREDICATES[pred])
        )
        body.append(Literal(pred, args))
    bound = sorted(
        {var for literal in body for var in literal.variables()},
        key=lambda var: var.name,
    )
    head_choices = list(bound) or [draw(constants)]
    head_pred = draw(st.sampled_from(sorted(PREDICATES)))
    head = Literal(
        head_pred,
        tuple(
            draw(st.sampled_from(head_choices))
            if draw(st.booleans())
            else draw(constants)
            for _ in range(PREDICATES[head_pred])
        ),
    )
    guards = ()
    if bound and draw(st.booleans()):
        # Guards compare ints; vars may bind to constructor tuples at
        # run time, where both engines must agree the guard fails.
        guards = (
            Guard(
                draw(st.sampled_from(["<", "=<", ">", ">="])),
                draw(st.sampled_from(bound)),
                draw(constants),
            ),
        )
    return Rule(head, tuple(body), guards)


@settings(max_examples=80, deadline=None, derandomize=True)
@given(
    base=st.lists(facts(), min_size=0, max_size=12),
    program=st.lists(rules(), min_size=0, max_size=4),
)
def test_seminaive_matches_naive_fixpoint(base, program):
    fast = seminaive_fixpoint(base, program)
    slow = naive_fixpoint(base, program)
    assert set(fast.all_facts()) == slow
    # Every base fact survives verbatim (interning must not drop).
    assert set(base) <= set(fast.all_facts())
