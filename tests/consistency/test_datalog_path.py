"""Tests for the bottom-up (datalog) consistency engine."""

import pytest

from repro.consistency.checker import ConsistencyChecker, check_with_clpr
from repro.consistency.datalog_path import check_with_datalog
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.workloads.generator import InternetParameters, SyntheticInternet
from repro.workloads.paper import PAPER_SPEC_TEXT
from repro.workloads.scenarios import campus_internet


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler(CompilerOptions(register_codegen=False))


class TestVerdicts:
    def test_paper_consistent(self, compiler):
        spec = compiler.compile(PAPER_SPEC_TEXT).specification
        outcome = check_with_datalog(spec, compiler.tree)
        assert outcome.consistent
        assert outcome.stats["engine"] == "datalog-seminaive"
        assert outcome.stats["derived_facts"] > 0

    def test_campus_consistent(self, compiler):
        spec = compiler.compile(campus_internet()).specification
        assert check_with_datalog(spec, compiler.tree).consistent

    def test_missing_permission_found(self, compiler):
        spec = compiler.compile(
            campus_internet(include_noc_permission=False)
        ).specification
        outcome = check_with_datalog(spec, compiler.tree)
        assert not outcome.consistent

    def test_frequency_conflict_found(self, compiler):
        spec = compiler.compile(
            campus_internet(noc_frequency_minutes=1.0)
        ).specification
        assert not check_with_datalog(spec, compiler.tree).consistent

    def test_provenance_in_causes(self, compiler):
        spec = compiler.compile(
            campus_internet(include_noc_permission=False)
        ).specification
        outcome = check_with_datalog(spec, compiler.tree)
        (first, *_rest) = outcome.inconsistencies
        assert first.causes
        assert "ref_inst" in first.causes[0]


class TestThreeEngineAgreement:
    CASES = [
        InternetParameters(n_domains=3, systems_per_domain=2),
        InternetParameters(n_domains=3, systems_per_domain=2, silent_domains=(1,)),
        InternetParameters(n_domains=3, systems_per_domain=2, fast_pollers=(0,)),
        InternetParameters(n_domains=3, systems_per_domain=2, egp_pollers=(3,)),
    ]

    @pytest.mark.parametrize("parameters", CASES)
    def test_all_engines_agree(self, compiler, parameters):
        specification = SyntheticInternet(parameters).specification()
        closure = ConsistencyChecker(specification, compiler.tree).check()
        datalog = check_with_datalog(specification, compiler.tree)
        clpr = check_with_clpr(specification, compiler.tree)
        assert closure.consistent == datalog.consistent == clpr.consistent

    def test_datalog_and_clpr_counts_match(self, compiler):
        """Both rule-based engines count per (ref, variable) fact."""
        specification = SyntheticInternet(
            InternetParameters(
                n_domains=3, systems_per_domain=2, silent_domains=(1,)
            )
        ).specification()
        datalog = check_with_datalog(specification, compiler.tree)
        clpr = check_with_clpr(specification, compiler.tree)
        assert len(datalog.inconsistencies) == len(clpr.inconsistencies)
