"""The PermissionIndex, fingerprint-keyed caches, and incremental expansion.

Three concerns:

* the OID-prefix-bucketed index answers "which permission covers this
  reference at this server" exactly as the linear scan over
  :func:`permission_covers` would;
* the checker's fact/view caches are keyed by the specification
  fingerprint, so mutating the specification between checks is seen
  (regression: the seed checker cached ``_facts`` forever);
* an incremental recheck after a single-declaration delta re-expands
  strictly fewer declarations than a full check (the tentpole's
  incrementality claim, asserted here rather than only benchmarked).
"""

import dataclasses

import pytest

from repro.consistency.checker import ConsistencyChecker
from repro.consistency.index import PermissionIndex
from repro.consistency.relations import permission_covers
from repro.mib.tree import Access
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.nmsl.frequency import FrequencySpec
from repro.nmsl.specs import ExportSpec
from repro.workloads.generator import InternetParameters, SyntheticInternet
from repro.workloads.scenarios import campus_internet


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler(CompilerOptions(register_codegen=False))


def _index_for(checker):
    facts = checker.facts
    return PermissionIndex(facts, checker._view), facts


class TestPermissionIndexAgreesWithScan:
    """covering_permission == linear permission_covers scan, everywhere."""

    @pytest.mark.parametrize(
        "parameters",
        [
            InternetParameters(n_domains=3, systems_per_domain=2),
            InternetParameters(
                n_domains=4,
                systems_per_domain=3,
                silent_domains=(1,),
                fast_pollers=(0, 3),
            ),
            InternetParameters(
                n_domains=4, systems_per_domain=2, egp_pollers=(2,)
            ),
        ],
        ids=["clean", "faulted", "egp"],
    )
    def test_agreement_on_synthetic_internets(self, compiler, parameters):
        spec = SyntheticInternet(parameters).specification()
        checker = ConsistencyChecker(spec, compiler.tree)
        index, facts = _index_for(checker)
        compared = 0
        for reference in facts.references:
            candidates, _existential, _data = checker._candidate_servers(
                reference, facts
            )
            reference_view = checker._view(reference.variables)
            for server in candidates or ():
                scan_hit = None
                for permission in checker._permissions_for_server(
                    server, facts
                ):
                    verdict = permission_covers(
                        reference,
                        permission,
                        reference_view,
                        checker._view(permission.variables),
                    )
                    if verdict.covered:
                        scan_hit = permission
                        break
                indexed_hit = index.covering_permission(
                    server, reference, reference_view
                )
                assert (indexed_hit is not None) == (scan_hit is not None), (
                    f"index/scan disagree for {reference.describe()} "
                    f"at {server.id}"
                )
                compared += 1
        assert compared > 0

    def test_index_entries_match_scan_permission_set(self, compiler):
        spec = compiler.compile(campus_internet()).specification
        checker = ConsistencyChecker(spec, compiler.tree)
        index, facts = _index_for(checker)
        for reference in facts.references:
            candidates, _existential, _data = checker._candidate_servers(
                reference, facts
            )
            for server in candidates or ():
                assert index.permissions_for(server) == (
                    checker._permissions_for_server(server, facts)
                )

    def test_lazy_build_and_stats(self, compiler):
        spec = compiler.compile(campus_internet()).specification
        checker = ConsistencyChecker(spec, compiler.tree)
        index, facts = _index_for(checker)
        assert index.stats()["indexed_servers"] == 0
        reference = facts.references[0]
        candidates, _existential, _data = checker._candidate_servers(
            reference, facts
        )
        index.covering_permission(
            candidates[0], reference, checker._view(reference.variables)
        )
        stats = index.stats()
        assert stats["indexed_servers"] == 1


class TestFingerprintKeyedCaches:
    """Regression: spec mutation between checks must be observed."""

    @pytest.mark.parametrize("engine", ["indexed", "scan"])
    def test_mutation_after_check_is_seen(self, compiler, engine):
        spec = compiler.compile(campus_internet()).specification
        checker = ConsistencyChecker(spec, compiler.tree, engine=engine)
        first = checker.check()
        assert first.consistent

        # Mutate the spec the checker was built with: revoke every grant.
        for name, domain in list(spec.domains.items()):
            spec.domains[name] = dataclasses.replace(domain, exports=())
        for name, process in list(spec.processes.items()):
            spec.processes[name] = dataclasses.replace(process, exports=())

        second = checker.check()
        assert not second.consistent, (
            "stale fact cache: mutation was invisible to the next check"
        )

        # And back: re-granting restores consistency on the same checker.
        grant = ExportSpec(
            variables=("mgmt.mib",),
            to_domain="public",
            access=Access.ANY,
            frequency=FrequencySpec.unconstrained(),
        )
        for name, domain in list(spec.domains.items()):
            spec.domains[name] = dataclasses.replace(
                domain, exports=(grant,)
            )
        third = checker.check()
        assert third.consistent

    def test_unchanged_spec_reuses_fact_set(self, compiler):
        spec = compiler.compile(campus_internet()).specification
        checker = ConsistencyChecker(spec, compiler.tree)
        first_facts = checker.facts
        checker.check()
        assert checker.facts is first_facts


class TestIncrementalExpansion:
    """A single-declaration delta re-expands strictly less than a full check."""

    def test_recheck_expands_strictly_less(self, compiler):
        base = InternetParameters(n_domains=8, systems_per_domain=4)
        before = SyntheticInternet(base).specification()
        after = SyntheticInternet(
            dataclasses.replace(base, silent_domains=(3,))
        ).specification()

        checker = ConsistencyChecker(before, compiler.tree)
        cold = checker.check()
        assert cold.stats["facts_expanded"] == cold.stats["facts_declarations"]

        incremental = checker.recheck(after)
        assert incremental.stats["facts_expanded"] > 0
        assert (
            incremental.stats["facts_expanded"]
            < incremental.stats["facts_declarations"]
        ), "incremental recheck must re-expand strictly less than a full check"
        # And strictly less reduction work, too.
        assert 0 < incremental.stats["rechecked"] < incremental.stats["references"]

        # The verdict still equals a from-scratch check.
        scratch = ConsistencyChecker(after, compiler.tree).check()
        assert incremental.consistent == scratch.consistent
        assert len(incremental.inconsistencies) == len(scratch.inconsistencies)


class TestSharding:
    """--jobs shards the reduction without changing the result."""

    def test_sharded_check_equals_serial(self, compiler):
        spec = SyntheticInternet(
            InternetParameters(
                n_domains=8,
                systems_per_domain=4,
                applications_per_domain=2,
                silent_domains=(1,),
                fast_pollers=(2,),
            )
        ).specification()
        serial = ConsistencyChecker(spec, compiler.tree).check(jobs=1)
        sharded = ConsistencyChecker(spec, compiler.tree).check(jobs=4)
        assert serial.consistent == sharded.consistent
        assert [
            (p.kind, p.message, p.causes) for p in serial.inconsistencies
        ] == [(p.kind, p.message, p.causes) for p in sharded.inconsistencies]
        assert sharded.stats["jobs"] == 4
