"""Differential oracle: the fast engines against the CLP(R) semantics.

The indexed/incremental engine is only trustworthy if it keeps agreeing
with the faithful path of paper Figure 3.1.  This suite draws a seeded
corpus of ≥50 synthetic internets (reusing
:class:`repro.workloads.generator.SyntheticInternet`) and asserts, for
every spec:

* the indexed engine, the unindexed scan and :func:`check_with_clpr`
  return the same consistent/inconsistent verdict;
* they implicate the same set of client instances (the *causes*, via
  :func:`failing_clients`) — the closure engines name the client on the
  offending reference, the CLP(R) path in its structured ``client ...``
  cause;
* an incremental ``recheck`` that arrives at the spec from a clean
  baseline produces the same verdict and causes as a from-scratch check.

Scope note — wildcard targets are excluded by construction: the
synthetic generator only emits literal ``system:`` query targets.
Wildcard (``*``) references have run-time-bound targets, which the
CLP(R) fact rendering cannot ground, so the two paths are not comparable
there (the closure engines check them existentially; see the module
docstring of :mod:`repro.consistency.checker`).
"""

import random

import pytest

from repro.consistency.checker import (
    ConsistencyChecker,
    check_with_clpr,
    failing_clients,
)
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.workloads.generator import InternetParameters, SyntheticInternet

#: Corpus size demanded by the differential-oracle task.
CORPUS_SIZE = 50

#: One seed for the whole corpus: reproducible, yet varied.
CORPUS_SEED = 1989

_COMPILER = NmslCompiler(CompilerOptions(register_codegen=False))


def _draw_parameters(rng: random.Random) -> InternetParameters:
    """One random internet, small enough for the CLP(R) engine."""
    n_domains = rng.randint(2, 4)
    systems = rng.randint(1, 3)
    applications = rng.randint(1, 2)
    poller_slots = n_domains * applications
    return InternetParameters(
        n_domains=n_domains,
        systems_per_domain=systems,
        applications_per_domain=applications,
        silent_domains=tuple(
            sorted(
                rng.sample(
                    range(n_domains), k=rng.randint(0, min(2, n_domains - 1))
                )
            )
        ),
        fast_pollers=tuple(
            sorted(rng.sample(range(poller_slots), k=rng.randint(0, 2)))
        ),
        egp_pollers=tuple(
            sorted(rng.sample(range(poller_slots), k=rng.randint(0, 1)))
        ),
        seed=rng.randint(0, 2**31),
    )


def _corpus():
    rng = random.Random(CORPUS_SEED)
    return [_draw_parameters(rng) for _ in range(CORPUS_SIZE)]


@pytest.mark.parametrize(
    "parameters",
    _corpus(),
    ids=[f"spec{i:02d}" for i in range(CORPUS_SIZE)],
)
def test_engines_agree(parameters):
    specification = SyntheticInternet(parameters).specification()
    tree = _COMPILER.tree

    indexed = ConsistencyChecker(specification, tree).check()
    scan = ConsistencyChecker(specification, tree, engine="scan").check()
    clpr = check_with_clpr(specification, tree)

    # Verdict agreement (acceptance criterion: 0 disagreements).
    assert indexed.consistent == scan.consistent == clpr.consistent, (
        f"verdict disagreement on {parameters!r}: "
        f"indexed={indexed.consistent} scan={scan.consistent} "
        f"clpr={clpr.consistent}"
    )
    # Indexed and scan agree on the full rendered report.
    assert [
        (p.kind, p.message, p.causes) for p in indexed.inconsistencies
    ] == [(p.kind, p.message, p.causes) for p in scan.inconsistencies]
    # All three implicate the same clients.
    assert failing_clients(indexed) == failing_clients(scan)
    assert failing_clients(indexed) == failing_clients(clpr), (
        f"cause disagreement on {parameters!r}"
    )


@pytest.mark.parametrize(
    "parameters",
    _corpus(),
    ids=[f"spec{i:02d}" for i in range(CORPUS_SIZE)],
)
def test_sharded_reduction_is_byte_identical(parameters):
    """``--jobs N`` must be invisible in the output: verdicts, causes
    and the canonical report JSON are byte-identical to a single-process
    check for every spec in the corpus.

    ``shard_threshold=1`` forces the multi-process sharded reduction
    even on these small corpora (the production threshold would keep
    them serial); the merge is then exercised with both fewer and more
    buckets than shard keys.
    """
    specification = SyntheticInternet(parameters).specification()
    tree = _COMPILER.tree

    serial = ConsistencyChecker(specification, tree).check(jobs=1)
    baseline = serial.to_json()
    for jobs in (2, 8):
        sharded = ConsistencyChecker(
            specification, tree, shard_threshold=1
        ).check(jobs=jobs)
        assert sharded.to_json() == baseline, (
            f"jobs={jobs} report diverges on {parameters!r}"
        )
        assert [
            (p.kind, p.message, p.causes) for p in sharded.inconsistencies
        ] == [(p.kind, p.message, p.causes) for p in serial.inconsistencies]
        assert failing_clients(sharded) == failing_clients(serial)


@pytest.mark.parametrize(
    "parameters",
    _corpus()[:10],
    ids=[f"spec{i:02d}" for i in range(10)],
)
def test_incremental_recheck_agrees(parameters):
    """Arriving at a spec via recheck() equals checking it from scratch."""
    import dataclasses

    tree = _COMPILER.tree
    baseline = SyntheticInternet(
        dataclasses.replace(
            parameters, silent_domains=(), fast_pollers=(), egp_pollers=()
        )
    ).specification()
    target = SyntheticInternet(parameters).specification()

    checker = ConsistencyChecker(baseline, tree)
    checker.check()
    incremental = checker.recheck(target)
    scratch = ConsistencyChecker(target, tree).check()

    assert incremental.consistent == scratch.consistent
    assert sorted(p.message for p in incremental.inconsistencies) == sorted(
        p.message for p in scratch.inconsistencies
    )
    assert failing_clients(incremental) == failing_clients(scratch)
