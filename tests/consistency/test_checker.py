"""Tests for the closure-based consistency checker."""

import pytest

from repro.consistency.checker import ConsistencyChecker
from repro.consistency.report import InconsistencyKind
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.workloads.paper import PAPER_SPEC_TEXT
from repro.workloads.scenarios import campus_internet

AGENT = """
process agent ::=
    supports mgmt.mib.system, mgmt.mib.ip;
end process agent.
"""

def system_text(name, supports="mgmt.mib.system, mgmt.mib.ip", agent="agent"):
    return f"""
system "{name}" ::=
    cpu sparc;
    interface ie0 net shared-net type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports {supports};
    process {agent};
end system "{name}".
"""


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler(CompilerOptions(register_codegen=False))


def check(compiler, text, **kwargs):
    result = compiler.compile(text)
    return ConsistencyChecker(result.specification, compiler.tree).check(**kwargs)


class TestPaperExample:
    def test_paper_is_consistent(self, compiler):
        outcome = check(compiler, PAPER_SPEC_TEXT)
        assert outcome.consistent

    def test_view_clipping_warned(self, compiler):
        outcome = check(compiler, PAPER_SPEC_TEXT)
        assert any("clipped" in warning for warning in outcome.warnings)

    def test_stats_populated(self, compiler):
        outcome = check(compiler, PAPER_SPEC_TEXT)
        assert outcome.stats["instances"] == 3
        assert outcome.stats["references"] == 1
        assert outcome.stats["seconds"] >= 0


class TestMissingPermission:
    TEXT = AGENT + system_text("server.example") + """
process watcher(T: Process) ::=
    queries T requests mgmt.mib.ip frequency >= 10 minutes;
end process watcher.
domain servers ::= system server.example; end domain servers.
domain clients ::= process watcher(server.example); end domain clients.
"""

    def test_flagged(self, compiler):
        outcome = check(compiler, self.TEXT)
        assert not outcome.consistent
        assert outcome.kinds() == [InconsistencyKind.MISSING_PERMISSION]

    def test_report_names_reference(self, compiler):
        outcome = check(compiler, self.TEXT)
        rendered = outcome.render()
        assert "watcher" in rendered
        assert "INCONSISTENT" in rendered

    def test_fixed_by_export(self, compiler):
        fixed = self.TEXT.replace(
            "domain servers ::= system server.example;",
            'domain servers ::= system server.example; '
            "exports mgmt.mib.ip to clients access ReadOnly "
            "frequency >= 10 minutes;",
        )
        assert check(compiler, fixed).consistent


class TestFrequencyConflict:
    def make_text(self, client_minutes):
        return AGENT + system_text("server.example") + f"""
process watcher(T: Process) ::=
    queries T requests mgmt.mib.ip frequency >= {client_minutes} minutes;
end process watcher.
domain servers ::=
    system server.example;
    exports mgmt.mib.ip to clients access ReadOnly frequency >= 10 minutes;
end domain servers.
domain clients ::= process watcher(server.example); end domain clients.
"""

    def test_too_fast_flagged(self, compiler):
        outcome = check(compiler, self.make_text(1))
        assert outcome.kinds() == [InconsistencyKind.FREQUENCY_CONFLICT]
        assert any("violates permitted" in c for c in outcome.inconsistencies[0].causes)

    def test_equal_rate_ok(self, compiler):
        assert check(compiler, self.make_text(10)).consistent

    def test_slower_ok(self, compiler):
        assert check(compiler, self.make_text(30)).consistent


class TestAccessExceeded:
    def test_write_against_readonly_export(self, compiler):
        # Writes are expressed via an extension of QuerySpec access in the
        # model; exercise via direct model construction.
        from repro.consistency.facts import FactGenerator
        from repro.mib.tree import Access

        result = compiler.compile(
            AGENT
            + system_text("server.example")
            + """
process watcher(T: Process) ::=
    queries T requests mgmt.mib.ip frequency >= 10 minutes;
end process watcher.
domain servers ::=
    system server.example;
    exports mgmt.mib.ip to clients access ReadOnly frequency >= 10 minutes;
end domain servers.
domain clients ::= process watcher(server.example); end domain clients.
"""
        )
        spec = result.specification
        query = spec.processes["watcher"].queries[0]
        object.__setattr__(query, "access", Access.READ_WRITE)
        outcome = ConsistencyChecker(spec, compiler.tree).check()
        assert outcome.kinds() == [InconsistencyKind.ACCESS_EXCEEDED]


class TestServerSupport:
    def test_unsupported_by_element(self, compiler):
        text = """
process fullAgent ::= supports mgmt.mib; end process fullAgent.
""" + system_text("server.example", supports="mgmt.mib.system, mgmt.mib.ip",
                  agent="fullAgent") + """
process egpWatcher(T: Process) ::=
    queries T requests mgmt.mib.egp frequency infrequent;
end process egpWatcher.
domain servers ::=
    system server.example;
    exports mgmt.mib to clients access ReadOnly frequency >= 5 minutes;
end domain servers.
domain clients ::= process egpWatcher(server.example); end domain clients.
"""
        outcome = check(compiler, text)
        assert not outcome.consistent
        assert outcome.kinds() == [InconsistencyKind.UNSUPPORTED_BY_ELEMENT]

    def test_unsupported_by_process(self, compiler):
        text = AGENT + system_text(
            "server.example", supports="mgmt.mib"
        ) + """
process tcpWatcher(T: Process) ::=
    queries T requests mgmt.mib.tcp frequency infrequent;
end process tcpWatcher.
domain servers ::=
    system server.example;
    exports mgmt.mib to clients access ReadOnly frequency >= 5 minutes;
end domain servers.
domain clients ::= process tcpWatcher(server.example); end domain clients.
"""
        outcome = check(compiler, text)
        assert outcome.kinds() == [InconsistencyKind.UNSUPPORTED_BY_PROCESS]


class TestTargets:
    def test_no_server_for_target(self, compiler):
        text = AGENT + """
process watcher(T: Process) ::=
    queries T requests mgmt.mib.ip frequency infrequent;
end process watcher.
domain clients ::= process watcher(agent); end domain clients.
"""
        outcome = check(compiler, text)
        assert outcome.kinds() == [InconsistencyKind.NO_SERVER]

    def test_external_target_unchecked(self, compiler):
        text = AGENT + system_text("server.example") + """
process watcher(T: Process) ::=
    queries T requests mgmt.mib.ip frequency infrequent;
end process watcher.
domain d ::= system server.example; process watcher(192.0.2.1); end domain d.
"""
        outcome = check(compiler, text)
        assert outcome.consistent

    def test_wildcard_existential(self, compiler):
        """A wildcard target is fine if at least one agent satisfies it."""
        text = AGENT + system_text("server.example") + """
process watcher(T: Process) ::=
    queries T requests mgmt.mib.ip frequency >= 10 minutes;
end process watcher.
domain servers ::=
    system server.example;
    exports mgmt.mib.ip to "public" access ReadOnly frequency >= 5 minutes;
end domain servers.
domain clients ::= process watcher(*); end domain clients.
"""
        assert check(compiler, text).consistent

    def test_wildcard_with_no_satisfier(self, compiler):
        text = AGENT + system_text("server.example") + """
process watcher(T: Process) ::=
    queries T requests mgmt.mib.ip frequency >= 1 minutes;
end process watcher.
domain servers ::=
    system server.example;
    exports mgmt.mib.ip to "public" access ReadOnly frequency >= 5 minutes;
end domain servers.
domain clients ::= process watcher(*); end domain clients.
"""
        outcome = check(compiler, text)
        assert not outcome.consistent
        assert "no instantiated server" in outcome.inconsistencies[0].message


class TestIntraDomain:
    def test_same_domain_needs_no_export(self, compiler):
        text = AGENT + system_text("server.example") + """
process watcher(T: Process) ::=
    queries T requests mgmt.mib.ip frequency = 1 seconds;
end process watcher.
domain d ::= system server.example; process watcher(server.example); end domain d.
"""
        assert check(compiler, text).consistent

    def test_umbrella_ancestor_grants_nothing(self, compiler):
        text = AGENT + system_text("server.example") + """
process watcher(T: Process) ::=
    queries T requests mgmt.mib.ip frequency infrequent;
end process watcher.
domain servers ::= system server.example; end domain servers.
domain clients ::= process watcher(server.example); end domain clients.
domain umbrella ::= domain servers; domain clients; end domain umbrella.
"""
        outcome = check(compiler, text)
        assert not outcome.consistent


class TestCapacity:
    def test_swamping_warning(self, compiler):
        text = AGENT + system_text("server.example") + """
process hammer(T: Process) ::=
    queries T requests mgmt.mib.ip frequency = 1 seconds;
end process hammer.
domain d ::=
    system server.example;
""" + "\n".join(
            f"    process hammer(server.example);" for _ in range(200)
        ) + """
end domain d.
"""
        outcome = check(compiler, text, check_capacity=True)
        assert any("swamped" in warning for warning in outcome.warnings)

    def test_campus_not_swamped(self, compiler):
        result = compiler.compile(campus_internet())
        outcome = ConsistencyChecker(result.specification, compiler.tree).check(
            check_capacity=True
        )
        assert not any("swamped" in warning for warning in outcome.warnings)
