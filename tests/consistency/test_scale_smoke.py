"""Nightly scale smoke: a 1,000-domain internet checks inside budget.

Deselected by default (``addopts = -m 'not slow'``); the nightly CI job
runs ``pytest -m slow``.  The budgets are deliberately loose — an order
of magnitude over the measured figures (full check ~0.6s, recheck a few
ms, peak RSS ~80 MB on the reference host) — so the test catches
regressions back to superlinear behaviour, not scheduler noise.
"""

import dataclasses
import resource
import time

import pytest

from repro.consistency.checker import ConsistencyChecker
from repro.consistency.evolution import EvolutionDelta
from repro.consistency.seminaive import seminaive_fixpoint
from repro.mib.mib1 import build_mib1
from repro.workloads.paper import PaperScaleInternet, PaperScaleParameters

#: Wall-clock budget for the full 1k-domain check, seconds.
FULL_CHECK_BUDGET_S = 30.0
#: Wall-clock budget for a warm one-domain incremental recheck, seconds.
RECHECK_BUDGET_S = 1.0
#: Peak RSS bound for the whole test, MB.  Without interned fact tuples
#: and the generator's shared per-domain structures this workload blows
#: past a gigabyte.
PEAK_RSS_BUDGET_MB = 512


def _drop_exports(spec, index):
    name = sorted(spec.domains)[index]
    domains = dict(spec.domains)
    domains[name] = dataclasses.replace(domains[name], exports=())
    return dataclasses.replace(spec, domains=domains)


@pytest.mark.slow
def test_thousand_domain_internet_checks_inside_budget():
    params = PaperScaleParameters(
        n_domains=1000, silent_domains=(17, 400), fast_pollers=(5,)
    )
    internet = PaperScaleInternet(params)
    tree = build_mib1()

    started = time.perf_counter()
    spec = internet.specification()
    checker = ConsistencyChecker(spec, tree)
    result = checker.check()
    full_elapsed = time.perf_counter() - started

    assert full_elapsed < FULL_CHECK_BUDGET_S
    assert len(result.inconsistencies) == (
        internet.expected_inconsistent_references()
    )
    assert result.stats["references"] == 2 * params.n_domains

    # Warm one-domain recheck: milliseconds, not another full pass.
    warm = _drop_exports(spec, 250)
    checker.recheck(EvolutionDelta.between(spec, warm))
    changed = _drop_exports(warm, 500)
    started = time.perf_counter()
    rechecked = checker.recheck(EvolutionDelta.between(warm, changed))
    recheck_elapsed = time.perf_counter() - started

    assert recheck_elapsed < RECHECK_BUDGET_S
    assert rechecked.stats["rechecked"] < result.stats["references"] // 10

    # Fact interning: replaying the whole tuple rendering (plus a
    # duplicated slice) into the tuple fact base stores each distinct
    # fact exactly once.
    tuples = checker.facts.to_tuples()
    interned = seminaive_fixpoint(tuples + tuples[:5000], [])
    assert len(interned) == len(set(tuples))

    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    assert peak_rss_mb < PEAK_RSS_BUDGET_MB
