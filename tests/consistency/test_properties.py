"""Property-based tests on consistency-model invariants.

The laws the paper's model implies:

* **permission monotonicity** — adding permissions never introduces an
  inconsistency; removing permissions never removes one;
* **frequency monotonicity** — a client slowing down never makes a
  consistent specification inconsistent;
* **umbrella neutrality** — wrapping domains in grant-nothing ancestors
  changes no verdict;
* **verdict determinism** — checking twice gives identical reports;
* **incremental exactness** — ``recheck(delta)`` equals a from-scratch
  check of the delta's specification;
* **coverage reflexivity / monotonicity** — a permission granting
  exactly what a reference requests covers it, and widening the
  permitted view to OID-prefix ancestors (moving up the containment
  closure) never loses coverage.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency.checker import ConsistencyChecker
from repro.consistency.relations import (
    Permission,
    Reference,
    permission_covers,
)
from repro.mib.tree import Access
from repro.mib.view import MibView
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.nmsl.frequency import FrequencySpec
from repro.nmsl.specs import ExportSpec
from repro.workloads.generator import InternetParameters, SyntheticInternet

_COMPILER = NmslCompiler(CompilerOptions(register_codegen=False))

parameter_sets = st.builds(
    InternetParameters,
    n_domains=st.integers(2, 4),
    systems_per_domain=st.integers(1, 3),
    applications_per_domain=st.integers(1, 2),
    silent_domains=st.sets(st.integers(0, 3), max_size=2).map(tuple),
    fast_pollers=st.sets(st.integers(0, 7), max_size=2).map(tuple),
    egp_pollers=st.sets(st.integers(0, 7), max_size=1).map(tuple),
)


def check(specification):
    return ConsistencyChecker(specification, _COMPILER.tree).check()


def add_public_export_everywhere(specification):
    """Grant everything to everyone: the maximal permission set."""
    grant = ExportSpec(
        variables=("mgmt.mib",),
        to_domain="public",
        access=Access.ANY,
        frequency=FrequencySpec.unconstrained(),
    )
    for name, domain in list(specification.domains.items()):
        specification.domains[name] = dataclasses.replace(
            domain, exports=domain.exports + (grant,)
        )
    return specification


def drop_all_exports(specification):
    for name, domain in list(specification.domains.items()):
        specification.domains[name] = dataclasses.replace(domain, exports=())
    for name, process in list(specification.processes.items()):
        specification.processes[name] = dataclasses.replace(process, exports=())
    return specification


class TestMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(parameter_sets)
    def test_adding_permissions_never_hurts(self, parameters):
        internet = SyntheticInternet(parameters)
        before = check(internet.specification())
        widened = add_public_export_everywhere(internet.specification())
        after = check(widened)
        # Every problem that remains must be a support problem, not a
        # permission problem — and the count cannot grow.
        assert len(after.inconsistencies) <= len(before.inconsistencies)
        for problem in after.inconsistencies:
            assert "support" in problem.kind.value or problem.kind.value in (
                "no-server",
            ), problem.kind

    @settings(max_examples=20, deadline=None)
    @given(parameter_sets)
    def test_removing_permissions_never_helps(self, parameters):
        internet = SyntheticInternet(parameters)
        before = check(internet.specification())
        stripped = drop_all_exports(internet.specification())
        after = check(stripped)
        assert len(after.inconsistencies) >= len(before.inconsistencies)

    @settings(max_examples=15, deadline=None)
    @given(parameter_sets, st.floats(min_value=1.0, max_value=10.0))
    def test_slower_clients_never_hurt(self, parameters, factor):
        internet = SyntheticInternet(parameters)
        before = check(internet.specification())
        slowed = dataclasses.replace(
            parameters, query_period_s=parameters.query_period_s * factor
        )
        after = check(SyntheticInternet(slowed).specification())
        assert len(after.inconsistencies) <= len(before.inconsistencies)


class TestNeutrality:
    @settings(max_examples=15, deadline=None)
    @given(parameter_sets, st.integers(2, 3))
    def test_umbrellas_change_nothing(self, parameters, fanout):
        flat = SyntheticInternet(parameters).specification()
        nested = SyntheticInternet(
            dataclasses.replace(parameters, umbrella_fanout=fanout)
        ).specification()
        flat_outcome = check(flat)
        nested_outcome = check(nested)
        assert flat_outcome.consistent == nested_outcome.consistent
        assert len(flat_outcome.inconsistencies) == len(
            nested_outcome.inconsistencies
        )


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(parameter_sets)
    def test_check_is_deterministic(self, parameters):
        specification = SyntheticInternet(parameters).specification()
        first = check(specification)
        second = check(specification)
        assert first.consistent == second.consistent
        assert [p.message for p in first.inconsistencies] == [
            p.message for p in second.inconsistencies
        ]


class TestIncrementalExactness:
    """``recheck(delta)`` must equal a from-scratch check of the delta."""

    @settings(max_examples=15, deadline=None)
    @given(parameter_sets, parameter_sets)
    def test_recheck_equals_from_scratch(self, before, after):
        before_spec = SyntheticInternet(before).specification()
        after_spec = SyntheticInternet(after).specification()

        checker = ConsistencyChecker(before_spec, _COMPILER.tree)
        checker.check()
        incremental = checker.recheck(after_spec)
        scratch = check(after_spec)

        assert incremental.consistent == scratch.consistent
        assert sorted(p.message for p in incremental.inconsistencies) == (
            sorted(p.message for p in scratch.inconsistencies)
        )

    @settings(max_examples=10, deadline=None)
    @given(parameter_sets)
    def test_recheck_of_identical_spec_reuses_everything(self, parameters):
        specification = SyntheticInternet(parameters).specification()
        checker = ConsistencyChecker(specification, _COMPILER.tree)
        baseline = checker.check()
        again = checker.recheck(
            SyntheticInternet(parameters).specification()
        )
        assert again.consistent == baseline.consistent
        assert again.stats["rechecked"] == 0
        assert again.stats["reused"] == again.stats["references"]
        assert again.stats["facts_expanded"] == 0


#: Resolvable MIB paths, deepest-first: index i's OID-prefix ancestors
#: are the later entries of its chain.
_PATH_CHAINS = (
    ("mgmt.mib.ip.ipAddrTable.IpAddrEntry", "mgmt.mib.ip", "mgmt.mib"),
    ("mgmt.mib.tcp", "mgmt.mib"),
    ("mgmt.mib.system", "mgmt.mib"),
    ("mgmt.mib.interfaces", "mgmt.mib"),
)

_access_modes = st.sampled_from(
    [Access.READ_ONLY, Access.READ_WRITE, Access.ANY]
)
_frequencies = st.sampled_from(
    [
        FrequencySpec.unconstrained(),
        FrequencySpec.at_most_every(60.0),
        FrequencySpec.at_most_every(900.0),
    ]
)


def _reference(paths, access, frequency):
    return Reference(
        client="instance:client#1",
        client_domains=("engr",),
        server="system:server",
        variables=paths,
        access=access,
        frequency=frequency,
    )


def _permission(paths, access, frequency, grantee="engr"):
    return Permission(
        grantor="system:server",
        grantor_domains=("engr",),
        grantee_domain=grantee,
        variables=paths,
        access=access,
        frequency=frequency,
    )


class TestCoverageLaws:
    """Reflexivity and closure-monotonicity of ``permission_covers``."""

    @settings(max_examples=40, deadline=None)
    @given(
        chain=st.sampled_from(_PATH_CHAINS),
        access=_access_modes,
        frequency=_frequencies,
    )
    def test_reflexive_under_oid_prefix_identity(
        self, chain, access, frequency
    ):
        """A permission granting exactly the requested subtree, mode and
        interval covers the reference."""
        paths = (chain[0],)
        view = MibView(_COMPILER.tree, list(paths))
        verdict = permission_covers(
            _reference(paths, access, frequency),
            _permission(paths, access, frequency),
            view,
            view,
        )
        assert verdict.covered, verdict.reason

    @settings(max_examples=40, deadline=None)
    @given(
        chain=st.sampled_from(_PATH_CHAINS),
        ancestor_depth=st.integers(1, 2),
        access=_access_modes,
        frequency=_frequencies,
    )
    def test_monotone_under_containment_closure(
        self, chain, ancestor_depth, access, frequency
    ):
        """Widening the permitted view to an OID-prefix ancestor (a step
        up the containment closure) never loses coverage."""
        requested = (chain[0],)
        ancestor = (chain[min(ancestor_depth, len(chain) - 1)],)
        reference_view = MibView(_COMPILER.tree, list(requested))
        ancestor_view = MibView(_COMPILER.tree, list(ancestor))
        exact = permission_covers(
            _reference(requested, access, frequency),
            _permission(requested, access, frequency),
            reference_view,
            MibView(_COMPILER.tree, list(requested)),
        )
        widened = permission_covers(
            _reference(requested, access, frequency),
            _permission(ancestor, access, frequency),
            reference_view,
            ancestor_view,
        )
        assert exact.covered
        assert widened.covered, widened.reason
