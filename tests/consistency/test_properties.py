"""Property-based tests on consistency-model invariants.

The laws the paper's model implies:

* **permission monotonicity** — adding permissions never introduces an
  inconsistency; removing permissions never removes one;
* **frequency monotonicity** — a client slowing down never makes a
  consistent specification inconsistent;
* **umbrella neutrality** — wrapping domains in grant-nothing ancestors
  changes no verdict;
* **verdict determinism** — checking twice gives identical reports.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency.checker import ConsistencyChecker
from repro.mib.tree import Access
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.nmsl.frequency import FrequencySpec
from repro.nmsl.specs import ExportSpec
from repro.workloads.generator import InternetParameters, SyntheticInternet

_COMPILER = NmslCompiler(CompilerOptions(register_codegen=False))

parameter_sets = st.builds(
    InternetParameters,
    n_domains=st.integers(2, 4),
    systems_per_domain=st.integers(1, 3),
    applications_per_domain=st.integers(1, 2),
    silent_domains=st.sets(st.integers(0, 3), max_size=2).map(tuple),
    fast_pollers=st.sets(st.integers(0, 7), max_size=2).map(tuple),
    egp_pollers=st.sets(st.integers(0, 7), max_size=1).map(tuple),
)


def check(specification):
    return ConsistencyChecker(specification, _COMPILER.tree).check()


def add_public_export_everywhere(specification):
    """Grant everything to everyone: the maximal permission set."""
    grant = ExportSpec(
        variables=("mgmt.mib",),
        to_domain="public",
        access=Access.ANY,
        frequency=FrequencySpec.unconstrained(),
    )
    for name, domain in list(specification.domains.items()):
        specification.domains[name] = dataclasses.replace(
            domain, exports=domain.exports + (grant,)
        )
    return specification


def drop_all_exports(specification):
    for name, domain in list(specification.domains.items()):
        specification.domains[name] = dataclasses.replace(domain, exports=())
    for name, process in list(specification.processes.items()):
        specification.processes[name] = dataclasses.replace(process, exports=())
    return specification


class TestMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(parameter_sets)
    def test_adding_permissions_never_hurts(self, parameters):
        internet = SyntheticInternet(parameters)
        before = check(internet.specification())
        widened = add_public_export_everywhere(internet.specification())
        after = check(widened)
        # Every problem that remains must be a support problem, not a
        # permission problem — and the count cannot grow.
        assert len(after.inconsistencies) <= len(before.inconsistencies)
        for problem in after.inconsistencies:
            assert "support" in problem.kind.value or problem.kind.value in (
                "no-server",
            ), problem.kind

    @settings(max_examples=20, deadline=None)
    @given(parameter_sets)
    def test_removing_permissions_never_helps(self, parameters):
        internet = SyntheticInternet(parameters)
        before = check(internet.specification())
        stripped = drop_all_exports(internet.specification())
        after = check(stripped)
        assert len(after.inconsistencies) >= len(before.inconsistencies)

    @settings(max_examples=15, deadline=None)
    @given(parameter_sets, st.floats(min_value=1.0, max_value=10.0))
    def test_slower_clients_never_hurt(self, parameters, factor):
        internet = SyntheticInternet(parameters)
        before = check(internet.specification())
        slowed = dataclasses.replace(
            parameters, query_period_s=parameters.query_period_s * factor
        )
        after = check(SyntheticInternet(slowed).specification())
        assert len(after.inconsistencies) <= len(before.inconsistencies)


class TestNeutrality:
    @settings(max_examples=15, deadline=None)
    @given(parameter_sets, st.integers(2, 3))
    def test_umbrellas_change_nothing(self, parameters, fanout):
        flat = SyntheticInternet(parameters).specification()
        nested = SyntheticInternet(
            dataclasses.replace(parameters, umbrella_fanout=fanout)
        ).specification()
        flat_outcome = check(flat)
        nested_outcome = check(nested)
        assert flat_outcome.consistent == nested_outcome.consistent
        assert len(flat_outcome.inconsistencies) == len(
            nested_outcome.inconsistencies
        )


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(parameter_sets)
    def test_check_is_deterministic(self, parameters):
        specification = SyntheticInternet(parameters).specification()
        first = check(specification)
        second = check(specification)
        assert first.consistent == second.consistent
        assert [p.message for p in first.inconsistencies] == [
            p.message for p in second.inconsistencies
        ]
