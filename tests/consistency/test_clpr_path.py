"""The faithful CLP(R) path, and its agreement with the closure checker."""

import pytest

from repro.consistency.checker import ConsistencyChecker, check_with_clpr
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.workloads.generator import InternetParameters, SyntheticInternet
from repro.workloads.paper import PAPER_SPEC_TEXT
from repro.workloads.scenarios import campus_internet


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler(CompilerOptions(register_codegen=False))


class TestClprPath:
    def test_paper_consistent(self, compiler):
        result = compiler.compile(PAPER_SPEC_TEXT)
        outcome = check_with_clpr(result.specification, compiler.tree)
        assert outcome.consistent
        assert outcome.stats["engine"] == "clpr-sld"

    def test_campus_consistent(self, compiler):
        result = compiler.compile(campus_internet())
        assert check_with_clpr(result.specification, compiler.tree).consistent

    def test_campus_missing_permission_found(self, compiler):
        result = compiler.compile(campus_internet(include_noc_permission=False))
        outcome = check_with_clpr(result.specification, compiler.tree)
        assert not outcome.consistent
        assert any(
            "nocMonitor" in problem.message for problem in outcome.inconsistencies
        )

    def test_campus_frequency_conflict_found(self, compiler):
        result = compiler.compile(campus_internet(noc_frequency_minutes=1.0))
        outcome = check_with_clpr(result.specification, compiler.tree)
        assert not outcome.consistent


class TestEngineAgreement:
    """Both engines must agree on verdicts for literal-target workloads."""

    CASES = [
        InternetParameters(n_domains=3, systems_per_domain=2),
        InternetParameters(n_domains=3, systems_per_domain=2, silent_domains=(1,)),
        InternetParameters(n_domains=3, systems_per_domain=2, fast_pollers=(0,)),
        InternetParameters(n_domains=3, systems_per_domain=2, egp_pollers=(3,)),
        InternetParameters(
            n_domains=4,
            systems_per_domain=1,
            silent_domains=(2,),
            fast_pollers=(1,),
            egp_pollers=(5,),
        ),
    ]

    @pytest.mark.parametrize("parameters", CASES)
    def test_verdicts_agree(self, compiler, parameters):
        specification = SyntheticInternet(parameters).specification()
        closure = ConsistencyChecker(specification, compiler.tree).check()
        clpr = check_with_clpr(specification, compiler.tree)
        assert closure.consistent == clpr.consistent

    @pytest.mark.parametrize("parameters", CASES)
    def test_closure_matches_expected_count(self, compiler, parameters):
        internet = SyntheticInternet(parameters)
        specification = internet.specification()
        closure = ConsistencyChecker(specification, compiler.tree).check()
        assert len(closure.inconsistencies) == (
            internet.expected_inconsistent_references()
        )

    def test_text_and_model_paths_agree(self, compiler):
        """The generator's NMSL text compiles to the same verdict as its
        directly-built model."""
        parameters = InternetParameters(
            n_domains=3, systems_per_domain=2, fast_pollers=(2,)
        )
        internet = SyntheticInternet(parameters)
        from_text = compiler.compile(internet.text()).specification
        from_model = internet.specification()
        verdict_text = ConsistencyChecker(from_text, compiler.tree).check()
        verdict_model = ConsistencyChecker(from_model, compiler.tree).check()
        assert verdict_text.consistent == verdict_model.consistent
        assert len(verdict_text.inconsistencies) == len(verdict_model.inconsistencies)
