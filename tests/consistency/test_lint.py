"""Tests for the deprecated lint shim (now backed by repro.analysis).

PR 2 moved the four seed linter passes into :mod:`repro.analysis` as
NM101/NM102/NM201/NM202; this module keeps the old behavioural coverage
running through the one-release :func:`lint_specification` shim, plus a
test pinning the shim's deprecation contract itself.
"""

import warnings

import pytest

from repro.consistency.lint import SLUG_TO_CODE, lint_specification
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.workloads.scenarios import campus_internet


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler(CompilerOptions(register_codegen=False))


def lint(compiler, text, strict=True):
    spec = compiler.compile(text, strict=strict).specification
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return lint_specification(spec, compiler.tree)


BASE = """
process agent ::=
    supports mgmt.mib.system, mgmt.mib.ip;
end process agent.
system "server.example" ::=
    cpu sparc;
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agent;
end system "server.example".
"""


class TestDeprecationShim:
    def test_warns_and_delegates(self, compiler):
        spec = compiler.compile(BASE).specification
        with pytest.warns(DeprecationWarning, match="repro.analysis"):
            report = lint_specification(spec, compiler.tree)
        # The shim returns the analysis report type, not the old
        # LintReport: AnalysisReport quacks via .diagnostics/.by_code.
        assert hasattr(report, "by_code")
        assert hasattr(report, "diagnostics")

    def test_slug_mapping_covers_the_seed_passes(self):
        assert SLUG_TO_CODE == {
            "unused-process": "NM101",
            "unmanaged-element": "NM102",
            "unused-permission": "NM201",
            "overbroad-grant": "NM202",
        }

    def test_runs_only_the_legacy_codes(self, compiler):
        # The shim must not grow new gate failures: only the four
        # migrated passes run, nothing from NM103+/NM3xx.
        report = lint(compiler, campus_internet())
        allowed = set(SLUG_TO_CODE.values())
        assert {d.code for d in report.diagnostics} <= allowed


class TestUnusedProcess:
    def test_flagged(self, compiler):
        report = lint(
            compiler,
            BASE + "process ghost ::= supports mgmt.mib.udp; end process ghost.",
        )
        findings = report.by_code("NM101")
        assert [finding.subject for finding in findings] == ["ghost"]

    def test_instantiated_not_flagged(self, compiler):
        report = lint(compiler, BASE)
        assert not report.by_code("NM101")


class TestUnmanagedElement:
    def test_element_without_agent(self, compiler):
        text = BASE + """
system "dumb.example" ::=
    cpu z80;
    interface p0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys firmware version 1;
    supports mgmt.mib.interfaces;
end system "dumb.example".
"""
        report = lint(compiler, text)
        findings = report.by_code("NM102")
        assert [finding.subject for finding in findings] == ["dumb.example"]

    def test_proxied_element_is_managed(self, compiler):
        text = BASE.replace(
            "    supports mgmt.mib.system, mgmt.mib.ip;\nend process agent.",
            "    supports mgmt.mib.system, mgmt.mib.ip;\n"
            "    proxies dumb.example via direct;\nend process agent.",
        ) + """
system "dumb.example" ::=
    cpu z80;
    interface p0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys firmware version 1;
    supports mgmt.mib.ip;
end system "dumb.example".
"""
        report = lint(compiler, text)
        assert not report.by_code("NM102")


class TestUnusedPermission:
    def test_export_without_references(self, compiler):
        text = BASE.replace(
            "end process agent.",
            '    exports mgmt.mib.ip to "nowhere-domain"\n'
            "        access ReadOnly frequency >= 5 minutes;\n"
            "end process agent.",
        )
        report = lint(compiler, text, strict=False)
        assert report.by_code("NM201")

    def test_used_export_not_flagged(self, compiler):
        text = BASE + """
process watcher(T: Process) ::=
    queries T requests mgmt.mib.ip frequency >= 10 minutes;
end process watcher.
domain servers ::=
    system server.example;
    exports mgmt.mib.ip to clients access ReadOnly frequency >= 5 minutes;
end domain servers.
domain clients ::= process watcher(server.example); end domain clients.
"""
        report = lint(compiler, text)
        unused = report.by_code("NM201")
        assert not any("servers" in finding.subject for finding in unused)


class TestOverbroadGrant:
    def test_readwrite_to_public(self, compiler):
        text = BASE.replace(
            "end process agent.",
            '    exports mgmt.mib.ip to "public"\n'
            "        access ReadWrite frequency >= 5 minutes;\n"
            "end process agent.",
        )
        report = lint(compiler, text)
        assert report.by_code("NM202")

    def test_readonly_to_public_fine(self, compiler):
        text = BASE.replace(
            "end process agent.",
            '    exports mgmt.mib.ip to "public"\n'
            "        access ReadOnly frequency >= 5 minutes;\n"
            "end process agent.",
        )
        report = lint(compiler, text)
        assert not report.by_code("NM202")


class TestScenarios:
    def test_campus_is_clean_except_snmpaddr_style_gaps(self, compiler):
        report = lint(compiler, campus_internet())
        # The campus has no unused processes or unmanaged elements.
        assert not report.by_code("NM101")
        assert not report.by_code("NM102")
        assert not report.by_code("NM202")

    def test_report_rendering(self, compiler):
        report = lint(
            compiler,
            BASE + "process ghost ::= supports mgmt.mib.udp; end process ghost.",
        )
        assert "[unused-process] ghost" in report.render()
        assert len(report) >= 1

    def test_clean_report_rendering(self, compiler):
        report = lint(compiler, campus_internet())
        text = report.render()
        assert isinstance(text, str)
