"""Tests for the speculative (what-if / reverse) modes of Section 4.2."""

import pytest

from repro.consistency.checker import ConsistencyChecker
from repro.consistency.speculative import SpeculativeChecker, solve_for_frequency
from repro.errors import ConsistencyError
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.workloads.scenarios import campus_internet, new_organization


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler(CompilerOptions(register_codegen=False))


@pytest.fixture(scope="module")
def campus(compiler):
    return compiler.compile(campus_internet()).specification


class TestWhatIf:
    def test_compatible_addition(self, compiler, campus):
        candidate = compiler.compile(
            new_organization(query_minutes=15), strict=False
        ).specification
        outcome = SpeculativeChecker(campus, compiler.tree).check_addition(candidate)
        assert outcome.consistent
        assert outcome.stats["new_problems"] == 0

    def test_incompatible_addition(self, compiler, campus):
        candidate = compiler.compile(
            new_organization(query_minutes=1), strict=False
        ).specification
        outcome = SpeculativeChecker(campus, compiler.tree).check_addition(candidate)
        assert not outcome.consistent
        assert all(
            "deptPoller" in (problem.reference.origin if problem.reference else "")
            for problem in outcome.inconsistencies
        )

    def test_existing_problems_not_reattributed(self, compiler):
        broken = compiler.compile(
            campus_internet(include_noc_permission=False)
        ).specification
        candidate = compiler.compile(
            new_organization(query_minutes=15), strict=False
        ).specification
        checker = SpeculativeChecker(broken, compiler.tree)
        outcome = checker.check_addition(candidate)
        # The pre-existing NOC problems are not blamed on the new org.
        assert outcome.consistent
        assert outcome.stats["existing_problems"] > 0

    def test_estimated_load(self, compiler, campus):
        candidate = compiler.compile(
            new_organization(query_minutes=15), strict=False
        ).specification
        load = SpeculativeChecker(campus, compiler.tree).estimated_new_load(candidate)
        # One poller at 1/900s times 8192 bits ~ 9.1 bps.
        assert 1.0 < load < 100.0


class TestReverseMode:
    TEXT = """
process agent ::= supports mgmt.mib.ip; end process agent.
system "server.example" ::=
    cpu sparc;
    interface ie0 net n type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.ip;
    process agent;
end system "server.example".
process watcher(T: Process) ::=
    queries T requests mgmt.mib.ip frequency >= 10 minutes;
end process watcher.
domain servers ::=
    system server.example;
    exports mgmt.mib.ip to clients access ReadOnly frequency >= 5 minutes;
end domain servers.
domain clients ::= process watcher(server.example); end domain clients.
"""

    def test_solves_for_period_bound(self, compiler):
        specification = compiler.compile(self.TEXT).specification
        bounds = solve_for_frequency(
            specification, compiler.tree, "watcher", "agent"
        )
        assert any(
            bound.op == ">=" and bound.seconds == pytest.approx(300.0)
            for bound in bounds
        )

    def test_missing_instances_raise(self, compiler):
        specification = compiler.compile(self.TEXT).specification
        with pytest.raises(ConsistencyError, match="instance"):
            solve_for_frequency(specification, compiler.tree, "ghost", "agent")

    def test_client_without_queries_raises(self, compiler):
        specification = compiler.compile(self.TEXT).specification
        with pytest.raises(ConsistencyError, match="no queries"):
            solve_for_frequency(specification, compiler.tree, "agent", "agent")

    def test_bound_description(self, compiler):
        specification = compiler.compile(self.TEXT).specification
        bounds = solve_for_frequency(
            specification, compiler.tree, "watcher", "agent"
        )
        assert any("period >=" in bound.describe() for bound in bounds)
