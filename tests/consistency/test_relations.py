"""Tests for the Figure 4.9 relations and the reduction rule."""

import pytest

from repro.consistency.relations import (
    Permission,
    Reference,
    access_atom,
    access_from_atom,
    permission_covers,
)
from repro.mib.mib1 import build_mib1
from repro.mib.tree import Access
from repro.mib.view import MibView
from repro.nmsl.frequency import FrequencySpec


@pytest.fixture(scope="module")
def tree():
    return build_mib1()


def make_reference(tree, variables=("mgmt.mib.ip",), access=Access.READ_ONLY,
                   period=3600.0, domains=("client-dom",)):
    return Reference(
        client="instance:app@client#1",
        client_domains=domains,
        server="system:server",
        variables=variables,
        access=access,
        frequency=FrequencySpec.at_most_every(period),
    )


def make_permission(tree, variables=("mgmt.mib",), access=Access.READ_ONLY,
                    period=300.0, grantee="client-dom"):
    return Permission(
        grantor="instance:agent@server#2",
        grantor_domains=("server-dom",),
        grantee_domain=grantee,
        variables=variables,
        access=access,
        frequency=FrequencySpec.at_most_every(period),
    )


def covers(tree, reference, permission):
    return permission_covers(
        reference,
        permission,
        MibView(tree, reference.variables),
        MibView(tree, permission.variables),
    )


class TestAccessAtoms:
    def test_atom_roundtrip(self):
        for access in Access:
            assert access_from_atom(access_atom(access)) is access


class TestReduction:
    def test_fully_covered(self, tree):
        verdict = covers(tree, make_reference(tree), make_permission(tree))
        assert verdict.covered

    def test_wrong_grantee_domain(self, tree):
        verdict = covers(
            tree,
            make_reference(tree, domains=("other-dom",)),
            make_permission(tree),
        )
        assert not verdict.covered
        assert "grantee domain" in verdict.reason

    def test_public_grantee_covers_everyone(self, tree):
        verdict = covers(
            tree,
            make_reference(tree, domains=("anywhere",)),
            make_permission(tree, grantee="public"),
        )
        assert verdict.covered

    def test_variables_outside_view(self, tree):
        verdict = covers(
            tree,
            make_reference(tree, variables=("mgmt.mib.tcp",)),
            make_permission(tree, variables=("mgmt.mib.ip",)),
        )
        assert not verdict.covered
        assert "outside the permitted view" in verdict.reason

    def test_access_exceeded(self, tree):
        verdict = covers(
            tree,
            make_reference(tree, access=Access.READ_WRITE),
            make_permission(tree, access=Access.READ_ONLY),
        )
        assert not verdict.covered
        assert "access" in verdict.reason

    def test_frequency_violated(self, tree):
        verdict = covers(
            tree,
            make_reference(tree, period=60.0),
            make_permission(tree, period=300.0),
        )
        assert not verdict.covered
        assert "violates permitted" in verdict.reason

    def test_check_order_names_first_failure(self, tree):
        """Grantee mismatch is reported even if data would also fail."""
        verdict = covers(
            tree,
            make_reference(tree, variables=("mgmt.mib.tcp",), domains=("x",)),
            make_permission(tree, variables=("mgmt.mib.ip",)),
        )
        assert "grantee domain" in verdict.reason

    def test_describe_methods(self, tree):
        assert "references" in make_reference(tree).describe()
        assert "permits" in make_permission(tree).describe()
