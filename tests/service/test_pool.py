"""The worker pool: supervision, crash recovery, replay, quarantine.

Three layers of coverage, mirroring the module's design:

* pure units — fingerprinting, the poison registry, and the
  :class:`WorkerSupervisor` state machine on a hand-held logical clock;
* the simulated runtime — replay and quarantine flowing through the
  full scheduler deterministically;
* the real daemon — ``kill -9`` of live worker processes, observed
  through the response stream, ``/healthz`` and the audit log.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.service import ServiceConfig, SimulatedServiceRuntime
from repro.service.core import ServiceCore
from repro.service.pool import (
    PoisonRegistry,
    WorkerSupervisor,
    request_fingerprint,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
CAMPUS = str(REPO_ROOT / "examples" / "campus.nmsl")


def _request(op="check", params=None, deadline=None, request_id="r1"):
    """The slice of ServiceRequest the supervisor consumes."""
    return SimpleNamespace(
        id=request_id, op=op, params=params or {"spec": CAMPUS},
        cls="interactive", deadline=deadline, worker_id=None, attempts=0,
        reply_to=None, trace=None,
    )


def _config(**overrides):
    overrides.setdefault("pool_workers", 2)
    return ServiceConfig(**overrides)


class TestRequestFingerprint:
    def test_stable_and_distinguishes_ops(self):
        params = {"spec": CAMPUS}
        assert request_fingerprint("check", params) == request_fingerprint(
            "check", {"spec": CAMPUS}
        )
        assert request_fingerprint("check", params) != request_fingerprint(
            "analyze", params
        )

    def test_spec_content_contributes(self, tmp_path):
        spec = tmp_path / "a.nmsl"
        spec.write_text("one")
        before = request_fingerprint("check", {"spec": str(spec)})
        spec.write_text("two")
        after = request_fingerprint("check", {"spec": str(spec)})
        # Editing the poisonous spec changes the fingerprint — and so
        # clears its quarantine.
        assert before != after

    def test_unreadable_spec_still_fingerprints(self):
        fingerprint = request_fingerprint(
            "check", {"spec": "/no/such/file.nmsl"}
        )
        assert len(fingerprint) == 64


class TestPoisonRegistry:
    def test_quarantines_at_threshold(self):
        registry = PoisonRegistry(threshold=2)
        assert registry.record_kill("f1", "check", now=1.0) == 1
        assert not registry.is_quarantined("f1")
        assert registry.record_kill("f1", "check", now=2.0) == 2
        assert registry.is_quarantined("f1")
        assert len(registry) == 1
        snapshot = registry.snapshot()
        assert snapshot["size"] == 1
        assert snapshot["entries"][0]["op"] == "check"


class TestWorkerSupervisor:
    def test_affinity_routes_same_spec_to_same_worker(self):
        supervisor = WorkerSupervisor(_config(pool_workers=4))
        for worker_id in range(4):
            supervisor.worker_started(worker_id, now=0.0)
        first = _request()
        chosen = supervisor.assign(first, now=1.0)
        supervisor.completed(chosen, now=2.0)
        again = _request(request_id="r2")
        assert supervisor.assign(again, now=3.0) == chosen

    def test_spills_to_lowest_idle_when_preferred_busy(self):
        supervisor = WorkerSupervisor(_config(pool_workers=4))
        for worker_id in range(4):
            supervisor.worker_started(worker_id, now=0.0)
        preferred = supervisor.assign(_request(), now=1.0)
        spilled = supervisor.assign(_request(request_id="r2"), now=1.0)
        assert spilled != preferred
        assert spilled == min(
            w for w in range(4) if w != preferred
        )

    def test_exponential_backoff_with_cap_and_reset(self):
        config = _config(
            pool_workers=1, restart_backoff_s=0.5, restart_backoff_cap_s=4.0
        )
        supervisor = WorkerSupervisor(config)
        supervisor.worker_started(0, now=0.0)
        backoffs = []
        for i in range(5):
            decision = supervisor.worker_failed(0, "crash", now=float(i))
            backoffs.append(decision.backoff_s)
            supervisor.worker_started(0, now=float(i) + 0.1)
        assert backoffs == [0.5, 1.0, 2.0, 4.0, 4.0]
        # A served request resets the streak.
        supervisor.assign(_request(), now=10.0)
        supervisor.completed(0, now=11.0)
        decision = supervisor.worker_failed(0, "crash", now=12.0)
        assert decision.backoff_s == 0.5

    def test_idempotent_request_replays_once_then_refuses(self):
        supervisor = WorkerSupervisor(_config(pool_workers=1))
        supervisor.worker_started(0, now=0.0)
        request = _request(params={"spec": "/no/such.nmsl"})
        supervisor.assign(request, now=1.0)
        first = supervisor.worker_failed(0, "crash", now=2.0)
        assert first.action == "replay"
        assert first.kills == 1
        # A *different* request killing the restarted worker: its own
        # first kill, but this request's replay budget is spent.
        supervisor.worker_started(0, now=3.0)
        other = _request(
            params={"spec": "/other.nmsl"}, request_id="r9"
        )
        other.attempts = supervisor.config.replay_limit  # already replayed
        supervisor.assign(other, now=4.0)
        second = supervisor.worker_failed(0, "crash", now=5.0)
        assert second.action == "refuse"
        assert second.kind == "worker-lost"

    def test_second_kill_same_fingerprint_quarantines(self):
        supervisor = WorkerSupervisor(_config(pool_workers=1))
        supervisor.worker_started(0, now=0.0)
        params = {"spec": "/poison.nmsl"}
        supervisor.assign(_request(params=params), now=1.0)
        assert supervisor.worker_failed(0, "crash", now=2.0).action == (
            "replay"
        )
        supervisor.worker_started(0, now=3.0)
        supervisor.assign(_request(params=params, request_id="r2"), now=4.0)
        decision = supervisor.worker_failed(0, "crash", now=5.0)
        assert decision.action == "refuse"
        assert decision.kind == "quarantined"
        assert decision.quarantined
        assert supervisor.registry.is_quarantined(decision.fingerprint)

    def test_non_idempotent_op_never_replays(self):
        supervisor = WorkerSupervisor(_config(pool_workers=1))
        supervisor.worker_started(0, now=0.0)
        rollout = _request(op="rollout", params={"spec": "/s.nmsl"})
        supervisor.assign(rollout, now=1.0)
        decision = supervisor.worker_failed(0, "crash", now=2.0)
        assert decision.action == "refuse"
        assert decision.kind == "worker-lost"
        assert "not replayable" in decision.message

    def test_overdue_detection_overrun_and_wedge(self):
        config = _config(
            pool_workers=2, heartbeat_timeout_s=5.0, deadline_grace_s=2.0
        )
        supervisor = WorkerSupervisor(config)
        supervisor.worker_started(0, now=0.0)
        supervisor.worker_started(1, now=0.0)
        overrun = _request(deadline=SimpleNamespace(at_s=10.0))
        supervisor.assign(overrun, now=1.0)
        supervisor.heartbeat(0, now=10.5)  # alive, just over-budget
        assert supervisor.overdue_workers(now=11.0) == []
        assert supervisor.overdue_workers(now=12.5) == [(0, "overrun")]
        # Worker 1: no deadline, but heartbeats went stale.
        wedged = _request(
            params={"spec": "/w.nmsl"}, deadline=None, request_id="r2"
        )
        supervisor.assign(wedged, now=1.0)
        supervisor.heartbeat(1, now=2.0)
        stale = supervisor.overdue_workers(now=12.5)
        assert (1, "wedge") in stale

    def test_rss_limit_triggers_recycle(self):
        config = _config(pool_workers=1, worker_rss_limit_kb=1000.0)
        supervisor = WorkerSupervisor(config)
        supervisor.worker_started(0, now=0.0)
        supervisor.assign(_request(), now=1.0)
        assert supervisor.completed(0, now=2.0, rss_kb=500.0) is None
        supervisor.assign(_request(request_id="r2"), now=3.0)
        assert supervisor.completed(0, now=4.0, rss_kb=2000.0) == "recycle"
        restart_at = supervisor.recycle(0, now=4.0)
        assert restart_at == pytest.approx(4.0 + config.restart_backoff_s)
        assert supervisor.workers[0].state == "down"
        assert supervisor.recycles_total == 1

    def test_snapshot_shape(self):
        supervisor = WorkerSupervisor(_config(pool_workers=2))
        supervisor.worker_started(0, now=0.0, pid=123)
        snapshot = supervisor.snapshot(now=1.0)
        assert snapshot["states"] == {"idle": 1, "busy": 0, "down": 1}
        assert snapshot["quarantine"]["size"] == 0
        assert snapshot["workers"][0]["pid"] == 123


class TestSimulatedPool:
    """Replay and quarantine through the full scheduler, pooled sim."""

    def _runtime(self, **overrides):
        overrides.setdefault("pool_workers", 1)
        overrides.setdefault("restart_backoff_s", 0.5)
        return SimulatedServiceRuntime(ServiceConfig(**overrides))

    def test_pooled_check_serves_normally(self):
        runtime = self._runtime(pool_workers=2)
        runtime.offer(
            0.0, {"op": "check", "params": {"spec": CAMPUS}, "cost_s": 1.0}
        )
        responses = runtime.run()
        assert len(responses) == 1
        assert responses[0]["ok"] and responses[0]["result"]["consistent"]

    def test_crash_mid_check_replays_to_identical_result(self):
        baseline = self._runtime()
        baseline.offer(
            0.0, {"id": "c1", "op": "check", "params": {"spec": CAMPUS},
                  "cost_s": 1.0},
        )
        clean = baseline.run()[0]

        runtime = self._runtime()
        runtime.offer(
            0.0, {"id": "c1", "op": "check", "params": {"spec": CAMPUS},
                  "cost_s": 1.0},
        )
        runtime.inject_chaos(0.5, "worker-crash", worker=0)
        responses = runtime.run()
        assert len(responses) == 1
        replayed = responses[0]
        assert replayed["ok"]
        # The replayed envelope is byte-identical modulo timing (the
        # replay necessarily took longer on the clock).
        strip = lambda r: {k: v for k, v in r.items() if k != "timing"}
        assert json.dumps(strip(replayed), sort_keys=True) == json.dumps(
            strip(clean), sort_keys=True
        )
        assert replayed["timing"]["total_s"] > clean["timing"]["total_s"]
        assert runtime.core.pool.replays_total == 1
        assert runtime.core.pool.restarts_total == 1

    def test_second_crash_quarantines_then_refuses_at_admission(self):
        runtime = self._runtime()
        runtime.offer(
            0.0, {"id": "p1", "op": "check", "params": {"spec": CAMPUS},
                  "cost_s": 1.0},
        )
        runtime.inject_chaos(0.5, "worker-crash", worker=0)
        # The replay dispatches when the worker restarts at 1.0 and
        # would complete at 2.0; crash it again mid-flight.
        runtime.inject_chaos(1.5, "worker-crash", worker=0)
        # A later arrival of the same fingerprint: refused at admission.
        runtime.offer(
            5.0, {"id": "p2", "op": "check", "params": {"spec": CAMPUS}},
        )
        responses = runtime.run()
        assert len(responses) == 2
        first, second = responses
        assert not first["ok"]
        assert first["error"]["kind"] == "quarantined"
        assert first["error"]["diagnostic"] == "NM501"
        assert not second["ok"]
        assert second["error"]["kind"] == "quarantined"
        assert len(runtime.core.pool.registry) == 1
        kinds = [
            event["event"] for event in runtime.core.audit.tail(100)
        ]
        assert "quarantine" in kinds
        assert "worker-exit" in kinds

    def test_wedge_detected_after_heartbeat_timeout(self):
        runtime = self._runtime(heartbeat_timeout_s=3.0)
        runtime.offer(
            0.0, {"id": "w1", "op": "check", "params": {"spec": CAMPUS},
                  "cost_s": 10.0},
        )
        runtime.inject_chaos(1.0, "worker-wedge", worker=0)
        responses = runtime.run()
        assert len(responses) == 1
        # Wedge detected at 4.0; the request replays and completes.
        assert responses[0]["ok"]
        assert runtime.core.pool.restarts_total == 1

    def test_slow_leak_recycles_worker_gracefully(self):
        runtime = self._runtime(
            pool_workers=1, worker_rss_limit_kb=100_000.0
        )
        for i in range(3):
            runtime.offer(
                float(i) * 2.0,
                {"id": f"c{i}", "op": "check",
                 "params": {"spec": CAMPUS}, "cost_s": 0.5},
            )
        runtime.inject_chaos(0.0, "slow-leak", worker=0, growth_kb=60_000.0)
        responses = runtime.run()
        # Every request answered ok; the worker was recycled (not
        # killed) when its synthetic rss crossed the limit.
        assert all(response["ok"] for response in responses)
        assert len(responses) == 3
        assert runtime.core.pool.recycles_total >= 1

    def test_rollout_survives_worker_crash_without_replay(self, tmp_path):
        """Campaigns never run on workers: a crash mid-rollout cannot
        touch them, and the journal shows exactly one apply_intent per
        element."""
        runtime = self._runtime(
            pool_workers=2, journal_dir=str(tmp_path / "journals")
        )
        runtime.offer(
            0.0,
            {"id": "r1", "op": "rollout",
             "params": {"spec": CAMPUS,
                        "elements": ["gw.cs.campus.edu"]},
             "cost_s": 4.0},
        )
        runtime.inject_chaos(2.0, "worker-crash", worker=0)
        runtime.inject_chaos(2.0, "worker-crash", worker=1)
        responses = runtime.run()
        rollout = [r for r in responses if r.get("id") == "r1"][0]
        assert rollout["ok"], rollout
        assert rollout["result"]["complete"]
        journal = Path(rollout["result"]["journal"]).read_text()
        applies = [
            line for line in journal.splitlines()
            if json.loads(line).get("type") == "apply_intent"
        ]
        assert len(applies) == 1
        assert runtime.core.pool.replays_total == 0


# ----------------------------------------------------------------------
# The real pool: forked processes under a live daemon.
# ----------------------------------------------------------------------
def _daemon_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


@pytest.fixture
def pooled_daemon(tmp_path):
    """A live daemon with two supervised worker processes."""
    ready_file = tmp_path / "ready.json"
    socket_path = tmp_path / "nmsld.sock"
    audit_path = tmp_path / "audit.jsonl"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.daemon",
            "--socket", str(socket_path),
            "--http-port", "0",
            "--workers", "2",
            "--drain-grace", "5",
            "--ready-file", str(ready_file),
            "--audit-log", str(audit_path),
        ],
        env=_daemon_env(),
        cwd=REPO_ROOT,
        stderr=subprocess.PIPE,
    )
    for _ in range(400):
        if ready_file.exists():
            break
        if proc.poll() is not None:
            raise RuntimeError(proc.stderr.read().decode())
        time.sleep(0.05)
    else:
        proc.kill()
        raise RuntimeError("daemon never became ready")
    ready = json.loads(ready_file.read_text())
    yield {
        "proc": proc,
        "socket": str(socket_path),
        "http_port": ready["http_port"],
        "audit_path": audit_path,
    }
    if proc.poll() is None:
        proc.kill()
        proc.wait(timeout=10)


def _healthz(daemon):
    return json.loads(
        urllib.request.urlopen(
            f"http://127.0.0.1:{daemon['http_port']}/healthz"
        ).read()
    )


class TestRealPool:
    def test_healthz_reports_pool_and_survives_idle_kill(
        self, pooled_daemon
    ):
        from repro.service.client import ServiceClient

        health = _healthz(pooled_daemon)
        pool = health["pool"]
        assert pool["states"] == {"idle": 2, "busy": 0, "down": 0}
        assert pool["restarts_total"] == 0
        assert pool["quarantine"]["size"] == 0
        victim = pool["workers"][0]["pid"]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            pool = _healthz(pooled_daemon)["pool"]
            if (
                pool["restarts_total"] >= 1
                and pool["states"]["idle"] == 2
            ):
                break
            time.sleep(0.2)
        assert pool["restarts_total"] >= 1
        assert pool["states"]["idle"] == 2
        # The restarted pool still serves.
        with ServiceClient(socket_path=pooled_daemon["socket"]) as client:
            response = client.request("check", {"spec": CAMPUS})
            assert response["ok"] and response["result"]["consistent"]
        audit = pooled_daemon["audit_path"].read_text()
        kinds = [json.loads(line)["event"] for line in audit.splitlines()]
        assert "worker-exit" in kinds
        assert "worker-restart" in kinds

    def test_kill_busy_worker_replays_to_identical_envelope(
        self, pooled_daemon
    ):
        from repro.service.client import ServiceClient

        with ServiceClient(
            socket_path=pooled_daemon["socket"], timeout_s=60.0
        ) as client:
            clean = client.request("check", {"spec": CAMPUS})
            assert clean["ok"]

            import threading

            result = {}

            def slow_check():
                with ServiceClient(
                    socket_path=pooled_daemon["socket"], timeout_s=60.0
                ) as inner:
                    result["response"] = inner.request(
                        "check",
                        {"spec": CAMPUS, "chaos_sleep_s": 4.0},
                        request_id="victim",
                    )

            thread = threading.Thread(target=slow_check)
            thread.start()
            # Wait until a worker reports busy, then SIGKILL it.
            victim_pid = None
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                pool = _healthz(pooled_daemon)["pool"]
                busy = [
                    w for w in pool["workers"] if w["state"] == "busy"
                ]
                if busy:
                    victim_pid = busy[0]["pid"]
                    break
                time.sleep(0.1)
            assert victim_pid is not None, "check never went busy"
            os.kill(victim_pid, signal.SIGKILL)
            thread.join(timeout=45.0)
            assert not thread.is_alive()
            replayed = result["response"]
            # Replayed once on a fresh worker: same envelope modulo
            # timing/resources (wall-clock and cpu necessarily differ).
            assert replayed["ok"], replayed
            strip = lambda r: {
                k: v for k, v in r.items()
                if k not in ("timing", "resources", "id", "traceparent")
            }
            assert strip(replayed) == strip(clean)
            pool = _healthz(pooled_daemon)["pool"]
            assert pool["restarts_total"] >= 1
        audit = pooled_daemon["audit_path"].read_text()
        events = [json.loads(line) for line in audit.splitlines()]
        replays = [e for e in events if e["event"] == "replay"]
        assert any(e.get("request_id") == "victim" for e in replays)

    def test_poison_request_quarantined_after_two_kills(
        self, pooled_daemon
    ):
        from repro.service.client import ServiceClient

        with ServiceClient(
            socket_path=pooled_daemon["socket"], timeout_s=60.0
        ) as client:
            # chaos_exit kills the worker mid-request every time: the
            # first kill replays (and kills again), quarantining the
            # fingerprint; the structured refusal says so.
            response = client.request(
                "check", {"spec": CAMPUS, "chaos_exit": 17}
            )
            assert not response["ok"]
            assert response["error"]["kind"] == "quarantined"
            assert response["error"]["diagnostic"] == "NM501"
            # Resubmission is refused at admission without touching a
            # worker (no further restarts).
            pool_before = _healthz(pooled_daemon)["pool"]
            again = client.request(
                "check", {"spec": CAMPUS, "chaos_exit": 17}
            )
            assert again["error"]["kind"] == "quarantined"
            pool_after = _healthz(pooled_daemon)["pool"]
            assert (
                pool_after["restarts_total"]
                == pool_before["restarts_total"]
            )
            assert pool_after["quarantine"]["size"] == 1
            # An innocent request still serves fine.
            ok = client.request("check", {"spec": CAMPUS})
            assert ok["ok"]

    def test_deadline_overrun_kills_wedged_worker(self, pooled_daemon):
        from repro.service.client import ServiceClient

        with ServiceClient(
            socket_path=pooled_daemon["socket"], timeout_s=60.0
        ) as client:
            # Sleeps far past its 1s deadline: the in-child cooperative
            # deadline cannot fire during a blocking sleep, so the
            # monitor must SIGKILL on overrun (deadline + grace).
            response = client.request(
                "check",
                {"spec": CAMPUS, "chaos_sleep_s": 30.0},
                deadline_s=1.0,
            )
            assert not response["ok"]
            assert response["error"]["kind"] in (
                "worker-lost", "deadline", "quarantined"
            )
        audit = pooled_daemon["audit_path"].read_text()
        events = [json.loads(line) for line in audit.splitlines()]
        exits = [e for e in events if e["event"] == "worker-exit"]
        assert any(e.get("reason") == "overrun" for e in exits)
