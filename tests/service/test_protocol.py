"""Wire-protocol parsing, classification and serialisation."""

import json

import pytest

from repro.service.protocol import (
    CLASS_RANK,
    ERROR_CODES,
    OP_CLASS,
    OPS,
    ProtocolError,
    encode_message,
    error_response,
    parse_request,
    result_response,
)


class TestParseRequest:
    def test_minimal(self):
        parsed = parse_request('{"op": "ping"}')
        assert parsed["op"] == "ping"
        assert parsed["class"] == "interactive"
        assert parsed["id"] is None
        assert parsed["params"] == {}

    def test_full(self):
        parsed = parse_request(
            json.dumps(
                {
                    "id": "r7",
                    "op": "rollout",
                    "params": {"spec": "a.nmsl"},
                    "deadline_s": 5.5,
                    "cost_s": 2,
                }
            )
        )
        assert parsed["id"] == "r7"
        assert parsed["class"] == "bulk"
        assert parsed["deadline_s"] == 5.5
        assert parsed["cost_s"] == 2

    def test_default_classes_cover_all_ops(self):
        for op in OPS:
            assert OP_CLASS[op] in CLASS_RANK

    def test_malformed_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request("{nope")
        assert excinfo.value.kind == "bad-request"

    def test_empty_line(self):
        with pytest.raises(ProtocolError):
            parse_request("   \n")

    def test_unknown_op_preserves_id(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request('{"id": "x1", "op": "reboot"}')
        assert excinfo.value.kind == "unknown-op"
        assert excinfo.value.request_id == "x1"
        assert excinfo.value.code == 404

    def test_demotion_allowed(self):
        parsed = parse_request('{"op": "check", "class": "bulk"}')
        assert parsed["class"] == "bulk"

    def test_promotion_refused(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request('{"op": "rollout", "class": "interactive"}')
        assert excinfo.value.kind == "bad-request"
        assert "promote" in str(excinfo.value)

    def test_bad_deadline(self):
        with pytest.raises(ProtocolError):
            parse_request('{"op": "ping", "deadline_s": -1}')
        with pytest.raises(ProtocolError):
            parse_request('{"op": "ping", "deadline_s": "soon"}')

    def test_bad_params(self):
        with pytest.raises(ProtocolError):
            parse_request('{"op": "ping", "params": []}')


class TestResponses:
    def test_error_codes_are_http_like(self):
        assert ERROR_CODES["shed"] == 503
        assert ERROR_CODES["deadline"] == 504
        assert ERROR_CODES["vetoed"] == 403
        assert ERROR_CODES["internal"] == 500

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ProtocolError("teapot", "I'm one")

    def test_error_response_shape(self):
        message = error_response(
            "r1", "shed", "evicted", op="rollout", cls="bulk",
            retry_after_s=0.5,
        )
        assert message["ok"] is False
        assert message["error"]["code"] == 503
        assert message["error"]["retry_after_s"] == 0.5
        assert message["op"] == "rollout"

    def test_error_response_drops_none_details(self):
        message = error_response("r1", "queue-full", "full", hint=None)
        assert "hint" not in message["error"]

    def test_result_response_shape(self):
        message = result_response("r2", "check", "interactive", {"a": 1})
        assert message["ok"] is True
        assert message["result"] == {"a": 1}

    def test_encoding_is_deterministic(self):
        a = encode_message({"b": 1, "a": {"z": 2, "y": 3}})
        b = encode_message({"a": {"y": 3, "z": 2}, "b": 1})
        assert a == b
        assert a.endswith("\n")
        assert " " not in a
