"""Chaos acceptance for the supervised worker pool (simulated runtime).

The supervision layer's acceptance properties, proved on the logical
clock where they are decidable:

* a seeded storm of worker crashes, wedges, and memory leaks over an
  overload-grade workload produces a byte-identical transcript across
  same-seed runs — supervision is as deterministic as admission;
* zero silently-dropped requests: every offered request is answered
  exactly once, whether it succeeds, is shed, expires, replays after a
  worker death, or is refused with a structured worker-lost/quarantined
  error;
* the pool converges: after the storm every worker is back to idle and
  the restarts the chaos forced are visible in the supervisor snapshot.
"""

import random

from repro.service.core import ServiceConfig
from repro.service.runtime import SimulatedServiceRuntime

CAMPUS = "examples/campus.nmsl"


def _chaos_runtime(seed: int, crashes: int = 6):
    """An overload-grade pooled workload with seeded worker faults.

    Every random draw comes from one ``random.Random(seed)`` stream, so
    the full event schedule — arrivals, costs, fault kinds, fault times
    — is a pure function of the seed.
    """
    rng = random.Random(seed)
    runtime = SimulatedServiceRuntime(
        config=ServiceConfig(
            workers=2,
            pool_workers=2,
            queue_capacity=8,
            heartbeat_timeout_s=4.0,
            restart_backoff_s=0.5,
            worker_rss_limit_kb=200_000.0,
        )
    )
    offered = []
    for index in range(20):
        request_id = f"r{seed}-{index}"
        offered.append(request_id)
        runtime.offer(
            round(rng.uniform(0.0, 40.0), 3),
            {
                "id": request_id,
                "op": rng.choice(["check", "analyze", "check"]),
                "class": rng.choice([None, "bulk", None]) or "normal",
                "params": {"spec": CAMPUS},
                "cost_s": round(rng.uniform(0.2, 5.0), 3),
            },
        )
    for _ in range(crashes):
        runtime.inject_chaos(
            round(rng.uniform(0.5, 40.0), 3),
            rng.choice(["worker-crash", "worker-crash", "worker-wedge",
                        "slow-leak"]),
            worker=rng.randrange(2),
            growth_kb=80_000.0,
        )
    return runtime, offered


class TestChaosDeterminism:
    def test_same_seed_byte_identical_transcript(self):
        first, _ = _chaos_runtime(seed=7)
        first.run()
        second, _ = _chaos_runtime(seed=7)
        second.run()
        assert first.transcript_text() == second.transcript_text()

    def test_chaos_actually_bites(self):
        # The storm must force visible supervision work, otherwise the
        # determinism assertion above is vacuous.
        runtime, _ = _chaos_runtime(seed=7)
        runtime.run()
        snapshot = runtime.core.pool.snapshot(runtime._now)
        assert snapshot["restarts_total"] > 0

    def test_distinct_seeds_distinct_schedules(self):
        first, _ = _chaos_runtime(seed=1)
        first.run()
        second, _ = _chaos_runtime(seed=2)
        second.run()
        assert first.transcript_text() != second.transcript_text()


class TestZeroSilentDrops:
    def test_every_request_answered_exactly_once(self):
        for seed in (0, 3, 11, 42):
            runtime, offered = _chaos_runtime(seed=seed)
            responses = runtime.run()
            answered = [m["id"] for m in responses]
            assert sorted(answered) == sorted(offered), (
                f"seed {seed}: offered {len(offered)}, "
                f"answered {len(answered)}"
            )
            # Every refusal is structured: a kind and an HTTP-ish code.
            for message in responses:
                if not message["ok"]:
                    assert message["error"]["kind"], message
                    assert message["error"]["code"] >= 400, message

    def test_crash_storm_converges_to_idle_pool(self):
        runtime, offered = _chaos_runtime(seed=5, crashes=12)
        responses = runtime.run()
        assert sorted(m["id"] for m in responses) == sorted(offered)
        counts = runtime.core.pool.counts()
        assert counts.get("busy", 0) == 0
        assert counts.get("down", 0) == 0
        assert counts.get("idle", 0) == 2

    def test_drain_during_chaos_still_answers_everything(self):
        runtime, offered = _chaos_runtime(seed=9)
        runtime.drain_at_s = 20.0
        runtime._push(20.0, "drain", None)
        responses = runtime.run()
        assert sorted(m["id"] for m in responses) == sorted(offered)
        kinds = {
            m["error"]["kind"] for m in responses if not m["ok"]
        }
        assert "draining" in kinds  # late arrivals refused at the door
