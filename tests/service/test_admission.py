"""Admission control: bounded queues, shed ordering, dispatch scan."""

from dataclasses import dataclass
from typing import Optional

import pytest

from repro.deadline import Deadline
from repro.service.admission import AdmissionController


@dataclass
class FakeRequest:
    id: str
    cls: str
    deadline: Optional[Deadline] = None
    campaign_key: Optional[str] = None


def _req(request_id: str, cls: str, deadline_at=None, clock=None):
    deadline = None
    if deadline_at is not None:
        deadline = Deadline(at_s=deadline_at, clock=clock or (lambda: 0.0))
    return FakeRequest(id=request_id, cls=cls, deadline=deadline)


class TestOffer:
    def test_admits_under_capacity(self):
        controller = AdmissionController(capacity=2)
        assert controller.offer(_req("a", "bulk")) == (True, None)
        assert controller.offer(_req("b", "interactive")) == (True, None)
        assert controller.depth() == 2

    def test_rejects_when_nothing_below(self):
        controller = AdmissionController(capacity=1)
        controller.offer(_req("a", "bulk"))
        admitted, victim = controller.offer(_req("b", "bulk"))
        assert not admitted and victim is None
        assert controller.rejected_total == 1

    def test_sheds_newest_of_lowest_class(self):
        controller = AdmissionController(capacity=3)
        controller.offer(_req("n1", "normal"))
        controller.offer(_req("b1", "bulk"))
        controller.offer(_req("b2", "bulk"))
        admitted, victim = controller.offer(_req("i1", "interactive"))
        assert admitted
        assert victim.id == "b2"  # newest request of the lowest class
        assert controller.depths() == {
            "interactive": 1, "normal": 1, "bulk": 1,
        }

    def test_sheds_bulk_before_normal(self):
        controller = AdmissionController(capacity=2)
        controller.offer(_req("n1", "normal"))
        controller.offer(_req("b1", "bulk"))
        _admitted, victim = controller.offer(_req("i1", "interactive"))
        assert victim.id == "b1"

    def test_normal_sheds_only_bulk(self):
        controller = AdmissionController(capacity=2)
        controller.offer(_req("i1", "interactive"))
        controller.offer(_req("n1", "normal"))
        admitted, victim = controller.offer(_req("n2", "normal"))
        assert not admitted and victim is None  # nothing strictly below

    def test_interactive_never_shed_by_interactive(self):
        controller = AdmissionController(capacity=1)
        controller.offer(_req("i1", "interactive"))
        admitted, victim = controller.offer(_req("i2", "interactive"))
        assert not admitted and victim is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(capacity=0)


class TestPopNext:
    def test_rank_order_then_fifo(self):
        controller = AdmissionController(capacity=8)
        for request in (
            _req("b1", "bulk"), _req("i1", "interactive"),
            _req("n1", "normal"), _req("i2", "interactive"),
        ):
            controller.offer(request)
        order = []
        while True:
            action = controller.pop_next(0.0, lambda request: True)
            if action is None:
                break
            order.append(action[0].id)
        assert order == ["i1", "i2", "n1", "b1"]

    def test_skips_blocked_requests(self):
        controller = AdmissionController(capacity=8)
        blocked = FakeRequest(id="b1", cls="bulk", campaign_key="conflict")
        free = FakeRequest(id="b2", cls="bulk")
        controller.offer(blocked)
        controller.offer(free)
        action = controller.pop_next(
            0.0, lambda request: request.campaign_key is None
        )
        assert action == (free, "run")
        assert controller.depth() == 1  # blocked one still queued

    def test_expired_popped_first(self):
        clock_now = 10.0
        controller = AdmissionController(capacity=8)
        expired = _req("e1", "interactive", deadline_at=5.0,
                       clock=lambda: clock_now)
        live = _req("l1", "interactive")
        controller.offer(expired)
        controller.offer(live)
        action = controller.pop_next(clock_now, lambda request: True)
        assert action == (expired, "expired")
        action = controller.pop_next(clock_now, lambda request: True)
        assert action == (live, "run")

    def test_all_blocked_returns_none(self):
        controller = AdmissionController(capacity=8)
        controller.offer(_req("b1", "bulk"))
        assert controller.pop_next(0.0, lambda request: False) is None
