"""Thread-safety regressions: the core and handlers under real threads.

The simulated runtime proves the *policies* deterministically; these
tests prove the shared-state plumbing those policies run on survives the
asyncio runtime's actual concurrency — submits racing finishes on the
scheduler state, and overlapping campaigns journaling under their own
request ids rather than whichever request happened to execute last.
"""

import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.service.core import ServiceConfig, ServiceCore
from repro.service.protocol import encode_message

CAMPUS = "examples/campus.nmsl"


def _line(message: dict) -> str:
    return encode_message(message)


class TestCoreThreadSafety:
    def test_racing_submit_and_finish_never_drift_in_flight(self):
        """in_flight and the counters stay exact under 8-way churn.

        Unsynchronised ``+=``/``-=`` on the scheduler state loses
        updates under this load, leaving ``in_flight`` permanently
        drifted — which would make the daemon's drain loop hang.
        """
        core = ServiceCore(
            config=ServiceConfig(workers=8, queue_capacity=256)
        )
        lines = [_line({"id": f"p{i}", "op": "ping"}) for i in range(200)]
        responses = []
        responses_lock = threading.Lock()

        def churn(line):
            request, refusals = core.submit(line)
            with responses_lock:
                responses.extend(message for _to, message in refusals)
            while True:
                action = core.next_action()
                if action is None:
                    break
                queued, disposition = action
                message = (
                    core.expire(queued)
                    if disposition == "expired"
                    else core.execute(queued)
                )
                with responses_lock:
                    responses.append(message)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(churn, lines))

        assert core.in_flight == 0
        assert core.admission.depth() == 0
        assert len(responses) == len(lines)
        assert core.responses_total == len(lines)
        assert {message["id"] for message in responses} == {
            f"p{i}" for i in range(len(lines))
        }

    def test_drain_during_campaign_plan_refuses_cleanly(self, monkeypatch):
        """Drain winning the race against a mid-plan submit still answers.

        Campaign planning runs outside the core lock (it may compile);
        if drain begins in that window the request must be refused —
        the drain path has already flushed the queues, so admitting it
        would leave it unanswered forever.
        """
        core = ServiceCore(config=ServiceConfig(workers=1))
        real_plan = core.handlers.campaign_plan

        def plan_then_drain(op, params):
            key, claim = real_plan(op, params)
            core.begin_drain()
            return key, claim

        monkeypatch.setattr(core.handlers, "campaign_plan", plan_then_drain)
        request, refusals = core.submit(
            _line({"id": "race", "op": "rollout",
                   "params": {"spec": CAMPUS}})
        )
        assert request is None
        (_to, message), = refusals
        assert message["error"]["kind"] == "draining"
        assert core.admission.depth() == 0


class TestConcurrentCampaignJournals:
    def test_overlapping_executes_journal_under_their_own_ids(
        self, tmp_path
    ):
        """Two campaigns on worker threads each journal under their id.

        Per-request context routed through shared instance state lets
        one campaign's journal land under the other's name (or not be
        written at all), which breaks crash-resume.
        """
        core = ServiceCore(
            config=ServiceConfig(workers=4, journal_dir=str(tmp_path))
        )
        for message in (
            {"id": "cs-campaign", "op": "rollout",
             "params": {"spec": CAMPUS,
                        "elements": ["gw.cs.campus.edu",
                                     "db.cs.campus.edu"]}},
            {"id": "engr-campaign", "op": "rollout",
             "params": {"spec": CAMPUS,
                        "elements": ["gw.engr.campus.edu",
                                     "sim.engr.campus.edu"]}},
        ):
            request, refusals = core.submit(_line(message))
            assert request is not None and not refusals

        actions = [core.next_action(), core.next_action()]
        assert all(
            action is not None and action[1] == "run" for action in actions
        )
        with ThreadPoolExecutor(max_workers=2) as pool:
            results = list(
                pool.map(lambda action: core.execute(action[0]), actions)
            )

        by_id = {message["id"]: message for message in results}
        for request_id in ("cs-campaign", "engr-campaign"):
            response = by_id[request_id]
            assert response["ok"], response
            journal = response["result"]["journal"]
            assert journal is not None
            assert f"campaign-{request_id}" in Path(journal).name
            assert Path(journal).exists()
        assert core.in_flight == 0
