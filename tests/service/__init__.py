"""Tests for the ``nmsld`` management-plane service layer."""
