"""Overload chaos on the deterministic simulated runtime.

The acceptance properties of the robustness layer, proved on the logical
clock where they are decidable:

* at 2x queue capacity only the lowest-priority class is shed, every
  refusal is structured (no silent drops: #responses == #requests);
* a deadline shorter than the declared service cost expires *mid-check*
  and surfaces as a 504, not a hang or a wrong answer;
* two campaigns over disjoint element sets run concurrently to
  completion — neither starves the other, and an overlapping campaign
  waits without blocking the independent one behind it;
* graceful drain answers everything still queued;
* the full transcript is byte-identical across same-seed runs.
"""

import pytest

from repro.service.core import ServiceConfig
from repro.service.runtime import SimulatedServiceRuntime

CAMPUS = "examples/campus.nmsl"
CS_ELEMENTS = ["gw.cs.campus.edu", "db.cs.campus.edu"]
ENGR_ELEMENTS = ["gw.engr.campus.edu", "sim.engr.campus.edu"]


def _overload_runtime(seed: int = 0) -> SimulatedServiceRuntime:
    """Offered load at 2x queue capacity, mixed priority classes."""
    capacity = 8
    runtime = SimulatedServiceRuntime(
        config=ServiceConfig(workers=2, queue_capacity=capacity)
    )
    # Enough slow bulk work to fill every worker and queue slot...
    for index in range(capacity + 2):
        runtime.offer(
            0.0,
            {
                "id": f"bulk-{seed}-{index}",
                "op": "analyze",
                "class": "bulk",
                "params": {"spec": CAMPUS},
                # Long enough to hold both workers through the bursts,
                # short enough that queued interactive requests stay
                # inside their implicit 30 s deadline.
                "cost_s": 20.0,
            },
        )
    # ...then an interactive burst that must displace bulk entries, and
    # a normal-class tail that can only displace bulk, at 2x capacity
    # total offered load.
    for index in range(capacity // 2):
        runtime.offer(
            1.0,
            {
                "id": f"int-{seed}-{index}",
                "op": "check",
                "params": {"spec": CAMPUS},
                "cost_s": 0.5,
            },
        )
    for index in range(capacity // 2):
        runtime.offer(
            2.0,
            {
                "id": f"norm-{seed}-{index}",
                "op": "analyze",
                "params": {"spec": CAMPUS},
                "cost_s": 1.0,
            },
        )
    return runtime


class TestOverload:
    def test_sheds_only_lowest_class_and_never_drops(self):
        runtime = _overload_runtime()
        responses = runtime.run()
        offered = 10 + 4 + 4
        assert len(responses) == offered  # every request answered
        by_id = {message["id"]: message for message in responses}

        shed = [m for m in responses if not m["ok"]
                and m["error"]["kind"] == "shed"]
        rejected = [m for m in responses if not m["ok"]
                    and m["error"]["kind"] == "queue-full"]
        assert shed, "overload must shed"
        # Only the bulk class is ever shed: interactive and normal
        # arrivals displace bulk, nothing displaces them here.
        assert {m["id"].split("-")[0] for m in shed} == {"bulk"}
        for message in shed:
            assert message["error"]["code"] == 503
            assert message["error"]["retry_after_s"] > 0
        # Arrivals refused outright (queue full, nothing below them)
        # are also bulk: the initial burst overfills its own class.
        assert {m["id"].split("-")[0] for m in rejected} <= {"bulk"}

        # Every interactive and normal request succeeded.
        for index in range(4):
            assert by_id[f"int-0-{index}"]["ok"], by_id[f"int-0-{index}"]
            assert by_id[f"norm-0-{index}"]["ok"]

    def test_interactive_served_before_queued_bulk(self):
        runtime = _overload_runtime()
        responses = runtime.run()
        order = [m["id"] for m in responses if m["ok"]]
        first_bulk_done = next(
            position for position, rid in enumerate(order)
            if rid.startswith("bulk")
        )
        last_interactive_done = max(
            position for position, rid in enumerate(order)
            if rid.startswith("int")
        )
        # Workers busy on the first two bulk jobs finish those, but every
        # *queued* interactive completes before any queued bulk job:
        # at most the 2 in-flight bulk responses precede the last
        # interactive one.
        bulk_before_interactive = [
            rid for rid in order[:last_interactive_done]
            if rid.startswith("bulk")
        ]
        assert len(bulk_before_interactive) <= 2
        assert first_bulk_done >= 0

    def test_byte_identical_transcripts(self):
        first = _overload_runtime().run()
        second_runtime = _overload_runtime()
        second_runtime.run()
        first_text = "\n".join(
            __import__("json").dumps(m, sort_keys=True) for m in first
        )
        assert first_text == "\n".join(
            __import__("json").dumps(m, sort_keys=True)
            for m in second_runtime.responses
        )
        assert _overload_runtime().run() == first


class TestDeadlines:
    def test_deadline_expires_mid_check(self):
        runtime = SimulatedServiceRuntime(
            config=ServiceConfig(workers=1)
        )
        runtime.offer(
            0.0,
            {
                "id": "d1",
                "op": "check",
                "params": {"spec": CAMPUS},
                "deadline_s": 1.0,
                "cost_s": 5.0,  # service takes longer than the budget
            },
        )
        (response,) = runtime.run()
        assert not response["ok"]
        assert response["error"]["kind"] == "deadline"
        assert response["error"]["code"] == 504
        # The expiry fired from a cooperative poll inside the checker.
        assert "consistency." in response["error"]["message"]

    def test_deadline_expires_while_queued(self):
        runtime = SimulatedServiceRuntime(
            config=ServiceConfig(workers=1)
        )
        runtime.offer(
            0.0,
            {
                "id": "hog",
                "op": "analyze",
                "class": "bulk",
                "params": {"spec": CAMPUS},
                "cost_s": 100.0,
            },
        )
        runtime.offer(
            0.5,
            {
                "id": "q1",
                "op": "check",
                "params": {"spec": CAMPUS},
                "deadline_s": 2.0,
                "cost_s": 0.1,
            },
        )
        responses = {m["id"]: m for m in runtime.run()}
        assert responses["hog"]["ok"]
        assert responses["q1"]["error"]["kind"] == "deadline"
        assert "while queued" in responses["q1"]["error"]["message"]

    def test_generous_deadline_succeeds(self):
        runtime = SimulatedServiceRuntime()
        runtime.offer(
            0.0,
            {
                "id": "ok1",
                "op": "check",
                "params": {"spec": CAMPUS},
                "deadline_s": 100.0,
                "cost_s": 1.0,
            },
        )
        (response,) = runtime.run()
        assert response["ok"]
        assert response["result"]["consistent"]


class TestCampaignBulkheads:
    def test_disjoint_campaigns_run_concurrently(self, tmp_path):
        runtime = SimulatedServiceRuntime(
            config=ServiceConfig(
                workers=2, journal_dir=str(tmp_path / "journals")
            )
        )
        runtime.offer(0.0, {
            "id": "cs", "op": "rollout", "cost_s": 10.0,
            "params": {"spec": CAMPUS, "elements": CS_ELEMENTS},
        })
        runtime.offer(0.0, {
            "id": "engr", "op": "rollout", "cost_s": 10.0,
            "params": {"spec": CAMPUS, "elements": ENGR_ELEMENTS},
        })
        responses = {m["id"]: m for m in runtime.run()}
        assert responses["cs"]["ok"] and responses["engr"]["ok"]
        assert responses["cs"]["result"]["committed"] == sorted(CS_ELEMENTS)
        assert responses["engr"]["result"]["committed"] == sorted(
            ENGR_ELEMENTS
        )
        # Concurrent, not serialised: both queued at t=0 with two
        # workers free, so both start immediately.
        assert responses["engr"]["timing"]["queued_s"] == 0.0
        assert responses["cs"]["timing"]["queued_s"] == 0.0

    def test_overlapping_campaign_waits_without_blocking_disjoint(
        self, tmp_path
    ):
        runtime = SimulatedServiceRuntime(
            config=ServiceConfig(
                workers=3, journal_dir=str(tmp_path / "journals")
            )
        )
        runtime.offer(0.0, {
            "id": "first", "op": "rollout", "cost_s": 10.0,
            "params": {"spec": CAMPUS, "elements": CS_ELEMENTS},
        })
        # Overlaps "first" — must wait for it.
        runtime.offer(0.1, {
            "id": "overlap", "op": "rollout", "cost_s": 10.0,
            "params": {"spec": CAMPUS,
                       "elements": [CS_ELEMENTS[0]]},
        })
        # Disjoint — queued *behind* the blocked overlap but must not
        # wait for it (no head-of-line blocking).
        runtime.offer(0.2, {
            "id": "independent", "op": "rollout", "cost_s": 10.0,
            "params": {"spec": CAMPUS, "elements": ENGR_ELEMENTS},
        })
        responses = {m["id"]: m for m in runtime.run()}
        assert all(m["ok"] for m in responses.values())
        # The independent campaign started while "overlap" waited.
        assert responses["independent"]["timing"]["queued_s"] < 1.0
        assert responses["overlap"]["timing"]["queued_s"] >= 9.0

    def test_duplicate_campaign_serialises(self, tmp_path):
        runtime = SimulatedServiceRuntime(
            config=ServiceConfig(
                workers=2, journal_dir=str(tmp_path / "journals")
            )
        )
        for index in range(2):
            runtime.offer(0.0, {
                "id": f"dup-{index}", "op": "rollout", "cost_s": 5.0,
                "params": {"spec": CAMPUS, "elements": CS_ELEMENTS},
            })
        responses = {m["id"]: m for m in runtime.run()}
        assert all(m["ok"] for m in responses.values())
        starts = sorted(
            m["timing"]["queued_s"] for m in responses.values()
        )
        assert starts[0] == 0.0
        assert starts[1] >= 5.0  # same claim: strictly serialised


class TestDrain:
    def test_drain_answers_everything_queued(self):
        runtime = SimulatedServiceRuntime(
            config=ServiceConfig(workers=1),
            drain_at_s=1.0,
        )
        runtime.offer(0.0, {
            "id": "running", "op": "analyze", "class": "bulk",
            "params": {"spec": CAMPUS}, "cost_s": 10.0,
        })
        runtime.offer(0.5, {
            "id": "queued", "op": "check",
            "params": {"spec": CAMPUS}, "cost_s": 1.0,
        })
        runtime.offer(2.0, {
            "id": "late", "op": "ping",
        })
        responses = {m["id"]: m for m in runtime.run()}
        assert len(responses) == 3  # nothing silently dropped
        # In-flight work finishes (its journal stays coherent).
        assert responses["running"]["ok"]
        # Queued work is refused with a structured draining error.
        assert responses["queued"]["error"]["kind"] == "draining"
        # Arrivals after the drain point are refused at the door.
        assert responses["late"]["error"]["kind"] == "draining"
        for message in responses.values():
            if not message["ok"]:
                assert message["error"]["code"] == 503


class TestBreakers:
    def test_repeated_failures_open_the_circuit(self, tmp_path):
        runtime = SimulatedServiceRuntime(
            config=ServiceConfig(workers=1, journal_dir=str(tmp_path)),
        )
        # Nonexistent tag -> handler raises -> internal error -> the
        # campaign breaker records a failure each time.
        for index in range(4):
            runtime.offer(index * 1.0, {
                "id": f"f{index}", "op": "rollout", "cost_s": 0.1,
                "params": {"spec": CAMPUS, "tag": "NoSuchTag",
                           "elements": CS_ELEMENTS},
            })
        responses = [m for m in runtime.run()]
        kinds = [m["error"]["kind"] for m in responses if not m["ok"]]
        assert kinds[:3] == ["internal", "internal", "internal"]
        # The fourth submission is refused at the door, fast.
        assert kinds[3] == "circuit-open"
        by_id = {m["id"]: m for m in responses}
        assert by_id["f3"]["error"]["retry_after_s"] > 0


class TestWorkerReservation:
    def test_reserved_slot_keeps_interactive_fast(self):
        config = ServiceConfig(
            workers=2, reserved_interactive_workers=1
        )
        runtime = SimulatedServiceRuntime(config=config)
        # Enough bulk to occupy every unreserved worker indefinitely.
        for index in range(4):
            runtime.offer(0.0, {
                "id": f"bulk-{index}", "op": "analyze", "class": "bulk",
                "params": {"spec": CAMPUS}, "cost_s": 40.0,
            })
        runtime.offer(5.0, {
            "id": "fast", "op": "check",
            "params": {"spec": CAMPUS}, "cost_s": 0.5,
        })
        responses = {m["id"]: m for m in runtime.run()}
        # Only one worker ever ran bulk; the reserved slot served the
        # interactive check immediately.
        assert responses["fast"]["ok"]
        assert responses["fast"]["timing"]["queued_s"] == 0.0
        bulk_done = [m for m in responses.values()
                     if m["id"].startswith("bulk") and m["ok"]]
        assert bulk_done, "bulk still progresses on unreserved workers"

    def test_reservation_clamped_below_worker_count(self):
        config = ServiceConfig(
            workers=1, reserved_interactive_workers=1
        )
        runtime = SimulatedServiceRuntime(config=config)
        runtime.offer(0.0, {
            "id": "b", "op": "analyze", "class": "bulk",
            "params": {"spec": CAMPUS}, "cost_s": 1.0,
        })
        responses = runtime.run()
        # With a single worker the clamp keeps bulk schedulable.
        assert responses[0]["ok"]
