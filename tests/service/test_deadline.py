"""Deadline propagation into the checker, coordinator and reconciler."""

import pytest

from repro.deadline import Deadline
from repro.errors import DeadlineExceeded, ServiceError
from repro.workloads.scenarios import campus_internet


class TestDeadline:
    def test_not_expired(self):
        deadline = Deadline(at_s=10.0, clock=lambda: 3.0)
        assert not deadline.expired
        assert deadline.remaining() == 7.0
        deadline.check("anywhere")  # no raise

    def test_expired_raises_with_context(self):
        deadline = Deadline(at_s=1.0, clock=lambda: 2.5, label="check")
        assert deadline.expired
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("consistency.reduce")
        assert "consistency.reduce" in str(excinfo.value)
        assert excinfo.value.at_s == 1.0
        assert excinfo.value.now_s == 2.5

    def test_is_service_error(self):
        with pytest.raises(ServiceError):
            Deadline(at_s=0.0, clock=lambda: 1.0).check()

    def test_after_builds_relative(self):
        now = [5.0]
        deadline = Deadline.after(2.0, clock=lambda: now[0])
        assert not deadline.expired
        now[0] = 7.5
        assert deadline.expired

    def test_poll_tolerates_none(self):
        Deadline.poll(None, "anywhere")  # no raise


def _campus_checker():
    from repro.consistency.checker import ConsistencyChecker
    from repro.nmsl.compiler import compile_text

    compiler, result = compile_text(campus_internet())
    return ConsistencyChecker(result.specification, compiler.tree)


class TestCheckerDeadline:
    def test_expired_deadline_aborts_check(self):
        checker = _campus_checker()
        with pytest.raises(DeadlineExceeded):
            checker.check(
                deadline=Deadline(at_s=0.0, clock=lambda: 1.0)
            )

    def test_generous_deadline_passes(self):
        checker = _campus_checker()
        outcome = checker.check(
            deadline=Deadline(at_s=1e9, clock=lambda: 0.0)
        )
        assert outcome.consistent


class TestCampaignDeadline:
    def test_rollout_deadline_expires(self, tmp_path):
        from repro.service.handlers import SpecCache

        session = SpecCache().get("examples/campus.nmsl")
        with pytest.raises(DeadlineExceeded):
            session.runtime.rollout(
                tag="BartsSnmpd",
                deadline=Deadline(at_s=0.0, clock=lambda: 1.0),
            )

    def test_heal_deadline_expires(self):
        from repro.heal import HealthRegistry
        from repro.service.handlers import SpecCache

        session = SpecCache().get("examples/campus.nmsl")
        configs = session.runtime.rollout_targets("BartsSnmpd")
        with pytest.raises(DeadlineExceeded):
            session.runtime.heal(
                tag="BartsSnmpd",
                registry=HealthRegistry(sorted(configs)),
                rounds=3,
                deadline=Deadline(at_s=0.0, clock=lambda: 1.0),
            )
