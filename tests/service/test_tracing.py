"""End-to-end request tracing through the service (the PR's acceptance
property): one ``check`` with ``jobs=2`` yields one *connected* trace —
every span carries the request's trace id, every parent link resolves,
the envelope names the trace, the audit log and campaign journal join
on it, and two same-seed logical-clock runs serialize the trace
byte-identically."""

import json

import pytest

from repro import obs
from repro.obs import LogicalClock
from repro.obs.context import TraceContext
from repro.service.core import ServiceConfig
from repro.service.runtime import SimulatedServiceRuntime

CAMPUS = "examples/campus.nmsl"
CS_ELEMENTS = ["gw.cs.campus.edu", "db.cs.campus.edu"]


def run_one_check(jobs=2, audit_path=None, traceparent=None):
    """One sharded check through the simulated runtime under a logical
    clock; returns (response, session) with the session's tracer."""
    with obs.scope(clock=LogicalClock()) as session:
        runtime = SimulatedServiceRuntime(
            config=ServiceConfig(workers=2, audit_path=audit_path)
        )
        message = {
            "id": "r1",
            "op": "check",
            "params": {
                "spec": CAMPUS,
                "jobs": jobs,
                # Force multi-process sharding on the small corpus.
                "shard_threshold": 1,
            },
            "cost_s": 0.01,
        }
        if traceparent is not None:
            message["traceparent"] = traceparent
        runtime.offer(0.0, message)
        (response,) = runtime.run()
    return response, session


def connected(records, trace_id, roots):
    """Every record carries *trace_id* and parents resolve within the
    trace (or onto a known root)."""
    known = {r.span_id for r in records} | set(roots) | {""}
    return all(
        r.trace_id == trace_id and r.parent_id in known for r in records
    )


class TestConnectedTrace:
    def test_single_check_yields_one_connected_trace(self):
        response, session = run_one_check(jobs=2)
        assert response["ok"], response
        context = TraceContext.from_traceparent(response["traceparent"])
        records = session.tracer.finished()
        assert records, "the check must record spans"
        in_trace = [r for r in records if r.trace_id == context.trace_id]
        names = {r.name for r in in_trace}
        assert "service.request" in names
        assert "consistency.check" in names
        assert "consistency.shard" in names  # the forked subtrees
        assert connected(in_trace, context.trace_id, {context.span_id})

    def test_no_spans_escape_the_request_trace(self):
        """With one request in flight, *every* span the service records
        belongs to its trace — nothing executes untraced."""
        response, session = run_one_check(jobs=2)
        context = TraceContext.from_traceparent(response["traceparent"])
        orphans = [
            r.name
            for r in session.tracer.finished()
            if r.trace_id != context.trace_id
        ]
        assert orphans == []

    def test_shard_spans_land_on_spliced_virtual_tids(self):
        """Forked-worker spans render on their own virtual thread, not
        the request thread's (distinct-tids-per-worker is unit-tested in
        tests/obs/test_context.py — the examples only shard to one
        bucket)."""
        _, session = run_one_check(jobs=2)
        by_name = {r.name: r for r in session.tracer.finished()}
        assert (
            by_name["consistency.shard"].tid
            != by_name["service.request"].tid
        )

    def test_single_job_check_is_equally_connected(self):
        response, session = run_one_check(jobs=1)
        context = TraceContext.from_traceparent(response["traceparent"])
        records = [
            r
            for r in session.tracer.finished()
            if r.trace_id == context.trace_id
        ]
        assert connected(records, context.trace_id, {context.span_id})


class TestDeterminism:
    def test_trace_byte_identical_across_same_seed_runs(self):
        first_response, first = run_one_check(jobs=2)
        second_response, second = run_one_check(jobs=2)
        assert first_response == second_response
        assert first.tracer.to_jsonl() == second.tracer.to_jsonl()
        assert first.tracer.to_jsonl()  # non-empty


class TestEnvelope:
    def test_response_traceparent_is_well_formed(self):
        response, _ = run_one_check()
        context = TraceContext.from_traceparent(response["traceparent"])
        # The service's default allocator seed prefixes the trace id.
        assert context.trace_id.startswith(f"{0x1989:08x}")

    def test_client_traceparent_joins_the_existing_trace(self):
        client_trace = "ab" * 16
        response, session = run_one_check(
            traceparent=f"00-{client_trace}-{'cd' * 8}-01"
        )
        context = TraceContext.from_traceparent(response["traceparent"])
        assert context.trace_id == client_trace  # same trace...
        assert context.span_id != "cd" * 8  # ...fresh server span
        assert any(
            r.trace_id == client_trace
            for r in session.tracer.finished()
        )

    def test_malformed_traceparent_is_a_bad_request(self):
        response, _ = run_one_check(traceparent="not-a-traceparent")
        assert not response["ok"]
        assert response["error"]["kind"] == "bad-request"

    def test_simulated_envelope_has_no_resource_noise(self):
        """The simulated runtime keeps resource accounting off so
        logical-clock transcripts stay byte-identical."""
        response, _ = run_one_check()
        assert "resources" not in response


class TestAuditJoin:
    def test_audit_events_share_the_request_trace(self, tmp_path):
        audit_path = tmp_path / "audit.jsonl"
        response, _ = run_one_check(audit_path=str(audit_path))
        context = TraceContext.from_traceparent(response["traceparent"])
        events = [
            json.loads(line)
            for line in audit_path.read_text().splitlines()
        ]
        assert {e["event"] for e in events} == {"admit", "response"}
        assert all(e["trace_id"] == context.trace_id for e in events)
        assert all(e["request_id"] == "r1" for e in events)


class TestJournalJoin:
    def test_campaign_journal_stamped_with_the_request_trace(
        self, tmp_path
    ):
        with obs.scope(clock=LogicalClock()):
            runtime = SimulatedServiceRuntime(
                config=ServiceConfig(
                    workers=2, journal_dir=str(tmp_path)
                )
            )
            runtime.offer(
                0.0,
                {
                    "id": "c1",
                    "op": "rollout",
                    "params": {
                        "spec": CAMPUS,
                        "elements": CS_ELEMENTS,
                        "seed": 7,
                    },
                    "cost_s": 1.0,
                },
            )
            (response,) = runtime.run()
        assert response["ok"], response
        context = TraceContext.from_traceparent(response["traceparent"])
        journal_path = response["result"]["journal"]
        records = [
            json.loads(line)
            for line in open(journal_path, encoding="utf-8")
        ]
        assert records
        assert all(
            record.get("trace_id") == context.trace_id
            for record in records
        )
