"""Black-box tests of the ``nmsld`` daemon and its client."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
CAMPUS = str(REPO_ROOT / "examples" / "campus.nmsl")


def _daemon_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def _run_daemon_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro.service.daemon", *argv],
        env=_daemon_env(),
        capture_output=True,
        text=True,
        timeout=30,
        cwd=REPO_ROOT,
    )


class TestEntryPoint:
    def test_help(self):
        proc = _run_daemon_cli("--help")
        assert proc.returncode == 0
        for flag in ("--socket", "--queue-depth", "--max-campaigns",
                     "--http-port", "--journal-dir"):
            assert flag in proc.stdout

    def test_version(self):
        from repro import __version__

        proc = _run_daemon_cli("--version")
        assert proc.returncode == 0
        assert proc.stdout.strip() == f"nmsld {__version__}"

    def test_worker_count_validated(self):
        proc = _run_daemon_cli("--workers", "0")
        assert proc.returncode == 2
        assert "--workers must be >= 1" in proc.stderr

    def test_negative_drain_grace_rejected(self):
        proc = _run_daemon_cli("--drain-grace", "-1")
        assert proc.returncode == 2
        assert "--drain-grace" in proc.stderr

    def test_oversubscribed_workers_warn_but_run(self, tmp_path):
        # A regular file at the socket path makes boot fail *after*
        # argument handling: the absurd worker count must have produced
        # a warning, not an error, by the time the bind is refused.
        bogus = tmp_path / "not-a-socket"
        bogus.write_text("precious data")
        cpus = os.cpu_count() or 1
        proc = _run_daemon_cli(
            "--workers", str(cpus + 8), "--no-worker-pool",
            "--socket", str(bogus),
        )
        assert proc.returncode == 1  # the socket, not the worker count
        assert "exceeds" in proc.stderr

    def test_console_script_registered(self):
        import tomllib

        pyproject = tomllib.loads(
            (REPO_ROOT / "pyproject.toml").read_text()
        )
        scripts = pyproject["project"]["scripts"]
        assert scripts["nmsld"] == "repro.service.daemon:main"
        assert scripts["nmslc"] == "repro.cli:main"


@pytest.fixture
def daemon(tmp_path):
    """A live daemon on a unix socket with the HTTP endpoint up."""
    ready_file = tmp_path / "ready.json"
    socket_path = tmp_path / "nmsld.sock"
    metrics_path = tmp_path / "metrics.prom"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.daemon",
            "--socket", str(socket_path),
            "--http-port", "0",
            "--ready-file", str(ready_file),
            "--metrics", str(metrics_path),
            "--journal-dir", str(tmp_path / "journals"),
        ],
        env=_daemon_env(),
        cwd=REPO_ROOT,
        stderr=subprocess.PIPE,
    )
    for _ in range(200):
        if ready_file.exists():
            break
        if proc.poll() is not None:
            raise RuntimeError(proc.stderr.read().decode())
        time.sleep(0.05)
    else:
        proc.kill()
        raise RuntimeError("daemon never became ready")
    ready = json.loads(ready_file.read_text())
    yield {
        "proc": proc,
        "socket": str(socket_path),
        "http_port": ready["http_port"],
        "metrics_path": metrics_path,
    }
    if proc.poll() is None:
        proc.kill()
        proc.wait(timeout=10)


class TestDaemon:
    def test_smoke_and_graceful_drain(self, daemon):
        from repro.service.client import ServiceClient

        with ServiceClient(socket_path=daemon["socket"]) as client:
            assert client.request("ping")["ok"]
            first = client.request(
                "check", {"spec": CAMPUS}, deadline_s=30.0
            )
            assert first["ok"] and first["result"]["consistent"]
            assert first["result"]["warm"] is False
            second = client.request("check", {"spec": CAMPUS})
            assert second["result"]["warm"] is True  # warm cache hit

            status = client.request("status")
            assert status["result"]["queue"]["capacity"] == 64

            bad = client.request("check", {})
            assert bad["error"]["kind"] == "bad-request"

        base = f"http://127.0.0.1:{daemon['http_port']}"
        metrics = urllib.request.urlopen(base + "/metrics").read().decode()
        assert "repro_service_requests_total" in metrics
        assert "repro_service_latency_seconds" in metrics
        assert "repro_service_queue_depth" in metrics
        health = json.loads(
            urllib.request.urlopen(base + "/healthz").read()
        )
        assert health["status"] == "ok"
        assert health["requests_total"] >= 5

        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(base + "/nope")

        daemon["proc"].send_signal(signal.SIGTERM)
        assert daemon["proc"].wait(timeout=20) == 0
        # The drain flushed a final Prometheus scrape to disk...
        assert daemon["metrics_path"].exists()
        assert "repro_service_requests_total" in daemon[
            "metrics_path"
        ].read_text()
        # ...and removed the socket file so a successor can bind it.
        assert not Path(daemon["socket"]).exists()

    def test_rollout_over_the_socket(self, daemon):
        from repro.service.client import ServiceClient

        with ServiceClient(
            socket_path=daemon["socket"], timeout_s=120.0
        ) as client:
            response = client.request(
                "rollout",
                {
                    "spec": CAMPUS,
                    "elements": ["gw.cs.campus.edu", "db.cs.campus.edu"],
                },
            )
            assert response["ok"], response
            assert response["result"]["complete"]
            assert response["result"]["committed"] == [
                "db.cs.campus.edu", "gw.cs.campus.edu",
            ]
            assert response["result"]["journal"] is not None
            assert Path(response["result"]["journal"]).exists()


class TestSocketLifecycle:
    """Stale-socket cleanup: restarts must not fail with EADDRINUSE."""

    def test_missing_path_is_a_noop(self, tmp_path):
        from repro.service.runtime import AsyncServiceRuntime

        AsyncServiceRuntime._remove_stale_socket(
            str(tmp_path / "never-existed.sock")
        )

    def test_regular_file_is_refused(self, tmp_path):
        from repro.service.runtime import AsyncServiceRuntime

        path = tmp_path / "not-a-socket"
        path.write_text("precious data")
        with pytest.raises(OSError, match="not a socket"):
            AsyncServiceRuntime._remove_stale_socket(str(path))
        assert path.exists()

    def test_stale_socket_is_unlinked(self, tmp_path):
        import socket as socketlib

        from repro.service.runtime import AsyncServiceRuntime

        path = tmp_path / "stale.sock"
        crashed = socketlib.socket(
            socketlib.AF_UNIX, socketlib.SOCK_STREAM
        )
        crashed.bind(str(path))
        crashed.close()  # the file outlives its listener, as on a crash
        AsyncServiceRuntime._remove_stale_socket(str(path))
        assert not path.exists()

    def test_live_listener_is_not_stolen(self, tmp_path):
        import socket as socketlib

        from repro.service.runtime import AsyncServiceRuntime

        path = tmp_path / "live.sock"
        listener = socketlib.socket(
            socketlib.AF_UNIX, socketlib.SOCK_STREAM
        )
        listener.bind(str(path))
        listener.listen(1)
        try:
            with pytest.raises(OSError, match="already listening"):
                AsyncServiceRuntime._remove_stale_socket(str(path))
        finally:
            listener.close()
        assert path.exists()

    def test_daemon_boots_over_stale_socket(self, tmp_path):
        import socket as socketlib

        socket_path = tmp_path / "nmsld.sock"
        crashed = socketlib.socket(
            socketlib.AF_UNIX, socketlib.SOCK_STREAM
        )
        crashed.bind(str(socket_path))
        crashed.close()

        ready_file = tmp_path / "ready.json"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service.daemon",
                "--socket", str(socket_path),
                "--ready-file", str(ready_file),
            ],
            env=_daemon_env(),
            cwd=REPO_ROOT,
            stderr=subprocess.PIPE,
        )
        try:
            for _ in range(200):
                if ready_file.exists():
                    break
                if proc.poll() is not None:
                    raise RuntimeError(proc.stderr.read().decode())
                time.sleep(0.05)
            else:
                raise RuntimeError("daemon never became ready")
            from repro.service.client import ServiceClient

            with ServiceClient(socket_path=str(socket_path)) as client:
                assert client.request("ping")["ok"]
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=20) == 0
            assert not socket_path.exists()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestClientCli:
    def test_one_shot_ping(self, daemon):
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.service.client",
                "--socket", daemon["socket"], "ping",
            ],
            env=_daemon_env(),
            capture_output=True,
            text=True,
            timeout=30,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0
        assert json.loads(proc.stdout)["result"] == {"pong": True}
