"""Audit log: trace stamping, determinism, durability, bounds."""

import json

from repro.obs import AuditLog, TraceContext
import repro.obs.audit as audit_module


CONTEXT = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)


class TestEvents:
    def test_event_carries_the_trace_ids(self):
        log = AuditLog()
        record = log.event(
            "admit", trace=CONTEXT, request_id="r1", op="check",
            cls="interactive", at_s=1.5, queue_depth=3,
        )
        assert record["trace_id"] == CONTEXT.trace_id
        assert record["span_id"] == CONTEXT.span_id
        assert record["queue_depth"] == 3
        assert record["at_s"] == 1.5

    def test_none_fields_are_omitted(self):
        log = AuditLog()
        record = log.event("shed", victim_class=None, retry_after_s=0.8)
        assert "victim_class" not in record
        assert record["retry_after_s"] == 0.8

    def test_at_s_rounded_for_byte_determinism(self):
        log = AuditLog()
        record = log.event("admit", at_s=0.1 + 0.2)
        assert record["at_s"] == round(0.1 + 0.2, 9)

    def test_to_jsonl_is_deterministic(self):
        def build():
            log = AuditLog()
            log.event("admit", trace=CONTEXT, op="check", at_s=1.0)
            log.event("response", trace=CONTEXT, outcome="ok", at_s=2.0)
            return log.to_jsonl()

        assert build() == build()

    def test_total_counts_lifetime_events(self):
        log = AuditLog()
        for _ in range(5):
            log.event("admit")
        assert log.total == 5
        assert len(log.tail(2)) == 2


class TestDurability:
    def test_events_flush_line_by_line(self, tmp_path):
        path = tmp_path / "audit" / "log.jsonl"
        log = AuditLog(path=str(path))
        log.event("admit", trace=CONTEXT, op="check")
        # Visible on disk *before* close — the crash-durability posture.
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "admit"
        log.close()

    def test_reopen_appends(self, tmp_path):
        path = tmp_path / "log.jsonl"
        first = AuditLog(path=str(path))
        first.event("admit")
        first.close()
        second = AuditLog(path=str(path))
        second.event("response")
        second.close()
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert [e["event"] for e in events] == ["admit", "response"]

    def test_close_is_idempotent(self, tmp_path):
        log = AuditLog(path=str(tmp_path / "log.jsonl"))
        log.close()
        log.close()


class TestBounds:
    def test_memory_tail_bounded_file_keeps_all(self, tmp_path, monkeypatch):
        monkeypatch.setattr(audit_module, "MAX_EVENTS", 3)
        path = tmp_path / "log.jsonl"
        log = AuditLog(path=str(path))
        for index in range(10):
            log.event("admit", index=index)
        log.close()
        assert len(log.tail()) == 3
        assert log.total == 10
        assert len(path.read_text().splitlines()) == 10
