"""Trace context: deterministic ids, traceparent round-trip, adoption,
and fork-boundary splicing."""

import json

import pytest

from repro.obs import IdAllocator, LogicalClock, TraceContext, Tracer


class TestIdAllocator:
    def test_same_seed_mints_identical_streams(self):
        first = IdAllocator(seed=0x1989)
        second = IdAllocator(seed=0x1989)
        assert [first.trace_id() for _ in range(5)] == [
            second.trace_id() for _ in range(5)
        ]
        assert [first.span_id() for _ in range(5)] == [
            second.span_id() for _ in range(5)
        ]

    def test_seed_prefixes_the_trace_id(self):
        allocator = IdAllocator(seed=0xDEADBEEF)
        trace_id = allocator.trace_id()
        assert trace_id.startswith("deadbeef")
        assert len(trace_id) == 32

    def test_counters_start_at_one_never_all_zero(self):
        allocator = IdAllocator(seed=0)
        assert allocator.trace_id() != "0" * 32
        assert allocator.span_id() != "0" * 16
        # Both survive the W3C grammar.
        context = IdAllocator(seed=0).context()
        TraceContext.from_traceparent(context.traceparent())

    def test_different_seeds_never_collide(self):
        a = {IdAllocator(seed=1).trace_id()}
        b = {IdAllocator(seed=2).trace_id()}
        assert not a & b


class TestTraceparent:
    def test_round_trip(self):
        context = IdAllocator(seed=0x1989).context()
        parsed = TraceContext.from_traceparent(context.traceparent())
        assert parsed == context

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "garbage",
            "01-" + "a" * 32 + "-" + "b" * 16 + "-01",  # wrong version
            "00-" + "A" * 32 + "-" + "b" * 16 + "-01",  # uppercase hex
            "00-" + "a" * 31 + "-" + "b" * 16 + "-01",  # short trace
            "00-" + "0" * 32 + "-" + "b" * 16 + "-01",  # all-zero trace
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            TraceContext.from_traceparent(bad)

    def test_non_string_rejected(self):
        with pytest.raises(ValueError):
            TraceContext.from_traceparent(12345)


class TestAdoption:
    def test_root_span_joins_adopted_trace(self):
        tracer = Tracer(clock=LogicalClock())
        context = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        with tracer.adopt(context):
            with tracer.span("work"):
                pass
        (record,) = tracer.finished()
        assert record.trace_id == context.trace_id
        assert record.parent_id == context.span_id

    def test_adopting_none_is_a_noop(self):
        tracer = Tracer(clock=LogicalClock())
        with tracer.adopt(None):
            with tracer.span("work"):
                pass
        (record,) = tracer.finished()
        assert record.parent_id == ""
        assert record.trace_id  # minted fresh

    def test_adoption_restores_on_exit(self):
        tracer = Tracer(clock=LogicalClock())
        context = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        with tracer.adopt(context):
            pass
        with tracer.span("after"):
            pass
        (record,) = tracer.finished()
        assert record.trace_id != context.trace_id

    def test_nested_span_inherits_stack_not_adoption(self):
        tracer = Tracer(clock=LogicalClock())
        context = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        with tracer.adopt(context):
            with tracer.span("outer") as outer:
                with tracer.span("inner"):
                    pass
        by_name = {r.name: r for r in tracer.finished()}
        assert by_name["inner"].parent_id == outer.span_id
        assert by_name["inner"].trace_id == context.trace_id

    def test_current_context_prefers_open_span(self):
        tracer = Tracer(clock=LogicalClock())
        adopted = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        assert tracer.current_context() is None
        with tracer.adopt(adopted):
            assert tracer.current_context() == adopted
            with tracer.span("work") as span:
                assert tracer.current_context() == span.context()


class TestSplice:
    def test_splice_reparents_into_the_live_trace(self):
        parent = Tracer(clock=LogicalClock())
        with parent.span("service.request") as request_span:
            worker = Tracer(clock=LogicalClock())
            worker.ids.span_id()  # fork copies the parent's counter state
            with worker.adopt(request_span.context()):
                mark = len(worker)
                with worker.span("consistency.shard", bucket=0):
                    with worker.span("consistency.solve"):
                        pass
                exported = worker.export_spans(since=mark)
            added = parent.splice(exported)
        assert added == 2
        by_name = {r.name: r for r in parent.finished()}
        shard = by_name["consistency.shard"]
        solve = by_name["consistency.solve"]
        # The subtree stays connected: shard parents onto the request
        # span (an id *outside* the subtree, kept verbatim), solve onto
        # the re-minted shard id.
        assert shard.parent_id == by_name["service.request"].span_id
        assert solve.parent_id == shard.span_id
        assert shard.trace_id == by_name["service.request"].trace_id

    def test_splice_reminted_ids_do_not_collide(self):
        """Two workers forked from the same state export colliding span
        ids; splicing must de-duplicate them."""
        parent = Tracer(clock=LogicalClock())
        exports = []
        for bucket in range(2):
            worker = Tracer(clock=LogicalClock())  # same fresh allocator
            with worker.span("consistency.shard", bucket=bucket):
                pass
            exports.append(worker.export_spans())
        # Identical worker-side ids, the fork-collision case.
        assert exports[0][0]["span_id"] == exports[1][0]["span_id"]
        for exported in exports:
            parent.splice(exported)
        span_ids = [r.span_id for r in parent.finished()]
        assert len(span_ids) == len(set(span_ids))

    def test_spliced_workers_land_on_distinct_virtual_tids(self):
        parent = Tracer(clock=LogicalClock())
        with parent.span("local"):
            pass
        for bucket in range(2):
            worker = Tracer(clock=LogicalClock())
            with worker.span("consistency.shard", bucket=bucket):
                pass
            parent.splice(worker.export_spans())
        tids = {
            dict(r.attrs).get("bucket"): r.tid
            for r in parent.finished()
            if r.name == "consistency.shard"
        }
        assert tids[0] != tids[1]

    def test_splice_respects_the_span_cap(self, monkeypatch):
        import repro.obs.tracer as tracer_module

        monkeypatch.setattr(tracer_module, "MAX_SPANS", 1)
        parent = Tracer(clock=LogicalClock())
        with parent.span("only"):
            pass
        worker = Tracer(clock=LogicalClock())
        with worker.span("over"):
            pass
        assert parent.splice(worker.export_spans()) == 0
        assert parent.dropped == 1

    def test_empty_splice_is_free(self):
        parent = Tracer(clock=LogicalClock())
        assert parent.splice([]) == 0


class TestJsonlCarriesContext:
    def test_every_line_names_its_trace(self):
        tracer = Tracer(clock=LogicalClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        lines = [
            json.loads(line)
            for line in tracer.to_jsonl().splitlines()
        ]
        outer = next(l for l in lines if l["name"] == "outer")
        inner = next(l for l in lines if l["name"] == "inner")
        assert inner["trace"] == outer["trace"]
        assert inner["parent"] == outer["span"]
        assert outer["parent"] == ""

    def test_same_seed_runs_export_byte_identical(self):
        def run():
            tracer = Tracer(clock=LogicalClock())
            with tracer.adopt(tracer.ids.context()):
                with tracer.span("service.request", op="check"):
                    with tracer.span("consistency.check"):
                        pass
            return tracer.to_jsonl()

        assert run() == run()
