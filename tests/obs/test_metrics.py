"""The metrics registry: instruments, exposition, determinism."""

import json
import re

import pytest

from repro.errors import ReproError
from repro.obs import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc(self, registry):
        counter = registry.counter("repro_test_total")
        counter.inc()
        counter.inc(4)
        assert registry.value("repro_test_total") == 5

    def test_negative_inc_rejected(self, registry):
        with pytest.raises(ReproError, match="only go up"):
            registry.counter("repro_test_total").inc(-1)

    def test_memoized_per_label_set(self, registry):
        a = registry.counter("repro_test_total", engine="clpr")
        b = registry.counter("repro_test_total", engine="clpr")
        c = registry.counter("repro_test_total", engine="scan")
        assert a is b
        assert a is not c

    def test_label_order_does_not_matter(self, registry):
        a = registry.counter("repro_t_total", x="1", y="2")
        b = registry.counter("repro_t_total", y="2", x="1")
        assert a is b


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("repro_test_facts")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert registry.value("repro_test_facts") == 12


class TestHistogram:
    def test_cumulative_buckets_end_with_inf(self, registry):
        histogram = registry.histogram("repro_test_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(99.0)
        pairs = histogram.cumulative()
        assert [count for _bound, count in pairs] == [1, 2, 3]
        assert pairs[-1][0] == float("inf")
        assert histogram.count == 3
        assert histogram.total == pytest.approx(99.55)

    def test_empty_buckets_rejected(self, registry):
        with pytest.raises(ReproError):
            registry.histogram("repro_test_seconds", buckets=())


class TestValidation:
    def test_bad_metric_name(self, registry):
        with pytest.raises(ReproError, match="invalid metric name"):
            registry.counter("bad name!")

    def test_bad_label_name(self, registry):
        with pytest.raises(ReproError, match="invalid label name"):
            registry.counter("repro_ok_total", **{"bad-label": "x"})

    def test_kind_mismatch(self, registry):
        registry.counter("repro_test_total")
        with pytest.raises(ReproError, match="is a counter"):
            registry.gauge("repro_test_total")


class TestPrometheusExposition:
    def test_help_type_and_samples(self, registry):
        registry.counter("repro_x_total", "things done", kind="a").inc(2)
        text = registry.to_prometheus()
        assert "# HELP repro_x_total things done" in text
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{kind="a"} 2' in text

    def test_histogram_lines(self, registry):
        registry.histogram("repro_x_seconds", buckets=(0.5,)).observe(0.1)
        lines = registry.to_prometheus().splitlines()
        assert 'repro_x_seconds_bucket{le="0.5"} 1' in lines
        assert 'repro_x_seconds_bucket{le="+Inf"} 1' in lines
        assert "repro_x_seconds_sum 0.1" in lines
        assert "repro_x_seconds_count 1" in lines

    def test_label_values_escaped(self, registry):
        registry.counter("repro_x_total", path='a"b\\c\nd').inc()
        text = registry.to_prometheus()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_every_sample_line_parses(self, registry):
        registry.counter("repro_a_total", engine="clpr").inc()
        registry.gauge("repro_b").set(1.5)
        registry.histogram("repro_c_seconds").observe(0.2)
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.+eEinf]+$"
        )
        for line in registry.to_prometheus().splitlines():
            if line.startswith("#"):
                continue
            assert sample.match(line), line

    def test_write(self, registry, tmp_path):
        registry.counter("repro_x_total").inc()
        path = tmp_path / "m.prom"
        registry.write(path)
        assert "repro_x_total 1" in path.read_text()


class TestSnapshot:
    def test_snapshot_is_pure_data(self, registry):
        registry.counter("repro_a_total", engine="clpr").inc(3)
        registry.histogram("repro_b_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["repro_a_total"]["samples"]["engine=clpr"] == 3
        histogram = snapshot["repro_b_seconds"]["samples"][""]
        assert histogram["count"] == 1
        assert histogram["buckets"]["+Inf"] == 1

    def test_snapshot_json_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("repro_z_total").inc()
            registry.counter("repro_a_total", b="2", a="1").inc(2)
            registry.gauge("repro_m").set(0.25)
            return registry.snapshot_json()

        first, second = build(), build()
        assert first == second
        json.loads(first)
