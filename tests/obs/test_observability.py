"""The facade: current()/scope() plumbing and the null substrate."""

import time

from repro import obs


class TestCurrent:
    def test_default_is_null(self):
        assert obs.current().enabled is False

    def test_scope_installs_and_restores(self):
        before = obs.current()
        with obs.scope() as session:
            assert obs.current() is session
            assert session.enabled is True
        assert obs.current() is before

    def test_scope_restores_on_exception(self):
        before = obs.current()
        try:
            with obs.scope():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert obs.current() is before

    def test_nested_scopes(self):
        with obs.scope() as outer:
            with obs.scope() as inner:
                assert obs.current() is inner
            assert obs.current() is outer

    def test_set_current_returns_previous(self):
        session = obs.Observability()
        previous = obs.set_current(session)
        try:
            assert obs.current() is session
        finally:
            obs.set_current(previous)


class TestObservability:
    def test_span_records_into_tracer(self):
        with obs.scope(clock=obs.LogicalClock()) as session:
            with session.span("work", key="value"):
                pass
        (record,) = session.tracer.finished()
        assert record.name == "work"

    def test_instrument_shortcuts_share_registry(self):
        session = obs.Observability()
        session.counter("repro_x_total").inc()
        assert session.metrics.value("repro_x_total") == 1

    def test_set_time_feeds_logical_clock(self):
        session = obs.logical_observability()
        session.set_time(42.0)
        assert session.clock.time == 42.0
        session.set_time(1.0)  # never backwards
        assert session.clock.time == 42.0

    def test_set_time_noop_on_wall_clock(self):
        obs.Observability(clock=obs.WallClock()).set_time(42.0)

    def test_deterministic_flag(self):
        assert obs.logical_observability().deterministic is True
        assert obs.Observability().deterministic is False


class TestNullObservability:
    def test_instruments_are_noops(self):
        null = obs.NullObservability()
        null.counter("anything").inc()
        null.gauge("anything").set(5)
        null.histogram("anything").observe(0.1)
        assert null.counter("anything").value == 0

    def test_null_span_still_measures_elapsed(self):
        null = obs.NullObservability()
        with null.span("work") as span:
            time.sleep(0.01)
        assert span.elapsed >= 0.009

    def test_null_span_annotate_is_noop(self):
        null = obs.NullObservability()
        with null.span("work") as span:
            span.annotate(key="value")
