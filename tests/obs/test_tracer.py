"""Tracer behaviour: nesting, annotation, export formats, bounds."""

import json

import pytest

from repro.obs import LogicalClock, Tracer
import repro.obs.tracer as tracer_module


@pytest.fixture
def tracer():
    return Tracer(clock=LogicalClock())


class TestNesting:
    def test_depth_tracks_the_span_stack(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("innermost"):
                    pass
        depths = {r.name: r.depth for r in tracer.finished()}
        assert depths == {"outer": 0, "inner": 1, "innermost": 2}

    def test_parents_sort_before_children(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [r.name for r in tracer.finished()]
        assert names == ["outer", "inner"]

    def test_sibling_spans_share_depth(self, tracer):
        with tracer.span("parent"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        depths = {r.name: r.depth for r in tracer.finished()}
        assert depths["first"] == depths["second"] == 1

    def test_mis_nested_exit_drops_orphans(self, tracer):
        """Closing a parent before its child must not corrupt the stack."""
        outer = tracer.span("outer").__enter__()
        tracer.span("inner").__enter__()
        outer.__exit__(None, None, None)  # inner never closed
        with tracer.span("after"):
            pass
        by_name = {r.name: r for r in tracer.finished()}
        assert set(by_name) == {"outer", "after"}
        assert by_name["after"].depth == 0


class TestSpanSemantics:
    def test_annotate_lands_in_attrs(self, tracer):
        with tracer.span("work", engine="indexed") as span:
            span.annotate(problems=3)
        (record,) = tracer.finished()
        assert dict(record.attrs) == {"engine": "indexed", "problems": 3}

    def test_exception_recorded_as_error_attr(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (record,) = tracer.finished()
        assert dict(record.attrs)["error"] == "RuntimeError"

    def test_elapsed_live_and_closed(self):
        clock = LogicalClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work") as span:
            clock.advance(2.0)
            assert span.elapsed >= 2.0
        closed = span.elapsed
        clock.advance(100.0)
        assert span.elapsed == closed  # frozen once closed

    def test_unopened_span_elapsed_is_zero(self, tracer):
        assert tracer.span("never").elapsed == 0.0


class TestExport:
    def test_jsonl_shape(self, tracer):
        with tracer.span("compile.pass1", file="x.nmsl"):
            pass
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 1
        event = json.loads(lines[0])
        assert event["name"] == "compile.pass1"
        assert event["args"] == {"file": "x.nmsl"}
        assert set(event) == {
            "name", "ts", "dur", "tid", "depth",
            "trace", "span", "parent", "args",
        }

    def test_jsonl_is_byte_deterministic(self):
        def run():
            tracer = Tracer(clock=LogicalClock())
            with tracer.span("a", k="v"):
                with tracer.span("b"):
                    pass
            return tracer.to_jsonl()

        assert run() == run()

    def test_chrome_trace_loads_and_has_metadata(self, tracer):
        with tracer.span("consistency.check"):
            pass
        doc = json.loads(tracer.to_chrome())
        assert doc["displayTimeUnit"] == "ms"
        phases = [event["ph"] for event in doc["traceEvents"]]
        assert phases.count("M") == 1  # process_name metadata
        assert phases.count("X") == 1

    def test_chrome_category_is_span_prefix(self, tracer):
        with tracer.span("consistency.check"):
            pass
        doc = json.loads(tracer.to_chrome())
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["cat"] == "consistency"
        assert event["ts"] >= 0 and event["dur"] >= 0  # microseconds

    def test_write_picks_format_from_suffix(self, tracer, tmp_path):
        with tracer.span("s"):
            pass
        assert tracer.write(tmp_path / "t.jsonl") == "jsonl"
        assert tracer.write(tmp_path / "t.json") == "chrome"
        json.loads((tmp_path / "t.json").read_text())
        json.loads((tmp_path / "t.jsonl").read_text().splitlines()[0])


class TestBounds:
    def test_span_cap_counts_drops(self, tracer, monkeypatch):
        monkeypatch.setattr(tracer_module, "MAX_SPANS", 3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer) == 3
        assert tracer.dropped == 2
