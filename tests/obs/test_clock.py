"""The pluggable clocks: wall time for real runs, logical for tests."""

import pytest

from repro.obs import LogicalClock, WallClock


class TestWallClock:
    def test_monotone(self):
        clock = WallClock()
        readings = [clock.now() for _ in range(10)]
        assert readings == sorted(readings)

    def test_not_deterministic(self):
        assert WallClock.deterministic is False


class TestLogicalClock:
    def test_reads_are_strictly_monotone(self):
        clock = LogicalClock()
        readings = [clock.now() for _ in range(100)]
        assert all(a < b for a, b in zip(readings, readings[1:]))

    def test_two_clocks_read_identically(self):
        """The determinism contract: same operations, same readings."""
        a, b = LogicalClock(), LogicalClock()
        for _ in range(5):
            assert a.now() == b.now()
        a.advance(1.5)
        b.advance(1.5)
        assert a.now() == b.now()

    def test_advance_moves_time(self):
        clock = LogicalClock(start=10.0)
        clock.advance(2.5)
        assert clock.time == 12.5
        assert clock.now() > 12.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            LogicalClock().advance(-1.0)

    def test_set_at_least_never_moves_backwards(self):
        clock = LogicalClock()
        clock.set_at_least(5.0)
        assert clock.time == 5.0
        clock.set_at_least(3.0)  # stale feed: ignored
        assert clock.time == 5.0
        clock.set_at_least(7.0)
        assert clock.time == 7.0

    def test_time_property_does_not_tick(self):
        clock = LogicalClock()
        before = clock.time
        _ = clock.time
        assert clock.now() == pytest.approx(before + 1e-9)

    def test_deterministic_flag(self):
        assert LogicalClock.deterministic is True
