"""Prometheus exposition conformance: what ``to_prometheus`` emits must
survive the strict :mod:`repro.obs.promlint` parser a real scraper
implements — label escaping, histogram ``+Inf`` buckets, ``_sum`` and
``_count`` consistency."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.promlint import PromParseError, lint, parse

NASTY_LABEL_VALUES = [
    'quote " inside',
    "back\\slash",
    "new\nline",
    'all \\ three " at\nonce',
    "",  # empty value must round-trip too
    "trailing backslash \\",
]


class TestRegistryConformance:
    def test_plain_counters_and_gauges_lint_clean(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "help text", op="check").inc()
        registry.gauge("repro_test_depth", "help", cls="bulk").set(3)
        assert lint(registry.to_prometheus()) == []

    @pytest.mark.parametrize("value", NASTY_LABEL_VALUES)
    def test_label_values_round_trip_through_escaping(self, value):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "h", element=value).inc()
        families = parse(registry.to_prometheus())
        (sample,) = families["repro_test_total"].samples
        assert sample.labels["element"] == value

    def test_histogram_emits_inf_bucket_sum_and_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_test_seconds", _help="h", cls="interactive"
        )
        for value in (0.001, 0.2, 5.0, 1e9):  # 1e9 only lands in +Inf
            histogram.observe(value)
        text = registry.to_prometheus()
        assert lint(text) == []
        families = parse(text)
        fam = families["repro_test_seconds"]
        buckets = {
            sample.labels["le"]: sample.value
            for sample in fam.samples
            if sample.name.endswith("_bucket")
        }
        count = next(
            sample.value
            for sample in fam.samples
            if sample.name.endswith("_count")
        )
        assert buckets["+Inf"] == count == 4

    def test_histogram_sum_matches_observations(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_test_seconds", _help="h")
        histogram.observe(1.5)
        histogram.observe(2.5)
        families = parse(registry.to_prometheus())
        total = next(
            sample.value
            for sample in families["repro_test_seconds"].samples
            if sample.name.endswith("_sum")
        )
        assert total == pytest.approx(4.0)

    def test_multi_series_histograms_keep_series_separate(self):
        registry = MetricsRegistry()
        registry.histogram("repro_test_seconds", _help="h", cls="a").observe(1)
        registry.histogram("repro_test_seconds", _help="h", cls="b").observe(2)
        assert lint(registry.to_prometheus()) == []


class TestLinter:
    """The linter itself must catch the violations it exists for."""

    def test_missing_inf_bucket_flagged(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 2\n'
            "h_sum 1.0\n"
            "h_count 2\n"
        )
        assert any("+Inf" in p for p in lint(text))

    def test_non_monotone_buckets_flagged(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1.0\n"
            "h_count 3\n"
        )
        assert any("monotone" in p for p in lint(text))

    def test_inf_bucket_count_mismatch_flagged(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1.0\n"
            "h_count 4\n"
        )
        assert any("_count" in p for p in lint(text))

    def test_missing_sum_flagged(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 1\n'
            "h_count 1\n"
        )
        assert any("_sum" in p for p in lint(text))

    def test_invalid_escape_is_a_parse_error(self):
        with pytest.raises(PromParseError):
            parse('m{l="bad \\x escape"} 1\n')

    def test_dangling_backslash_is_a_parse_error(self):
        with pytest.raises(PromParseError):
            parse('m{l="dangling \\')

    def test_duplicate_label_rejected(self):
        with pytest.raises(PromParseError):
            parse('m{a="1",a="2"} 1\n')

    def test_special_values_parse(self):
        families = parse("m_inf +Inf\nm_ninf -Inf\nm_nan NaN\n")
        assert families["m_inf"].samples[0].value == math.inf
        assert families["m_ninf"].samples[0].value == -math.inf
        assert math.isnan(families["m_nan"].samples[0].value)

    def test_parse_error_surfaces_as_one_problem(self):
        assert len(lint("{} not a metric\n")) == 1
