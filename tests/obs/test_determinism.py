"""The hard requirement: logical clock + fixed seed → bit-identical runs.

Re-runs the PR 3 chaos acceptance scenario (20% loss, one crash, one
wedge, seed 42, jobs 4) twice under a logical clock and asserts the
serialized trace and the metrics snapshot are byte-identical.  Also
locks in the Chrome ``trace_event`` schema shape Perfetto needs.
"""

import json

import pytest

from repro import obs
from repro.nmsl.compiler import NmslCompiler
from tests.rollout.test_chaos import run_acceptance

SEED = 42


def chaos_run_artifacts(seed):
    """One full chaos campaign under a fresh logical-clock scope."""
    with obs.scope(clock=obs.LogicalClock()) as session:
        run_acceptance(NmslCompiler(), seed)
        return (
            session.tracer.to_jsonl(),
            session.metrics.snapshot_json(),
            session.metrics.to_prometheus(),
        )


class TestByteIdentity:
    def test_same_seed_chaos_runs_serialize_identically(self):
        first = chaos_run_artifacts(SEED)
        second = chaos_run_artifacts(SEED)
        assert first[0] == second[0], "JSONL traces differ between runs"
        assert first[1] == second[1], "metrics snapshots differ between runs"
        assert first[2] == second[2], "Prometheus exposition differs"

    def test_trace_is_non_trivial(self):
        trace, snapshot, _ = chaos_run_artifacts(SEED)
        names = {json.loads(line)["name"] for line in trace.splitlines()}
        assert "rollout.run" in names
        assert "rollout.attempt" in names
        metrics = json.loads(snapshot)
        assert "repro_rollout_transitions_total" in metrics
        assert "repro_netsim_faults_injected_total" in metrics
        assert "repro_snmp_pdus_total" in metrics

    def test_different_seeds_differ(self):
        """Sanity: the byte-identity above is not vacuous."""
        assert chaos_run_artifacts(SEED)[1] != chaos_run_artifacts(7)[1]


class TestChromeTraceShape:
    @pytest.fixture(scope="class")
    def document(self):
        with obs.scope(clock=obs.LogicalClock()) as session:
            run_acceptance(NmslCompiler(), SEED)
            return json.loads(session.tracer.to_chrome())

    def test_top_level_shape(self, document):
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        assert document["displayTimeUnit"] == "ms"

    def test_every_event_has_required_fields(self, document):
        for event in document["traceEvents"]:
            assert {"name", "ph", "pid", "tid", "ts"} <= set(event)
            assert event["ph"] in ("M", "X")
            if event["ph"] == "X":
                assert "dur" in event and event["dur"] >= 0

    def test_complete_event_timestamps_monotone(self, document):
        timestamps = [
            event["ts"]
            for event in document["traceEvents"]
            if event["ph"] == "X"
        ]
        assert timestamps, "no complete events recorded"
        assert timestamps == sorted(timestamps)

    def test_process_metadata_present(self, document):
        metadata = [
            event for event in document["traceEvents"] if event["ph"] == "M"
        ]
        assert any(event["name"] == "process_name" for event in metadata)
