"""The nmslc observability surface: --trace/--metrics/--clock, profile,
and the warning-routing fix (warnings belong on stderr, not stdout)."""

import json
import re

import pytest

from repro.cli import main
from repro.workloads.scenarios import campus_internet

FOREIGN_EXPORT_SPEC = """
process p ::=
    supports mgmt.mib;
    exports mgmt.mib to elsewhere.edu;
end process p.
"""


@pytest.fixture
def campus_file(tmp_path):
    path = tmp_path / "campus.nmsl"
    path.write_text(campus_internet())
    return path


class TestWarningRouting:
    def test_warnings_go_to_stderr_not_stdout(self, tmp_path, capsys):
        path = tmp_path / "foreign.nmsl"
        path.write_text(FOREIGN_EXPORT_SPEC)
        assert main([str(path)]) == 0
        captured = capsys.readouterr()
        assert "warning:" in captured.err
        assert "assumed foreign" in captured.err
        assert "warning:" not in captured.out

    def test_stdout_stays_machine_consumable(self, tmp_path, capsys):
        """Piping nmslc stdout must yield only the compile summary."""
        path = tmp_path / "foreign.nmsl"
        path.write_text(FOREIGN_EXPORT_SPEC)
        main([str(path)])
        out_lines = capsys.readouterr().out.splitlines()
        assert all(line.startswith("compiled ") for line in out_lines if line)


class TestTraceAndMetricsFlags:
    def test_chrome_trace_written(self, campus_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main([str(campus_file), "--check", "--trace", str(trace)]) == 0
        document = json.loads(trace.read_text())
        events = document["traceEvents"]
        names = {event["name"] for event in events}
        assert {"compile", "consistency.check"} <= names
        for event in events:
            assert {"name", "ph", "pid", "tid", "ts"} <= set(event)
        assert "wrote chrome trace" in capsys.readouterr().err

    def test_jsonl_trace_written_for_jsonl_suffix(self, campus_file, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main([str(campus_file), "--check", "--trace", str(trace)]) == 0
        lines = trace.read_text().splitlines()
        assert lines
        for line in lines:
            event = json.loads(line)
            assert {
                "name", "ts", "dur", "tid", "depth",
                "trace", "span", "parent", "args",
            } == set(event)

    def test_metrics_written_as_prometheus(self, campus_file, tmp_path):
        metrics = tmp_path / "metrics.prom"
        assert main([str(campus_file), "--check", "--metrics", str(metrics)]) == 0
        text = metrics.read_text()
        assert "# TYPE repro_compile_runs_total counter" in text
        assert "repro_compile_runs_total 1" in text
        assert re.search(
            r'repro_consistency_checks_total\{engine="indexed"\} 1', text
        )

    def test_logical_clock_traces_are_byte_identical(
        self, campus_file, tmp_path
    ):
        def run(name):
            trace = tmp_path / f"{name}.jsonl"
            metrics = tmp_path / f"{name}.prom"
            assert (
                main(
                    [
                        str(campus_file),
                        "--check",
                        "--clock",
                        "logical",
                        "--trace",
                        str(trace),
                        "--metrics",
                        str(metrics),
                    ]
                )
                == 0
            )
            return trace.read_bytes(), metrics.read_bytes()

        assert run("first") == run("second")

    def test_no_flags_leaves_null_observability(self, campus_file, capsys):
        from repro import obs

        assert main([str(campus_file), "--check"]) == 0
        assert obs.current().enabled is False

    def test_rollout_subcommand_takes_obs_flags(self, campus_file, tmp_path):
        metrics = tmp_path / "rollout.prom"
        trace = tmp_path / "rollout.json"
        assert (
            main(
                [
                    "rollout",
                    str(campus_file),
                    "--baseline-install",
                    "--metrics",
                    str(metrics),
                    "--trace",
                    str(trace),
                ]
            )
            == 0
        )
        text = metrics.read_text()
        assert "repro_rollout_transitions_total" in text
        assert "repro_snmp_pdus_total" in text
        names = {
            event["name"]
            for event in json.loads(trace.read_text())["traceEvents"]
        }
        assert "rollout.run" in names


class TestProfileSubcommand:
    def test_phase_breakdown_and_keyword_table(self, campus_file, capsys):
        assert main(["profile", str(campus_file)]) == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "compile" in out
        assert "consistency.check" in out
        assert "keyword dispatch (pass 2):" in out
        assert re.search(r"process\s+3", out)

    def test_phase_total_within_5_percent_of_end_to_end(
        self, campus_file, capsys
    ):
        assert main(["profile", str(campus_file), "--output", "consistency"]) == 0
        out = capsys.readouterr().out
        match = re.search(r"\(untraced\)\s+[\d.]+\s+([\d.]+)%", out)
        assert match, out
        assert float(match.group(1)) <= 5.0, out

    def test_datalog_engine_reports_per_rule_times(self, campus_file, capsys):
        assert main(["profile", str(campus_file), "--engine", "datalog"]) == 0
        out = capsys.readouterr().out
        assert "top rules by time (datalog):" in out
        assert re.search(r"\w+/\d+#\d+\s+\d+\s+[\d.]+", out)

    def test_compile_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.nmsl"
        bad.write_text("process p ::= supports mgmt.mib.nosuch; end process p.")
        assert main(["profile", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_profile_exports_trace_when_asked(self, campus_file, tmp_path):
        trace = tmp_path / "profile.json"
        assert main(["profile", str(campus_file), "--trace", str(trace)]) == 0
        names = {
            event["name"]
            for event in json.loads(trace.read_text())["traceEvents"]
        }
        assert "profile" in names
