"""SLO tracker: good/bad accounting, window math, burn rates, and the
multi-window alert lifecycle."""

import pytest

from repro.obs import SloObjective, SloTracker
from repro.obs.slo import DEFAULT_WINDOWS, PAGE_BURN, TICKET_BURN


def tracker(**overrides):
    objectives = {
        "interactive": SloObjective(latency_s=0.5, availability=0.999),
    }
    return SloTracker(objectives=objectives, **overrides)


def window(snapshot, cls, window_s):
    for stats in snapshot["classes"][cls]["windows"]:
        if stats["window_s"] == window_s:
            return stats
    raise AssertionError(f"no {window_s}s window for {cls}")


class TestGoodness:
    def test_fast_success_is_good(self):
        assert tracker().record("interactive", 0.1, ok=True, now=0.0)

    def test_slow_success_burns_budget(self):
        assert not tracker().record("interactive", 0.9, ok=True, now=0.0)

    def test_failure_is_bad_regardless_of_latency(self):
        assert not tracker().record("interactive", 0.0, ok=False, now=0.0)

    def test_unknown_class_has_no_latency_target(self):
        t = tracker()
        assert t.record("mystery", 100.0, ok=True, now=0.0)
        assert not t.record("mystery", 0.0, ok=False, now=1.0)


class TestWindows:
    def test_events_age_out_of_short_windows(self):
        t = tracker()
        t.record("interactive", 9.0, ok=False, now=0.0)
        for at in range(1, 11):
            t.record("interactive", 0.1, ok=True, now=float(at * 60))
        snapshot = t.snapshot(now=650.0)
        short = window(snapshot, "interactive", 300)
        long = window(snapshot, "interactive", DEFAULT_WINDOWS[-1])
        assert short["bad"] == 0  # the failure fell out of the 5m window
        assert long["bad"] == 1
        assert short["availability"] == 1.0

    def test_burn_rate_is_bad_fraction_over_budget(self):
        t = tracker()
        # 1 bad in 10 over a 0.1% budget -> burn 100.
        t.record("interactive", 9.0, ok=False, now=0.0)
        for index in range(9):
            t.record("interactive", 0.1, ok=True, now=1.0 + index)
        stats = window(t.snapshot(now=10.0), "interactive", 300)
        assert stats["burn_rate"] == pytest.approx(
            (1 / 10) / 0.001, rel=1e-3
        )

    def test_empty_window_reports_full_availability(self):
        stats = window(tracker().snapshot(now=0.0), "interactive", 300)
        assert stats["availability"] == 1.0
        assert stats["burn_rate"] == 0.0
        assert "p99_s" not in stats

    def test_latency_quantiles_reported(self):
        t = tracker()
        for index in range(100):
            t.record("interactive", index / 1000, ok=True, now=float(index))
        stats = window(t.snapshot(now=100.0), "interactive", 300)
        assert stats["p50_s"] == pytest.approx(0.05, abs=0.005)
        assert stats["p99_s"] == pytest.approx(0.099, abs=0.005)

    def test_events_beyond_the_longest_window_are_pruned(self):
        t = tracker()
        t.record("interactive", 0.1, ok=True, now=0.0)
        t.record("interactive", 0.1, ok=True, now=DEFAULT_WINDOWS[-1] + 10.0)
        assert len(t._events["interactive"]) == 1


class TestAlerts:
    def test_page_needs_short_and_mid_window_agreement(self):
        t = tracker()
        # Saturate every window with failures: burn is maximal everywhere.
        for at in range(0, 7200, 60):
            t.record("interactive", 9.0, ok=False, now=float(at))
        snapshot = t.snapshot(now=7200.0)
        assert snapshot["classes"]["interactive"]["alert"] == "page"
        (alert,) = snapshot["alerts"]
        assert alert["class"] == "interactive"
        assert alert["severity"] == "page"

    def test_one_bad_burst_does_not_page_alone(self):
        """A short spike burns the 5m window but not the 1h window."""
        t = tracker()
        # An hour of good traffic, then a 30-second total outage.
        for at in range(0, 3600, 10):
            t.record("interactive", 0.1, ok=True, now=float(at))
        for at in range(3600, 3630, 10):
            t.record("interactive", 9.0, ok=False, now=float(at))
        snapshot = t.snapshot(now=3630.0)
        burns = {
            w["window_s"]: w["burn_rate"]
            for w in snapshot["classes"]["interactive"]["windows"]
        }
        assert burns[300] >= PAGE_BURN  # short window is on fire
        assert burns[3600] < PAGE_BURN  # hour window absorbs it
        assert snapshot["classes"]["interactive"]["alert"] != "page"

    def test_recovery_clears_the_alert(self):
        t = tracker()
        for at in range(0, 7200, 60):
            t.record("interactive", 9.0, ok=False, now=float(at))
        assert t.snapshot(now=7200.0)["alerts"]
        # Twenty minutes of clean traffic drains the short window.
        for at in range(7200, 8400, 5):
            t.record("interactive", 0.1, ok=True, now=float(at))
        snapshot = t.snapshot(now=8400.0)
        assert snapshot["classes"]["interactive"]["alert"] != "page"

    def test_slow_burn_files_a_ticket(self):
        """A sustained 1% failure rate (burn ~10: above ticket, below
        page) over six hours files a ticket, not a page."""
        t = tracker()
        for index, at in enumerate(range(0, 21600, 10)):
            t.record(
                "interactive", 0.1, ok=index % 100 != 0, now=float(at)
            )
        snapshot = t.snapshot(now=21600.0)
        assert snapshot["classes"]["interactive"]["alert"] == "ticket"

    def test_thresholds_come_from_the_sre_recipe(self):
        assert PAGE_BURN == 14.4
        assert TICKET_BURN == 6.0


class TestSummaryAndPublish:
    def test_healthz_summary_reports_worst_burn(self):
        t = tracker()
        t.record("interactive", 9.0, ok=False, now=0.0)
        summary = t.healthz_summary(now=1.0)
        assert summary["worst_burn_rate"] > 0
        assert summary["classes"] == 1

    def test_healthz_summary_quiet_when_healthy(self):
        t = tracker()
        t.record("interactive", 0.1, ok=True, now=0.0)
        summary = t.healthz_summary(now=1.0)
        assert summary["alerting"] is None
        assert summary["worst_burn_rate"] == 0.0

    def test_publish_mirrors_gauges(self):
        from repro import obs

        t = tracker()
        t.record("interactive", 0.1, ok=True, now=0.0)
        with obs.scope(clock=obs.LogicalClock()) as session:
            t.publish(session, now=1.0)
            assert (
                session.metrics.value(
                    "repro_service_slo_availability",
                    cls="interactive",
                    window="300",
                )
                == 1.0
            )

    def test_publish_on_null_observability_is_a_noop(self):
        from repro.obs import NullObservability

        tracker().publish(NullObservability(), now=0.0)


class TestDeterminism:
    def test_same_event_stream_snapshots_identically(self):
        def build():
            t = tracker()
            for at in range(50):
                t.record(
                    "interactive", at / 100, ok=at % 7 != 0, now=float(at)
                )
            return t.snapshot(now=50.0)

        assert build() == build()
