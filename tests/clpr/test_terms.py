"""Tests for logic terms."""

from fractions import Fraction

import pytest

from repro.clpr.terms import (
    Atom,
    Num,
    Struct,
    Var,
    atom,
    indicator_of,
    num,
    rename,
    struct,
    to_term,
    var,
    variables_in,
)


class TestConstruction:
    def test_fresh_vars_distinct(self):
        assert var("X") != var("X")

    def test_atom_equality(self):
        assert atom("public") == atom("public")

    def test_num_exact_fraction(self):
        assert num(0.5).value == Fraction(1, 2)

    def test_num_int(self):
        assert num(300).value == Fraction(300)

    def test_struct_builder_converts(self):
        term = struct("contains", "wisc", 5)
        assert term.args == (Atom("wisc"), Num(Fraction(5)))

    def test_to_term_bool(self):
        assert to_term(True) == Atom("true")

    def test_to_term_rejects_unknown(self):
        with pytest.raises(TypeError):
            to_term(object())

    def test_to_term_passthrough(self):
        x = var("X")
        assert to_term(x) is x


class TestIntrospection:
    def test_indicator(self):
        assert indicator_of(struct("ref", 1, 2, 3)) == ("ref", 3)
        assert indicator_of(atom("true")) == ("true", 0)

    def test_indicator_of_var_rejected(self):
        with pytest.raises(TypeError):
            indicator_of(var("X"))

    def test_variables_in(self):
        x, y = var("X"), var("Y")
        term = struct("f", x, struct("g", y, x))
        assert list(variables_in(term)) == [x, y, x]

    def test_repr_forms(self):
        assert repr(atom("a")) == "a"
        assert repr(num(3)) == "3"
        assert repr(num(1.5)) == "1.5"
        assert repr(struct("f", "a")) == "f(a)"


class TestRename:
    def test_rename_consistent(self):
        x = var("X")
        term = struct("f", x, x)
        renamed = rename(term, {})
        assert isinstance(renamed, Struct)
        assert renamed.args[0] == renamed.args[1]
        assert renamed.args[0] != x

    def test_rename_preserves_constants(self):
        term = struct("f", "a", 1)
        assert rename(term, {}) == term
