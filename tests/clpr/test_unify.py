"""Tests for trail-based unification."""

from repro.clpr.terms import atom, num, struct, var
from repro.clpr.unify import Bindings, match, occurs, unify, unify_or_undo


class TestWalk:
    def test_walk_unbound(self):
        b = Bindings()
        x = var("X")
        assert b.walk(x) is x

    def test_walk_chain(self):
        b = Bindings()
        x, y = var("X"), var("Y")
        b.bind(x, y)
        b.bind(y, atom("a"))
        assert b.walk(x) == atom("a")


class TestUnify:
    def test_atom_atom(self):
        b = Bindings()
        assert unify(atom("a"), atom("a"), b)
        assert not unify(atom("a"), atom("b"), b)

    def test_var_binds(self):
        b = Bindings()
        x = var("X")
        assert unify(x, num(5), b)
        assert b.walk(x) == num(5)

    def test_struct_recursive(self):
        b = Bindings()
        x, y = var("X"), var("Y")
        assert unify(struct("f", x, "b"), struct("f", "a", y), b)
        assert b.walk(x) == atom("a")
        assert b.walk(y) == atom("b")

    def test_functor_mismatch(self):
        b = Bindings()
        assert not unify(struct("f", "a"), struct("g", "a"), b)

    def test_arity_mismatch(self):
        b = Bindings()
        assert not unify(struct("f", "a"), struct("f", "a", "b"), b)

    def test_shared_variable(self):
        b = Bindings()
        x = var("X")
        assert unify(struct("f", x, x), struct("f", "a", "a"), b)
        assert not unify_or_undo(struct("f", x, x), struct("f", "a", "b"), b)

    def test_num_equality(self):
        b = Bindings()
        assert unify(num(3), num(3), b)
        assert not unify(num(3), num(4), b)

    def test_num_atom_clash(self):
        b = Bindings()
        assert not unify(num(3), atom("three"), b)


class TestTrail:
    def test_undo_restores(self):
        b = Bindings()
        x = var("X")
        mark = b.mark()
        unify(x, atom("a"), b)
        assert len(b) == 1
        b.undo_to(mark)
        assert len(b) == 0
        assert b.walk(x) is x

    def test_unify_or_undo_failure_leaves_clean(self):
        b = Bindings()
        x = var("X")
        ok = unify_or_undo(struct("f", x, "b"), struct("f", "a", "c"), b)
        assert not ok
        assert len(b) == 0

    def test_nested_marks(self):
        b = Bindings()
        x, y = var("X"), var("Y")
        outer = b.mark()
        unify(x, atom("a"), b)
        inner = b.mark()
        unify(y, atom("b"), b)
        b.undo_to(inner)
        assert b.walk(x) == atom("a")
        assert b.walk(y) is y
        b.undo_to(outer)
        assert b.walk(x) is x


class TestResolve:
    def test_resolve_deep(self):
        b = Bindings()
        x, y = var("X"), var("Y")
        unify(x, struct("f", y), b)
        unify(y, num(1), b)
        assert b.resolve(x) == struct("f", 1)

    def test_is_ground(self):
        b = Bindings()
        x = var("X")
        assert not b.is_ground(struct("f", x))
        unify(x, atom("a"), b)
        assert b.is_ground(struct("f", x))


class TestOccurs:
    def test_direct(self):
        b = Bindings()
        x = var("X")
        assert occurs(x, struct("f", x), b)

    def test_through_binding(self):
        b = Bindings()
        x, y = var("X"), var("Y")
        b.bind(y, struct("g", x))
        assert occurs(x, struct("f", y), b)

    def test_occurs_check_blocks_cyclic(self):
        b = Bindings()
        x = var("X")
        assert not unify(x, struct("f", x), b, occurs_check=True)

    def test_without_check_allows(self):
        b = Bindings()
        x = var("X")
        assert unify(x, struct("f", x), b)


class TestMatch:
    def test_match_success(self):
        x = var("X")
        b = match(struct("f", x), struct("f", "a"))
        assert b is not None
        assert b.walk(x) == atom("a")

    def test_match_failure(self):
        assert match(struct("f", "b"), struct("f", "a")) is None
