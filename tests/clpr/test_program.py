"""Tests for the Prolog-style reader and clause database."""

import pytest

from repro.clpr.program import (
    Clause,
    Program,
    parse_clauses,
    parse_program,
    parse_query,
    parse_term,
)
from repro.clpr.terms import Atom, Num, Struct, Var
from repro.errors import ClprSyntaxError


class TestTermParsing:
    def test_atom(self):
        assert parse_term("public") == Atom("public")

    def test_quoted_atom(self):
        assert parse_term("'romano.cs.wisc.edu'") == Atom("romano.cs.wisc.edu")

    def test_number(self):
        assert parse_term("300") == Num.of(300)

    def test_decimal(self):
        assert parse_term("2.5") == Num.of(2.5)

    def test_negative_number(self):
        assert parse_term("-4") == Num.of(-4)

    def test_variable(self):
        term = parse_term("Xyz")
        assert isinstance(term, Var)
        assert term.name == "Xyz"

    def test_underscore_var(self):
        assert isinstance(parse_term("_"), Var)

    def test_structure(self):
        term = parse_term("contains(wisc, romano)")
        assert term == Struct("contains", (Atom("wisc"), Atom("romano")))

    def test_nested_structure(self):
        term = parse_term("f(g(a), h(b, c))")
        assert isinstance(term.args[0], Struct)

    def test_arithmetic_precedence(self):
        # 1 + 2 * 3 parses as 1 + (2 * 3).
        term = parse_term("1 + 2 * 3")
        assert term.functor == "+"
        assert term.args[1].functor == "*"

    def test_parenthesised(self):
        term = parse_term("(1 + 2) * 3")
        assert term.functor == "*"

    def test_trailing_garbage(self):
        with pytest.raises(ClprSyntaxError):
            parse_term("a b")


class TestClauseParsing:
    def test_fact(self):
        (clause,) = parse_clauses("contains(wisc, romano).")
        assert clause.is_fact()
        assert clause.indicator == ("contains", 2)

    def test_rule(self):
        (clause,) = parse_clauses("anc(X, Z) :- contains(X, Y), anc(Y, Z).")
        assert len(clause.body) == 2
        # Shared variable Y appears in both body goals.
        y_first = clause.body[0].args[1]
        y_second = clause.body[1].args[0]
        assert y_first == y_second

    def test_variables_scoped_per_clause(self):
        clauses = parse_clauses("p(X). q(X).")
        assert clauses[0].head.args[0] != clauses[1].head.args[0]

    def test_comment_skipped(self):
        clauses = parse_clauses("% only a comment\np(a). % trailing\n")
        assert len(clauses) == 1

    def test_constraint_goals(self):
        (clause,) = parse_clauses("ok(T) :- T >= 300, T < 900.")
        assert clause.body[0].functor == ">="
        assert clause.body[1].functor == "<"

    def test_negation_goal(self):
        (clause,) = parse_clauses("bad(X) :- ref(X), \\+ perm(X).")
        assert clause.body[1].functor == "\\+"

    def test_is_goal(self):
        (clause,) = parse_clauses("double(X, Y) :- Y is X * 2.")
        assert clause.body[0].functor == "is"

    def test_missing_period(self):
        with pytest.raises(ClprSyntaxError):
            parse_clauses("p(a)")

    def test_unterminated_quote(self):
        with pytest.raises(ClprSyntaxError):
            parse_clauses("p('oops).")

    def test_fresh_renames_consistently(self):
        (clause,) = parse_clauses("p(X, X) :- q(X).")
        fresh = clause.fresh()
        assert fresh.head.args[0] == fresh.head.args[1]
        assert fresh.head.args[0] == fresh.body[0].args[0]
        assert fresh.head.args[0] != clause.head.args[0]


class TestQueryParsing:
    def test_plain_goals(self):
        goals = parse_query("contains(X, romano), X \\= wisc")
        assert len(goals) == 2

    def test_with_prefix_and_period(self):
        goals = parse_query("?- p(X).")
        assert len(goals) == 1

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ClprSyntaxError):
            parse_query("p(X). q(Y)")


class TestProgram:
    def test_index_by_indicator(self):
        program = parse_program("p(a). p(b). q(a, b).")
        assert len(program.clauses_for(("p", 1))) == 2
        assert len(program.clauses_for(("q", 2))) == 1
        assert program.clauses_for(("r", 0)) == []

    def test_defines(self):
        program = parse_program("p(a).")
        assert program.defines(("p", 1))
        assert not program.defines(("p", 2))

    def test_add_fact(self):
        program = Program()
        program.add_fact(parse_term("p(a)"))
        assert len(program) == 1

    def test_merged_with(self):
        left = parse_program("p(a).")
        right = parse_program("p(b). q(c).")
        merged = left.merged_with(right)
        assert len(merged) == 3
        assert len(left) == 1  # originals untouched

    def test_len(self):
        program = parse_program("p(a). p(b) :- q(b).")
        assert len(program) == 2
