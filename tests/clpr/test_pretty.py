"""Tests for Prolog-text rendering, including parse round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.clpr.pretty import clause_to_prolog, program_to_prolog, to_prolog
from repro.clpr.program import parse_clauses, parse_term
from repro.clpr.terms import Atom, Num, Struct, atom, num, struct, var


class TestRendering:
    def test_plain_atom(self):
        assert to_prolog(atom("public")) == "public"

    def test_quoted_atom(self):
        assert to_prolog(atom("romano.cs.wisc.edu")) == "'romano.cs.wisc.edu'"

    def test_uppercase_atom_quoted(self):
        assert to_prolog(atom("ReadOnly")) == "'ReadOnly'"

    def test_atom_with_quote_escaped(self):
        assert to_prolog(atom("it's")) == r"'it\'s'"

    def test_integer(self):
        assert to_prolog(num(300)) == "300"

    def test_fraction_as_float(self):
        assert to_prolog(num(0.5)) == "0.5"

    def test_structure(self):
        term = struct("contains", "wisc-cs", struct("system", "romano"))
        assert to_prolog(term) == "contains('wisc-cs', system(romano))"

    def test_variable(self):
        rendered = to_prolog(var("Xyz"))
        assert rendered[0].isupper()

    def test_fact_clause(self):
        (clause,) = parse_clauses("p(a).")
        assert clause_to_prolog(clause) == "p(a)."

    def test_rule_clause(self):
        (clause,) = parse_clauses("p(X) :- q(X), r(X).")
        rendered = clause_to_prolog(clause)
        assert rendered.startswith("p(")
        assert ":-" in rendered

    def test_program(self):
        clauses = parse_clauses("p(a). q(b).")
        assert program_to_prolog(clauses) == "p(a).\nq(b).\n"


ground_terms = st.recursive(
    st.one_of(
        st.from_regex(r"[a-z][a-zA-Z0-9_]{0,8}", fullmatch=True).map(Atom),
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                                   exclude_characters="\\"),
            min_size=1,
            max_size=12,
        ).map(Atom),
        st.integers(-10**6, 10**6).map(Num.of),
    ),
    lambda children: st.builds(
        lambda args: Struct("f", tuple(args)),
        st.lists(children, min_size=1, max_size=3),
    ),
    max_leaves=8,
)


class TestRoundTrip:
    @given(ground_terms)
    def test_ground_terms_round_trip(self, term):
        assert parse_term(to_prolog(term)) == term

    def test_consistency_fact_round_trip(self):
        text = "perm_eq('wisc-cs', public, 'mgmt.mib', readonly, 300)"
        term = parse_term(text)
        assert parse_term(to_prolog(term)) == term
