"""Tests for the linear constraint store."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.clpr.constraints import Constraint, ConstraintStore, LinExpr
from repro.clpr.terms import var
from repro.errors import ConstraintError


def expr_of(variable, coefficient=1, const=0):
    return LinExpr({variable: Fraction(coefficient)}, const)


class TestLinExpr:
    def test_addition_merges_coefficients(self):
        x = var("X")
        combined = expr_of(x, 2) + expr_of(x, 3)
        assert combined.coefficient(x) == 5

    def test_zero_coefficients_dropped(self):
        x = var("X")
        combined = expr_of(x, 1) - expr_of(x, 1)
        assert combined.is_constant()

    def test_scaled(self):
        x = var("X")
        assert expr_of(x, 2, 4).scaled(Fraction(1, 2)) == expr_of(x, 1, 2)

    def test_substitute(self):
        x, y = var("X"), var("Y")
        # 2x + 1 with x := y + 3  =>  2y + 7
        result = expr_of(x, 2, 1).substitute(x, expr_of(y, 1, 3))
        assert result.coefficient(y) == 2
        assert result.const == 7

    def test_substitute_absent_variable_noop(self):
        x, y = var("X"), var("Y")
        original = expr_of(x, 1)
        assert original.substitute(y, LinExpr.constant(5)) is original


class TestConstraintEvaluate:
    def test_constant_true_false(self):
        assert Constraint(LinExpr.constant(-1), "<").evaluate() is True
        assert Constraint(LinExpr.constant(1), "<").evaluate() is False
        assert Constraint(LinExpr.constant(0), "=").evaluate() is True
        assert Constraint(LinExpr.constant(0), "!=").evaluate() is False

    def test_nonconstant_is_none(self):
        assert Constraint(expr_of(var("X")), "<").evaluate() is None

    def test_unknown_op_rejected(self):
        with pytest.raises(ConstraintError):
            Constraint(LinExpr.constant(0), "<>")

    def test_compare_builder(self):
        x = var("X")
        c = Constraint.compare(expr_of(x), "<=", LinExpr.constant(5))
        assert c.expr.const == -5


class TestStoreSatisfiability:
    def test_single_bound_sat(self):
        store = ConstraintStore()
        x = var("X")
        assert store.add(Constraint.compare(expr_of(x), ">=", LinExpr.constant(0)))

    def test_window_sat_then_conflict(self):
        store = ConstraintStore()
        x = var("X")
        assert store.add(Constraint.compare(expr_of(x), ">=", LinExpr.constant(10)))
        assert store.add(Constraint.compare(expr_of(x), "<=", LinExpr.constant(20)))
        assert not store.add(Constraint.compare(expr_of(x), "<", LinExpr.constant(5)))
        # The failed add must not change the store.
        assert len(store) == 2

    def test_strict_empty_window(self):
        store = ConstraintStore()
        x = var("X")
        assert store.add(Constraint.compare(expr_of(x), ">", LinExpr.constant(5)))
        assert not store.add(Constraint.compare(expr_of(x), "<", LinExpr.constant(5)))
        assert not store.add(Constraint.compare(expr_of(x), "<=", LinExpr.constant(5)))

    def test_boundary_touch_is_sat(self):
        store = ConstraintStore()
        x = var("X")
        assert store.add(Constraint.compare(expr_of(x), ">=", LinExpr.constant(5)))
        assert store.add(Constraint.compare(expr_of(x), "<=", LinExpr.constant(5)))

    def test_equality_propagation(self):
        store = ConstraintStore()
        x, y = var("X"), var("Y")
        # x = y + 1, y >= 4, x <= 4 is UNSAT.
        assert store.add(Constraint.compare(expr_of(x), "=", expr_of(y, 1, 1)))
        assert store.add(Constraint.compare(expr_of(y), ">=", LinExpr.constant(4)))
        assert not store.add(Constraint.compare(expr_of(x), "<=", LinExpr.constant(4)))

    def test_two_variable_chain(self):
        store = ConstraintStore()
        x, y, z = var("X"), var("Y"), var("Z")
        assert store.add(Constraint.compare(expr_of(x), "<=", expr_of(y)))
        assert store.add(Constraint.compare(expr_of(y), "<=", expr_of(z)))
        assert store.add(Constraint.compare(expr_of(z), "<=", expr_of(x)))
        # x <= y <= z <= x forces equality; x < y now impossible.
        assert not store.add(Constraint.compare(expr_of(x), "<", expr_of(y)))

    def test_disequality_against_forced_equality(self):
        store = ConstraintStore()
        x = var("X")
        assert store.add(Constraint.compare(expr_of(x), ">=", LinExpr.constant(3)))
        assert store.add(Constraint.compare(expr_of(x), "<=", LinExpr.constant(3)))
        assert not store.add(
            Constraint.compare(expr_of(x), "!=", LinExpr.constant(3))
        )

    def test_disequality_with_room_is_sat(self):
        store = ConstraintStore()
        x = var("X")
        assert store.add(Constraint.compare(expr_of(x), ">=", LinExpr.constant(3)))
        assert store.add(Constraint.compare(expr_of(x), "!=", LinExpr.constant(3)))


class TestStoreTrail:
    def test_undo(self):
        store = ConstraintStore()
        x = var("X")
        mark = store.mark()
        store.add(Constraint.compare(expr_of(x), ">=", LinExpr.constant(0)))
        store.undo_to(mark)
        assert len(store) == 0


class TestEntailment:
    def test_entails_weaker_bound(self):
        store = ConstraintStore()
        x = var("X")
        store.add(Constraint.compare(expr_of(x), ">=", LinExpr.constant(10)))
        assert store.entails(Constraint.compare(expr_of(x), ">=", LinExpr.constant(5)))
        assert not store.entails(
            Constraint.compare(expr_of(x), ">=", LinExpr.constant(20))
        )

    def test_entails_equality(self):
        store = ConstraintStore()
        x = var("X")
        store.add(Constraint.compare(expr_of(x), ">=", LinExpr.constant(7)))
        store.add(Constraint.compare(expr_of(x), "<=", LinExpr.constant(7)))
        assert store.entails(Constraint.compare(expr_of(x), "=", LinExpr.constant(7)))


class TestBounds:
    def test_bounds_simple_window(self):
        store = ConstraintStore()
        x = var("X")
        store.add(Constraint.compare(expr_of(x), ">=", LinExpr.constant(300)))
        store.add(Constraint.compare(expr_of(x), "<", LinExpr.constant(900)))
        bounds = {bound.op: bound.value for bound in store.bounds_for(x)}
        assert bounds == {">=": 300, "<": 900}

    def test_bounds_through_elimination(self):
        store = ConstraintStore()
        x, y = var("X"), var("Y")
        # y >= 10 and x >= y  =>  x >= 10.
        store.add(Constraint.compare(expr_of(y), ">=", LinExpr.constant(10)))
        store.add(Constraint.compare(expr_of(x), ">=", expr_of(y)))
        bounds = store.bounds_for(x)
        assert any(bound.op == ">=" and bound.value == 10 for bound in bounds)

    def test_exact_bound(self):
        store = ConstraintStore()
        x = var("X")
        store.add(Constraint.compare(expr_of(x, 2), "=", LinExpr.constant(10)))
        bounds = store.bounds_for(x)
        assert bounds == [type(bounds[0])(bounds[0].variable, "=", Fraction(5))]

    def test_unconstrained_variable_has_no_bounds(self):
        store = ConstraintStore()
        assert store.bounds_for(var("Z")) == []


class TestPropertyBased:
    @given(
        st.integers(-50, 50),
        st.integers(-50, 50),
        st.integers(-50, 50),
    )
    def test_window_consistency_matches_interval_logic(self, low, high, probe):
        """x >= low, x <= high, x = probe is SAT iff low <= probe <= high."""
        store = ConstraintStore()
        x = var("X")
        assert store.add(Constraint.compare(expr_of(x), ">=", LinExpr.constant(low)))
        ok_high = store.add(Constraint.compare(expr_of(x), "<=", LinExpr.constant(high)))
        assert ok_high == (low <= high)
        if not ok_high:
            return
        ok_probe = store.add(Constraint.compare(expr_of(x), "=", LinExpr.constant(probe)))
        assert ok_probe == (low <= probe <= high)

    @given(st.lists(st.integers(-20, 20), min_size=1, max_size=6))
    def test_chain_of_lower_bounds(self, values):
        """x >= v for each v is always SAT; bound equals max(values)."""
        store = ConstraintStore()
        x = var("X")
        for value in values:
            assert store.add(
                Constraint.compare(expr_of(x), ">=", LinExpr.constant(value))
            )
        bounds = store.bounds_for(x)
        assert bounds[0].op == ">="
        assert bounds[0].value == max(values)
