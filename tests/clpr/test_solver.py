"""Tests for the SLD + constraints engine."""

from fractions import Fraction

import pytest

from repro.clpr.program import parse_program
from repro.clpr.solver import Engine
from repro.clpr.terms import Atom, Num
from repro.errors import ClprError


def engine(text: str, **kwargs) -> Engine:
    return Engine(parse_program(text), **kwargs)


class TestBasicResolution:
    def test_fact_query(self):
        e = engine("likes(alice, bob).")
        assert e.ask("likes(alice, bob)")
        assert not e.ask("likes(bob, alice)")

    def test_variable_answer(self):
        e = engine("likes(alice, bob). likes(alice, carol).")
        answers = e.all("likes(alice, X)")
        assert {a.value("X") for a in answers} == {Atom("bob"), Atom("carol")}

    def test_rule_chaining(self):
        e = engine(
            """
            parent(a, b). parent(b, c).
            grand(X, Z) :- parent(X, Y), parent(Y, Z).
            """
        )
        answer = e.first("grand(a, Z)")
        assert answer.value("Z") == Atom("c")

    def test_recursion_right_linear(self):
        e = engine(
            """
            edge(a, b). edge(b, c). edge(c, d).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            """
        )
        assert e.ask("path(a, d)")
        assert not e.ask("path(d, a)")

    def test_all_with_limit(self):
        e = engine("n(1). n(2). n(3).")
        assert len(e.all("n(X)", limit=2)) == 2

    def test_conjunction(self):
        e = engine("p(a). q(a). q(b).")
        answers = e.all("p(X), q(X)")
        assert len(answers) == 1

    def test_unknown_predicate_fails(self):
        e = engine("p(a).")
        assert not e.ask("mystery(a)")

    def test_depth_limit(self):
        e = engine("loop(X) :- loop(X).", max_depth=50)
        with pytest.raises(ClprError, match="depth"):
            e.ask("loop(a)")


class TestBuiltins:
    def test_true_fail(self):
        e = engine("p(a).")
        assert e.ask("true")
        assert not e.ask("fail")

    def test_explicit_unify(self):
        e = engine("p(a).")
        answer = e.first("X = a, p(X)")
        assert answer.value("X") == Atom("a")

    def test_disunify(self):
        e = engine("p(a). p(b).")
        answers = e.all("p(X), X \\= a")
        assert [a.value("X") for a in answers] == [Atom("b")]

    def test_negation_as_failure(self):
        e = engine("p(a). p(b). blocked(a).")
        answers = e.all("p(X), \\+ blocked(X)")
        assert [a.value("X") for a in answers] == [Atom("b")]

    def test_negation_does_not_bind(self):
        e = engine("p(a). blocked(b).")
        answer = e.first("p(X), \\+ blocked(X)")
        assert answer.value("X") == Atom("a")

    def test_is_ground_evaluation(self):
        e = engine("p(a).")
        answer = e.first("X is 3 * 4 + 1")
        assert answer.value("X") == Num.of(13)

    def test_ground_comparisons(self):
        e = engine("p(a).")
        assert e.ask("3 < 4")
        assert not e.ask("4 < 3")
        assert e.ask("4 >= 4")
        assert e.ask("5 =:= 5")
        assert e.ask("5 =\\= 6")

    def test_comparison_on_atoms_fails(self):
        e = engine("p(a).")
        assert not e.ask("a < b")


class TestConstraints:
    def test_residual_lower_bound(self):
        e = engine("valid(T) :- T >= 300.")
        answer = e.first("valid(T)")
        assert answer.residual
        bound = answer.residual[0]
        assert bound.op == ">="
        assert bound.value == 300

    def test_constraint_conflict_prunes(self):
        e = engine("narrow(T) :- T >= 300, T < 200.")
        assert not e.ask("narrow(T)")

    def test_constraint_then_test(self):
        e = engine("window(T) :- T >= 10, T =< 20.")
        assert e.ask("window(T), T =:= 15")
        assert not e.ask("window(T), T =:= 25")

    def test_forced_equality_reported(self):
        e = engine("exact(T) :- T >= 5, T =< 5.")
        answer = e.first("exact(T)")
        assert answer.value("T") == Num.of(5)

    def test_clpr_reverse_mode(self):
        """Solve for a parameter: classic CLP(R) behaviour."""
        e = engine("ok(Req, Lim) :- Req >= Lim.")
        answer = e.first("ok(R, 300)")
        assert any(b.op == ">=" and b.value == 300 for b in answer.residual)

    def test_is_with_unbound_becomes_equation(self):
        e = engine("rel(X, Y) :- X is Y + 2.")
        # Y fixed: X derived.
        answer = e.first("rel(X, 5)")
        assert answer.value("X") == Num.of(7)

    def test_backtracking_restores_store(self):
        e = engine(
            """
            choice(1). choice(2).
            pick(X) :- choice(X), X > 1.
            """
        )
        answers = e.all("pick(X)")
        assert [a.value("X") for a in answers] == [Num.of(2)]

    def test_linear_combination(self):
        e = engine("sum(X, Y) :- X + Y =< 10, X >= 4, Y >= 4.")
        assert e.ask("sum(X, Y)")
        assert not e.ask("sum(X, Y), X >= 7")


class TestAnswers:
    def test_bindings_only_named_vars(self):
        e = engine("pair(a, b).")
        answer = e.first("pair(X, _)")
        assert set(answer.bindings) == {"X"}

    def test_value_unknown_name(self):
        e = engine("p(a).")
        answer = e.first("p(X)")
        with pytest.raises(ClprError):
            answer.value("Nope")

    def test_repr_readable(self):
        e = engine("p(a).")
        answer = e.first("p(X)")
        assert "X = a" in repr(answer)


class TestErrors:
    def test_unbound_goal(self):
        e = engine("p(a).")
        with pytest.raises(ClprError, match="unbound"):
            e.ask("G")

    def test_number_goal(self):
        e = engine("p(a).")
        with pytest.raises(ClprError, match="number"):
            e.ask("3")
