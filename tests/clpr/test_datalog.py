"""Tests for the semi-naive bottom-up evaluator."""

import pytest

from repro.clpr.datalog import FactBase, Justification, forward_chain
from repro.clpr.program import parse_clauses, parse_term
from repro.clpr.terms import struct
from repro.errors import ClprError


def terms(*texts):
    return [parse_term(text) for text in texts]


class TestFactBase:
    def test_add_and_contains(self):
        fb = FactBase()
        fact = parse_term("p(a)")
        assert fb.add(fact, Justification(None))
        assert not fb.add(fact, Justification(None))
        assert fb.contains(fact)
        assert len(fb) == 1

    def test_why_missing(self):
        fb = FactBase()
        with pytest.raises(ClprError):
            fb.why(parse_term("p(a)"))


class TestForwardChain:
    def test_transitive_closure(self):
        facts = terms("edge(a, b)", "edge(b, c)", "edge(c, d)")
        rules = parse_clauses(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        fb = forward_chain(facts, rules)
        assert fb.contains(parse_term("path(a, d)"))
        assert not fb.contains(parse_term("path(d, a)"))
        # 3 edges, 6 paths.
        assert len(fb.facts_for(("path", 2))) == 6

    def test_left_recursive_rule_terminates(self):
        """The motivating case: SLD loops on this, datalog does not."""
        facts = terms("contains(a, b)", "contains(b, c)")
        rules = parse_clauses("contains(X, Z) :- contains(X, Y), contains(Y, Z).")
        fb = forward_chain(facts, rules)
        assert fb.contains(parse_term("contains(a, c)"))
        assert len(fb.facts_for(("contains", 2))) == 3

    def test_cycle_terminates(self):
        facts = terms("edge(a, b)", "edge(b, a)")
        rules = parse_clauses(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        fb = forward_chain(facts, rules)
        assert fb.contains(parse_term("path(a, a)"))

    def test_join_two_relations(self):
        facts = terms("on(p1, host1)", "in(host1, domainA)")
        rules = parse_clauses("member(P, D) :- on(P, H), in(H, D).")
        fb = forward_chain(facts, rules)
        assert fb.contains(parse_term("member(p1, domainA)"))

    def test_guard_filters(self):
        facts = terms("freq(a, 10)", "freq(b, 600)")
        rules = parse_clauses("slow(X) :- freq(X, F), F >= 300.")
        fb = forward_chain(facts, rules)
        assert fb.contains(parse_term("slow(b)"))
        assert not fb.contains(parse_term("slow(a)"))

    def test_is_computes(self):
        facts = terms("freq(a, 10)")
        rules = parse_clauses("doubled(X, D) :- freq(X, F), D is F * 2.")
        fb = forward_chain(facts, rules)
        assert fb.contains(parse_term("doubled(a, 20)"))

    def test_rule_file_facts_included(self):
        rules = parse_clauses("p(a). q(X) :- p(X).")
        fb = forward_chain([], rules)
        assert fb.contains(parse_term("q(a)"))

    def test_nonground_base_fact_rejected(self):
        with pytest.raises(ClprError, match="not ground"):
            forward_chain([struct("p", parse_term("X"))], [])

    def test_unsafe_rule_rejected(self):
        facts = terms("p(a)")
        rules = parse_clauses("q(Y) :- p(X).")
        with pytest.raises(ClprError, match="unsafe|not ground"):
            forward_chain(facts, rules)

    def test_structured_constants(self):
        facts = terms("supports(agent1, view(ip, udp))")
        rules = parse_clauses("has_view(A) :- supports(A, view(_, _)).")
        fb = forward_chain(facts, rules)
        assert fb.contains(parse_term("has_view(agent1)"))


class TestProvenance:
    def test_base_fact_justification(self):
        fb = forward_chain(terms("edge(a, b)"), [])
        why = fb.why(parse_term("edge(a, b)"))
        assert why.is_base()

    def test_derived_fact_premises(self):
        facts = terms("edge(a, b)", "edge(b, c)")
        rules = parse_clauses(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        fb = forward_chain(facts, rules)
        why = fb.why(parse_term("path(a, c)"))
        assert not why.is_base()
        assert len(why.premises) == 2

    def test_explain_trace(self):
        facts = terms("edge(a, b)", "edge(b, c)")
        rules = parse_clauses(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        fb = forward_chain(facts, rules)
        lines = fb.explain(parse_term("path(a, c)"))
        assert any("[given]" in line for line in lines)
        assert lines[0].startswith("path(a, c)")


class TestScale:
    def test_chain_closure_scales(self):
        """A 201-node chain has C(201, 2) = 20100 paths; must finish quickly."""
        facts = [struct("edge", f"n{i}", f"n{i+1}") for i in range(200)]
        rules = parse_clauses(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
            """
        )
        fb = forward_chain(facts, rules)
        assert len(fb.facts_for(("path", 2))) == 201 * 200 // 2
