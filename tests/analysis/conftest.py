"""Shared helpers for the static-analysis test suite."""

import pytest

from repro.analysis import AnalysisContext, default_registry
from repro.nmsl.compiler import CompilerOptions, NmslCompiler

#: Registry built once: pass registration is pure, so sharing is safe.
REGISTRY = default_registry()


@pytest.fixture(scope="package")
def compiler():
    return NmslCompiler(CompilerOptions(register_codegen=False))


def analyze(text, codes=None, extensions=(), extension_files=(), strict=True):
    """Compile *text* and run the (selected) passes over it."""
    compiler = NmslCompiler(
        CompilerOptions(
            filename="fixture.nmsl",
            strict=strict,
            extensions=tuple(extensions),
            extension_files=tuple(extension_files),
            register_codegen=False,
        )
    )
    result = compiler.compile(text)
    assert not result.report.errors, result.report.errors
    return REGISTRY.run(compiler.analysis_context(result), codes=codes)


def context_for(text, filename="fixture.nmsl"):
    compiler = NmslCompiler(
        CompilerOptions(filename=filename, register_codegen=False)
    )
    result = compiler.compile(text)
    assert not result.report.errors, result.report.errors
    return AnalysisContext(
        specification=result.specification,
        tree=compiler.tree,
        filename=filename,
    )
