"""Source-span plumbing: diagnostics and semantic errors point at the
clause that caused them, not at 1:1 or a synthesized location."""

from pathlib import Path

from repro.nmsl.compiler import CompilerOptions, NmslCompiler

from tests.analysis.conftest import analyze

EXAMPLES = Path(__file__).parents[2] / "examples"


def compile_lax(text):
    compiler = NmslCompiler(
        CompilerOptions(filename="fixture.nmsl", register_codegen=False)
    )
    return compiler.compile(text, strict=False)


class TestFrequencyErrorLocations:
    """Satellite bugfix: NmslSemanticError out of frequency.py carries
    the clause token's location."""

    def test_negative_period_anchored_at_value(self):
        text = (
            "process p ::=\n"
            "    supports mgmt.mib.system;\n"
            "    exports mgmt.mib.system to clients\n"
            "        access ReadOnly frequency >= -5 minutes;\n"
            "end process p.\n"
        )
        result = compile_lax(text)
        errors = [
            e for e in result.report.errors if "frequency" in str(e).lower()
        ]
        assert errors, result.report.errors
        rendered = str(errors[0])
        # The bad value sits on line 4; before the fix this rendered
        # with no position at all.
        assert "fixture.nmsl:4:" in rendered

    def test_zero_period_with_equals(self):
        text = (
            "process p ::=\n"
            "    supports mgmt.mib.system;\n"
            "    exports mgmt.mib.system to clients\n"
            "        access ReadOnly frequency = 0 seconds;\n"
            "end process p.\n"
        )
        result = compile_lax(text)
        errors = [e for e in result.report.errors if "frequency" in str(e)]
        assert errors and "fixture.nmsl:4:" in str(errors[0])


class TestPermissionLocations:
    def test_campus_export_spans(self):
        """Permissions carry the span of their ``exports`` clause, so
        NM201 findings point into the real file."""
        path = EXAMPLES / "campus.nmsl"
        compiler = NmslCompiler(
            CompilerOptions(filename=str(path), register_codegen=False)
        )
        result = compiler.compile(path.read_text(encoding="utf-8"))
        assert result.ok
        from repro.analysis import default_registry

        report = default_registry().run(
            compiler.analysis_context(result), codes=["NM201"]
        )
        assert report.diagnostics
        text_lines = path.read_text(encoding="utf-8").splitlines()
        for diagnostic in report.diagnostics:
            assert diagnostic.location.filename == str(path)
            line = text_lines[diagnostic.location.line - 1]
            assert "exports" in line, (diagnostic.render(), line)

    def test_reference_locations_threaded(self):
        result = compile_lax(
            "process watcher(T: Process) ::=\n"
            "    queries T requests mgmt.mib.ip frequency >= 10 minutes;\n"
            "end process watcher.\n"
        )
        process = result.specification.processes["watcher"]
        (query,) = process.queries
        assert query.location.line == 2


class TestDiagnosticSpansNotDefault:
    def test_no_finding_at_origin(self):
        report = analyze(
            "process ghost ::= supports mgmt.mib.udp; end process ghost.",
            codes=["NM101"],
        )
        (diagnostic,) = report.diagnostics
        assert (diagnostic.location.line, diagnostic.location.column) != (0, 0)
        assert diagnostic.location.filename == "fixture.nmsl"
