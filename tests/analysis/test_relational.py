"""The NM4xx relational diagnostics: rendering, waivers, determinism."""

import json

import pytest

from repro.analysis import (
    Baseline,
    BaselineError,
    Severity,
    Waiver,
    relational_registry,
    relational_report,
    render_json,
    render_sarif,
)
from repro.consistency.impact import ConfigChange, ImpactAnalyzer, ImpactSet
from repro.consistency.evolution import diff_specifications
from repro.nmsl.compiler import CompilerOptions, NmslCompiler

SYSTEMS = """
process agent ::=
    supports mgmt.mib.system, mgmt.mib.ip;
end process agent.
process watcher(T: Process) ::=
    queries T requests mgmt.mib.ip frequency >= 10 minutes;
end process watcher.
system "server.example" ::=
    cpu sparc;
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agent;
end system "server.example".
system "noc.example" ::=
    cpu sparc;
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agent;
end system "noc.example".
"""

GRANT = """
domain servers ::=
    system server.example;
    exports mgmt.mib.ip to clients access {access} frequency >= {minutes} minutes;
end domain servers.
domain clients ::=
    system noc.example;
    process watcher(server.example);
end domain clients.
"""

SPEC_A = SYSTEMS + GRANT.format(access="ReadOnly", minutes=5)
SPEC_WIDENED = SYSTEMS + GRANT.format(access="ReadWrite", minutes=5)
SPEC_TIGHTENED = SYSTEMS + GRANT.format(access="ReadOnly", minutes=20)
SPEC_UNGRANTED = SYSTEMS + GRANT.replace(
    "    exports mgmt.mib.ip to clients access {access} "
    "frequency >= {minutes} minutes;\n",
    "",
).format(access="ReadOnly", minutes=5)


def impact_between(text_a, text_b, **kwargs):
    compiler_a = NmslCompiler(
        CompilerOptions(filename="a.nmsl", register_codegen=False)
    )
    result_a = compiler_a.compile(text_a, strict=False)
    compiler_b = NmslCompiler(
        CompilerOptions(filename="b.nmsl", register_codegen=False)
    )
    result_b = compiler_b.compile(text_b, strict=False)
    kwargs.setdefault("tags", ())
    analyzer = ImpactAnalyzer(compiler_a.tree, **kwargs)
    analyzer.baseline(result_a.specification)
    return analyzer.analyze(result_b.specification)


def report_between(text_a, text_b, **kwargs):
    return relational_report(impact_between(text_a, text_b, **kwargs))


class TestFindings:
    def test_widened_access_is_nm401_error(self):
        report = report_between(SPEC_A, SPEC_WIDENED)
        (finding,) = report.by_code("NM401")
        assert finding.severity is Severity.ERROR
        assert "widens access" in finding.message
        assert "ReadOnly to ReadWrite" in finding.message
        assert finding.suggestion  # points at --update-waiver
        # The span lands on the B-side source.
        assert finding.location.filename == "b.nmsl"
        assert finding.location.line > 1
        assert report.gating()

    def test_tightened_frequency_is_nm404_warning(self):
        report = report_between(SPEC_A, SPEC_TIGHTENED)
        (finding,) = report.by_code("NM404")
        assert finding.severity is Severity.WARNING
        assert "frequency budget tightened" in finding.message

    def test_broken_reference_is_nm402_error(self):
        report = report_between(SPEC_A, SPEC_UNGRANTED)
        flips = report.by_code("NM402")
        assert flips
        assert all(f.severity is Severity.ERROR for f in flips)
        assert any(
            "consistent -> inconsistent" in f.message for f in flips
        )

    def test_fixed_reference_is_nm402_note(self):
        report = report_between(SPEC_UNGRANTED, SPEC_A)
        flips = report.by_code("NM402")
        assert flips
        assert all(f.severity is Severity.NOTE for f in flips)
        # The fix itself never gates — but introducing the grant that
        # fixes it is a widening, and that does (NM401, by design).
        assert {d.code for d in report.gating()} == {"NM401"}

    def test_self_diff_reports_nothing(self):
        report = report_between(SPEC_A, SPEC_A)
        assert not report.diagnostics


class TestCraftedImpact:
    def _diff(self):
        compiler = NmslCompiler(
            CompilerOptions(register_codegen=False)
        )
        spec = compiler.compile(SPEC_A, strict=False).specification
        return diff_specifications(spec, spec)

    def test_unexplained_rewrite_is_nm403(self):
        impact = ImpactSet(
            diff=self._diff(),
            config_changes=(
                ConfigChange(
                    "server.example", "BartsSnmpd", "a" * 64, "b" * 64,
                    spec_caused=False,
                ),
            ),
        )
        (finding,) = relational_report(impact).by_code("NM403")
        assert finding.severity is Severity.WARNING
        assert "no specification change" in finding.message

    def test_orphan_is_nm405(self):
        impact = ImpactSet(diff=self._diff(), orphaned=("old.example",))
        (finding,) = relational_report(impact).by_code("NM405")
        assert finding.severity is Severity.WARNING
        assert "decommission" in finding.message


class TestWaiver:
    def test_waiver_suppresses_the_gate(self, tmp_path):
        report = report_between(SPEC_A, SPEC_WIDENED)
        assert report.gating()
        path = tmp_path / "waivers.json"
        Waiver.from_gating(report).save(path)
        waived = Waiver.load(path).apply(report)
        assert not waived.gating()
        assert len(waived) == len(report)  # reported, not hidden

    def test_analysis_baseline_cannot_waive_a_diff(self, tmp_path):
        report = report_between(SPEC_A, SPEC_WIDENED)
        path = tmp_path / "baseline.json"
        Baseline.from_report(report).save(path)
        with pytest.raises(BaselineError, match="nmslc-analyze"):
            Waiver.load(path)

    def test_unknown_schema_is_rejected(self, tmp_path):
        path = tmp_path / "waivers.json"
        path.write_text(
            json.dumps(
                {"schema": 99, "tool": "nmslc-diff", "suppressions": []}
            )
        )
        with pytest.raises(BaselineError, match="schema 99"):
            Waiver.load(path)


class TestDeterminism:
    def test_repeated_diffs_render_byte_identically(self):
        registry = relational_registry()
        renders = [
            render_sarif(
                relational_report(
                    impact_between(SPEC_A, SPEC_WIDENED), registry
                ),
                registry.passes(),
            )
            for _ in range(2)
        ]
        assert renders[0] == renders[1]
        payloads = [
            render_json(report_between(SPEC_A, SPEC_TIGHTENED))
            for _ in range(2)
        ]
        assert payloads[0] == payloads[1]

    def test_sarif_carries_all_nm4xx_rules(self):
        registry = relational_registry()
        report = relational_report(
            impact_between(SPEC_A, SPEC_WIDENED), registry
        )
        sarif = json.loads(render_sarif(report, registry.passes()))
        rules = [
            rule["id"]
            for rule in sarif["runs"][0]["tool"]["driver"]["rules"]
        ]
        assert rules == ["NM401", "NM402", "NM403", "NM404", "NM405"]
        (result,) = sarif["runs"][0]["results"]
        fingerprint = result["partialFingerprints"]["nmslFingerprint/v2"]
        assert len(fingerprint) == 64
