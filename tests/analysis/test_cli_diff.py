"""CLI tests for ``nmslc diff`` and ``rollout --diff-base``."""

import json
from pathlib import Path

import pytest

from repro.cli import main

SPEC = """
process agent ::=
    supports mgmt.mib.system, mgmt.mib.ip;
end process agent.
process watcher(T: Process) ::=
    queries T requests mgmt.mib.ip frequency >= 10 minutes;
end process watcher.
system "server.example" ::=
    cpu sparc;
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agent;
end system "server.example".
system "noc.example" ::=
    cpu sparc;
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agent;
end system "noc.example".
domain servers ::=
    system server.example;
    exports mgmt.mib.ip to clients access {access} frequency >= 5 minutes;
end domain servers.
domain clients ::=
    system noc.example;
    process watcher(server.example);
end domain clients.
"""


@pytest.fixture
def revisions(tmp_path):
    old = tmp_path / "old.nmsl"
    old.write_text(SPEC.format(access="ReadOnly"))
    new = tmp_path / "new.nmsl"
    new.write_text(SPEC.format(access="ReadWrite"))
    return old, new


class TestExitCodes:
    def test_self_diff_exits_zero(self, revisions, capsys):
        old, _ = revisions
        assert main(["diff", str(old), str(old)]) == 0
        assert "no analysis findings" in capsys.readouterr().out

    def test_widening_exits_one(self, revisions, capsys):
        old, new = revisions
        assert main(["diff", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "error NM401" in out
        assert "access-widened-grant" in out
        assert "new.nmsl" in out  # span on the B-side source

    def test_compile_error_exits_two(self, revisions, tmp_path, capsys):
        old, _ = revisions
        broken = tmp_path / "broken.nmsl"
        broken.write_text("this is not nmsl")
        assert main(["diff", str(old), str(broken)]) == 2

    def test_missing_file_exits_two(self, revisions):
        old, _ = revisions
        assert main(["diff", str(old), str(old.parent / "nope.nmsl")]) == 2


class TestWaiverFlow:
    def test_update_waiver_then_clean(self, revisions, tmp_path, capsys):
        old, new = revisions
        waiver = tmp_path / "waivers.json"
        assert main(
            ["diff", str(old), str(new), "--waiver", str(waiver),
             "--update-waiver"]
        ) == 0
        payload = json.loads(waiver.read_text())
        assert payload["tool"] == "nmslc-diff"
        assert payload["schema"] == 1
        assert payload["suppressions"]
        assert main(
            ["diff", str(old), str(new), "--waiver", str(waiver)]
        ) == 0
        assert "baselined" in capsys.readouterr().out

    def test_update_waiver_needs_waiver_path(self, revisions, capsys):
        old, new = revisions
        assert main(["diff", str(old), str(new), "--update-waiver"]) == 2
        assert "--waiver" in capsys.readouterr().err


class TestFormats:
    def test_sarif_format(self, revisions, capsys):
        old, new = revisions
        assert main(
            ["diff", str(old), str(new), "--format", "sarif"]
        ) == 1
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        (result,) = sarif["runs"][0]["results"]
        assert result["ruleId"] == "NM401"

    def test_json_report_file(self, revisions, tmp_path, capsys):
        old, new = revisions
        report_file = tmp_path / "impact.json"
        assert main(
            ["diff", str(old), str(new), "--format", "json",
             "--report-file", str(report_file)]
        ) == 1
        stdout_payload = json.loads(capsys.readouterr().out)
        file_payload = json.loads(report_file.read_text())
        assert stdout_payload == file_payload
        assert file_payload["summary"]["errors"] == 1

    def test_repeated_runs_are_byte_identical(self, revisions, capsys):
        old, new = revisions
        main(["diff", str(old), str(new), "--format", "json"])
        first = capsys.readouterr().out
        main(["diff", str(old), str(new), "--format", "json"])
        assert capsys.readouterr().out == first


class TestRolloutGating:
    def test_unwaived_rollout_refused(self, revisions, capsys):
        old, new = revisions
        assert main(["rollout", str(new), "--diff-base", str(old)]) == 1
        captured = capsys.readouterr()
        assert "NM401" in captured.out
        assert "rollout refused" in captured.err

    def test_waived_rollout_stages_only_impacted(
        self, revisions, tmp_path, capsys
    ):
        old, new = revisions
        waiver = tmp_path / "waivers.json"
        assert main(
            ["diff", str(old), str(new), "--waiver", str(waiver),
             "--update-waiver"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["rollout", str(new), "--diff-base", str(old),
             "--waiver", str(waiver)]
        ) == 0
        captured = capsys.readouterr()
        assert "server.example" in captured.out
        # The unimpacted noc host is not part of the campaign.
        assert "noc.example: committed" not in captured.out
