"""Renderer tests: text spans, JSON shape, SARIF 2.1.0 validity."""

import json
import re

from repro.analysis import render, render_json, render_sarif, render_text
from repro.analysis.render import SARIF_SCHEMA, SARIF_VERSION, TOOL_NAME

from tests.analysis.conftest import REGISTRY, analyze

#: A fixture that lights up warnings (NM101) and errors (NM202) at once.
MIXED = """
process agent ::=
    supports mgmt.mib.system, mgmt.mib.ip;
    exports mgmt.mib.ip to "public" access ReadWrite frequency >= 5 minutes;
end process agent.
process ghost ::= supports mgmt.mib.udp; end process ghost.
system "server.example" ::=
    cpu sparc;
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agent;
end system "server.example".
"""

#: Every text finding line: file:line:col: severity CODE [slug] ...
TEXT_LINE = re.compile(
    r"^\S+:\d+:\d+: (error|warning|note) NM\d{3} \[[a-z-]+\] "
)


class TestTextRenderer:
    def test_every_finding_carries_a_real_span(self):
        report = analyze(MIXED, strict=False)
        assert len(report) >= 2
        lines = render_text(report).splitlines()
        finding_lines = [
            line
            for line in lines
            if not line.startswith(("    fix:", " "))
            and "finding(s)" not in line
        ]
        assert finding_lines
        for line in finding_lines:
            assert TEXT_LINE.match(line), line
            filename, line_no, column = line.split(":")[:3]
            assert filename == "fixture.nmsl"
            assert int(line_no) >= 1
            assert int(column) >= 1

    def test_summary_line(self):
        report = analyze(MIXED, strict=False)
        text = render_text(report)
        assert re.search(r"\d+ finding\(s\): \d+ error\(s\)", text)

    def test_empty_report(self):
        report = analyze("process p ::= supports mgmt.mib; end process p.\n"
                         + MIXED.split("process ghost")[0].split("process agent")[0],
                         codes=["NM301"])
        assert render_text(report) == "no analysis findings"


class TestJsonRenderer:
    def test_shape(self):
        report = analyze(MIXED, strict=False)
        payload = json.loads(render_json(report))
        assert payload["tool"] == TOOL_NAME
        assert payload["version"] == 1
        assert len(payload["findings"]) == len(report)
        for finding in payload["findings"]:
            assert re.match(r"NM\d{3}$", finding["code"])
            assert finding["severity"] in ("error", "warning", "note")
            assert finding["file"] == "fixture.nmsl"
            assert finding["line"] >= 1
            assert finding["column"] >= 1


class TestSarifRenderer:
    def run_sarif(self):
        report = analyze(MIXED, strict=False)
        return report, json.loads(render_sarif(report, REGISTRY.passes()))

    def test_sarif_2_1_0_envelope(self):
        _, sarif = self.run_sarif()
        assert sarif["version"] == SARIF_VERSION == "2.1.0"
        assert sarif["$schema"] == SARIF_SCHEMA
        assert len(sarif["runs"]) == 1

    def test_driver_declares_all_rules(self):
        _, sarif = self.run_sarif()
        driver = sarif["runs"][0]["tool"]["driver"]
        assert driver["name"] == TOOL_NAME
        assert driver["version"]
        assert driver["informationUri"]
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(rule_ids) or rule_ids  # stable order
        assert set(rule_ids) == {
            rule.code for rule in REGISTRY.passes()
        }
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]

    def test_results_reference_rules_and_spans(self):
        report, sarif = self.run_sarif()
        driver = sarif["runs"][0]["tool"]["driver"]
        rule_ids = [rule["id"] for rule in driver["rules"]]
        results = sarif["runs"][0]["results"]
        assert len(results) == len(report)
        for result in results:
            assert result["ruleId"] in rule_ids
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            assert result["level"] in ("error", "warning", "note")
            assert result["message"]["text"]
            (location,) = result["locations"]
            physical = location["physicalLocation"]
            assert physical["artifactLocation"]["uri"]
            region = physical["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1
            fingerprint = result["partialFingerprints"]["nmslFingerprint/v2"]
            # Hashed, path-free and fixed-width: stable across checkouts.
            assert len(fingerprint) == 64
            assert set(fingerprint) <= set("0123456789abcdef")

    def test_dispatcher(self):
        report = analyze(MIXED, strict=False)
        assert render(report, "text", REGISTRY.passes()) == render_text(
            report
        )
        assert json.loads(render(report, "sarif", REGISTRY.passes()))[
            "version"
        ] == "2.1.0"
