"""Determinism: two analyzer runs over a 50-spec corpus are identical.

Mirrors the differential suite's corpus draw (same seed, same knobs) so
the analyzer is exercised over the same synthetic internets that gate
the consistency engines.
"""

import random

from repro.analysis import analyze_specification, render_text
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.workloads.generator import InternetParameters, SyntheticInternet

CORPUS_SIZE = 50
CORPUS_SEED = 1989

_COMPILER = NmslCompiler(CompilerOptions(register_codegen=False))


def _draw_parameters(rng: random.Random) -> InternetParameters:
    n_domains = rng.randint(2, 4)
    systems = rng.randint(1, 3)
    applications = rng.randint(1, 2)
    poller_slots = n_domains * applications
    return InternetParameters(
        n_domains=n_domains,
        systems_per_domain=systems,
        applications_per_domain=applications,
        silent_domains=tuple(
            sorted(
                rng.sample(
                    range(n_domains), k=rng.randint(0, min(2, n_domains - 1))
                )
            )
        ),
        fast_pollers=tuple(
            sorted(rng.sample(range(poller_slots), k=rng.randint(0, 2)))
        ),
        egp_pollers=tuple(
            sorted(rng.sample(range(poller_slots), k=rng.randint(0, 1)))
        ),
        seed=rng.randint(0, 2**31),
    )


def _corpus():
    rng = random.Random(CORPUS_SEED)
    return [_draw_parameters(rng) for _ in range(CORPUS_SIZE)]


def test_two_runs_identical_over_corpus():
    corpus = [
        SyntheticInternet(parameters).specification()
        for parameters in _corpus()
    ]
    first = [
        render_text(analyze_specification(spec, _COMPILER.tree))
        for spec in corpus
    ]
    second = [
        render_text(analyze_specification(spec, _COMPILER.tree))
        for spec in corpus
    ]
    assert first == second


def test_report_is_sorted_and_deduplicated():
    spec = SyntheticInternet(
        InternetParameters(
            n_domains=3,
            systems_per_domain=2,
            applications_per_domain=2,
            silent_domains=(0,),
            fast_pollers=(1,),
        )
    ).specification()
    report = analyze_specification(spec, _COMPILER.tree)
    keys = [d.sort_key() for d in report.diagnostics]
    assert keys == sorted(keys)
    fingerprint_spans = [
        (d.fingerprint(), d.location) for d in report.diagnostics
    ]
    assert len(fingerprint_spans) == len(set(fingerprint_spans))
