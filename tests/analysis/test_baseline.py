"""Baseline-suppression tests, including the seeded repo baseline."""

import json
from pathlib import Path

import pytest

from repro.analysis import Baseline, BaselineError, default_registry
from repro.nmsl.compiler import CompilerOptions, NmslCompiler

from tests.analysis.conftest import analyze

EXAMPLES = Path(__file__).parents[2] / "examples"

UNUSED_EXPORT = """
process agent ::=
    supports mgmt.mib.system, mgmt.mib.ip;
    exports mgmt.mib.ip to "nowhere-domain"
        access ReadOnly frequency >= 5 minutes;
end process agent.
system "server.example" ::=
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agent;
end system "server.example".
"""


def analyze_example(stem, codes=None):
    path = EXAMPLES / f"{stem}.nmsl"
    compiler = NmslCompiler(
        CompilerOptions(filename=str(path), register_codegen=False)
    )
    result = compiler.compile(path.read_text(encoding="utf-8"))
    assert result.ok
    return default_registry().run(
        compiler.analysis_context(result), codes=codes
    )


class TestRoundTrip:
    def test_save_load_apply(self, tmp_path):
        report = analyze(UNUSED_EXPORT, strict=False)
        assert len(report) >= 1
        baseline = Baseline.from_report(report)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        reloaded = Baseline.load(path)
        assert len(reloaded) == len(baseline)
        suppressed = reloaded.apply(report)
        assert all(d.suppressed for d in suppressed.diagnostics)
        assert not suppressed.gating()
        assert not suppressed.unsuppressed()

    def test_file_is_human_reviewable(self, tmp_path):
        report = analyze(UNUSED_EXPORT, strict=False)
        path = tmp_path / "baseline.json"
        Baseline.from_report(report).save(path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert payload["tool"] == "nmslc-analyze"
        for entry in payload["suppressions"]:
            assert set(entry) == {"code", "subject", "message"}

    def test_fingerprint_ignores_line_moves(self, tmp_path):
        report = analyze(UNUSED_EXPORT, strict=False)
        baseline = Baseline.from_report(report)
        moved = analyze("\n\n\n" + UNUSED_EXPORT, strict=False)
        assert all(d in baseline for d in moved.diagnostics)


class TestMalformed:
    def test_not_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_missing_suppressions(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 1}')
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_entry_missing_fields(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"suppressions": [{"code": "NM201"}]}')
        with pytest.raises(BaselineError):
            Baseline.load(path)


class TestSeededRepoBaseline:
    """examples/analysis-baseline.json keeps the shipped examples clean."""

    def test_campus_fully_baselined(self):
        report = analyze_example("campus")
        baseline = Baseline.load(EXAMPLES / "analysis-baseline.json")
        suppressed = baseline.apply(report)
        assert not suppressed.unsuppressed(), [
            d.render() for d in suppressed.unsuppressed()
        ]

    def test_paper_internet_clean_without_baseline(self):
        report = analyze_example("paper_internet")
        assert len(report) == 0, [d.render() for d in report]
