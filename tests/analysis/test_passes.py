"""Per-pass unit tests: each seeded defect triggers its diagnostic.

Every fixture here is a minimal specification seeded with exactly one
defect (NM103's extension fixture seeds two, one per dead-entry kind),
and each test asserts the pass reports it — and nothing else — with a
real source span.  A final suite asserts the five passes that are new
in the analysis framework stay silent on both paper examples.
"""

from pathlib import Path

import pytest

from repro.analysis import Severity
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.nmsl.extension import parse_extension

from tests.analysis.conftest import REGISTRY, analyze

BASE = """
process agent ::=
    supports mgmt.mib.system, mgmt.mib.ip;
end process agent.
system "server.example" ::=
    cpu sparc;
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agent;
end system "server.example".
"""


def only_finding(report, code):
    assert len(report) == 1, [d.render() for d in report]
    (diagnostic,) = report.diagnostics
    assert diagnostic.code == code
    assert diagnostic.location.line > 0
    assert diagnostic.location.column > 0
    assert diagnostic.location.filename == "fixture.nmsl"
    return diagnostic


class TestHygienePasses:
    def test_nm101_unused_process(self):
        report = analyze(
            BASE
            + "process ghost ::= supports mgmt.mib.udp; end process ghost.",
            codes=["NM101"],
        )
        diagnostic = only_finding(report, "NM101")
        assert diagnostic.subject == "ghost"
        assert diagnostic.severity is Severity.WARNING

    def test_nm102_unmanaged_element(self):
        text = BASE + """
system "dumb.example" ::=
    cpu z80;
    interface p0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys firmware version 1;
    supports mgmt.mib.interfaces;
end system "dumb.example".
"""
        report = analyze(text, codes=["NM102"])
        diagnostic = only_finding(report, "NM102")
        assert diagnostic.subject == "dumb.example"


class TestNM103DeadExtensionEntries:
    EXTENSION = """
extension billing;
keyword billing in process;
keyword ledger in organization;
output acct for process.exports emit "x";
"""
    SPEC = """
process p ::= supports mgmt.mib; billing 5; end process p.
system "h.example" ::=
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib; process p;
end system "h.example".
"""

    def test_two_dead_entries(self):
        extension = parse_extension(self.EXTENSION)
        report = analyze(
            self.SPEC,
            codes=["NM103"],
            extensions=(extension,),
            extension_files=("billing.nmslx",),
        )
        assert len(report) == 2, [d.render() for d in report]
        messages = " / ".join(d.message for d in report.diagnostics)
        # One per seeded defect: a keyword for an unknown decltype, and
        # a clause action bound to a base-handled keyword.
        assert "ledger" in messages
        assert "exports" in messages
        assert all(d.code == "NM103" for d in report.diagnostics)
        assert all(
            d.location.filename == "billing.nmslx"
            for d in report.diagnostics
        )

    def test_live_extension_clean(self):
        extension = parse_extension(
            "extension billing;\n"
            "keyword billing in process;\n"
            'output acct for process.billing emit "x";\n'
        )
        report = analyze(
            self.SPEC,
            codes=["NM103"],
            extensions=(extension,),
            extension_files=("billing.nmslx",),
        )
        assert len(report) == 0, [d.render() for d in report]


class TestPermissionPasses:
    def test_nm201_unused_permission(self):
        text = BASE.replace(
            "end process agent.",
            '    exports mgmt.mib.ip to "nowhere-domain"\n'
            "        access ReadOnly frequency >= 5 minutes;\n"
            "end process agent.",
        )
        report = analyze(text, codes=["NM201"], strict=False)
        diagnostic = only_finding(report, "NM201")
        assert diagnostic.subject == "process agent"
        assert diagnostic.severity is Severity.WARNING

    def test_nm202_overbroad_grant(self):
        text = BASE.replace(
            "end process agent.",
            '    exports mgmt.mib.ip to "public"\n'
            "        access ReadWrite frequency >= 5 minutes;\n"
            "end process agent.",
        )
        report = analyze(text, codes=["NM202"])
        diagnostic = only_finding(report, "NM202")
        assert diagnostic.severity is Severity.ERROR

    def test_nm203_shadowed_permission(self):
        report = analyze(
            """
process agent ::=
    supports mgmt.mib;
    exports mgmt.mib.system to clients access ReadOnly frequency >= 10 minutes;
    exports mgmt.mib to clients access ReadOnly frequency >= 5 minutes;
end process agent.
system "host.example" ::=
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process agent;
end system "host.example".
domain clients ::= system host.example; end domain clients.
""",
            codes=["NM203"],
        )
        diagnostic = only_finding(report, "NM203")
        assert "mgmt.mib.system" in diagnostic.message
        assert diagnostic.severity is Severity.WARNING

    def test_nm203_distinct_grants_not_shadowed(self):
        # Different grantees: neither grant dominates the other.
        report = analyze(
            """
process agent ::=
    supports mgmt.mib;
    exports mgmt.mib.system to clients access ReadOnly frequency >= 10 minutes;
    exports mgmt.mib.ip to others access ReadOnly frequency >= 5 minutes;
end process agent.
system "host.example" ::=
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process agent;
end system "host.example".
domain clients ::= system host.example; end domain clients.
domain others ::= domain clients; end domain others.
""",
            codes=["NM203"],
        )
        assert len(report) == 0, [d.render() for d in report]

    def test_nm204_transitive_overbroad_reach(self):
        report = analyze(
            """
process agent ::=
    supports mgmt.mib;
end process agent.
system "host.example" ::=
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process agent;
end system "host.example".
domain leaf ::= system host.example; end domain leaf.
domain umbrella ::=
    domain leaf;
    exports mgmt.mib.ip to "public" access ReadWrite;
end domain umbrella.
""",
            codes=["NM204"],
        )
        diagnostic = only_finding(report, "NM204")
        assert "umbrella" in diagnostic.subject
        assert "domain containment" in diagnostic.message
        assert diagnostic.severity is Severity.ERROR


class TestFrequencyAndTypePasses:
    def test_nm301_frequency_budget_overload(self):
        report = analyze(
            """
process agent ::=
    supports mgmt.mib;
    exports mgmt.mib to clients access ReadOnly;
end process agent.
process poller(Target: Process) ::=
    queries Target requests mgmt.mib.system frequency = 1 seconds;
end process poller.
system "slow.example" ::=
    interface sl0 net serial type slip speed 9600 bps;
    supports mgmt.mib;
    process agent;
end system "slow.example".
domain ops ::= system slow.example; end domain ops.
domain clients ::= process poller(slow.example); end domain clients.
""",
            codes=["NM301"],
        )
        diagnostic = only_finding(report, "NM301")
        assert "8192" in diagnostic.message
        assert "960" in diagnostic.message
        assert diagnostic.severity is Severity.ERROR

    def test_nm301_slow_poller_within_budget(self):
        report = analyze(
            """
process agent ::=
    supports mgmt.mib;
    exports mgmt.mib to clients access ReadOnly;
end process agent.
process poller(Target: Process) ::=
    queries Target requests mgmt.mib.system frequency >= 5 minutes;
end process poller.
system "slow.example" ::=
    interface sl0 net serial type slip speed 9600 bps;
    supports mgmt.mib;
    process agent;
end system "slow.example".
domain ops ::= system slow.example; end domain ops.
domain clients ::= process poller(slow.example); end domain clients.
""",
            codes=["NM301"],
        )
        assert len(report) == 0, [d.render() for d in report]

    def test_nm302_write_access_to_readonly_group(self):
        report = analyze(
            """
process agent ::=
    supports mgmt.mib;
    exports mgmt.mib to clients access Any;
end process agent.
process op(Target: Process) ::=
    queries Target executes mgmt.mib.icmp frequency infrequent;
end process op.
system "host.example" ::=
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib;
    process agent;
end system "host.example".
domain ops ::= system host.example; process op(host.example); end domain ops.
""",
            codes=["NM302"],
        )
        diagnostic = only_finding(report, "NM302")
        assert "mgmt.mib.icmp" in diagnostic.message
        assert diagnostic.severity is Severity.ERROR

    def test_nm302_write_to_writable_group_clean(self):
        report = analyze(
            """
process op(Target: Process) ::=
    queries Target executes mgmt.mib.ip frequency infrequent;
end process op.
""" + BASE.replace(
                "end system \"server.example\".",
                "end system \"server.example\".\n"
                "domain ops ::= system server.example; "
                "process op(server.example); end domain ops.",
            ),
            codes=["NM302"],
        )
        assert len(report) == 0, [d.render() for d in report]


class TestPaperExamplesStayClean:
    """The five new passes report nothing on the two paper examples."""

    NEW_CODES = ("NM103", "NM203", "NM204", "NM301", "NM302")

    @pytest.mark.parametrize("stem", ["campus", "paper_internet"])
    def test_no_new_pass_findings(self, stem):
        path = Path(__file__).parents[2] / "examples" / f"{stem}.nmsl"
        compiler = NmslCompiler(
            CompilerOptions(filename=str(path), register_codegen=False)
        )
        result = compiler.compile(path.read_text(encoding="utf-8"))
        assert result.ok
        report = REGISTRY.run(
            compiler.analysis_context(result), codes=self.NEW_CODES
        )
        assert len(report) == 0, [d.render() for d in report]
