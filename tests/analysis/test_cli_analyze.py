"""CLI tests for ``nmslc analyze`` and the deprecated ``--lint`` alias."""

import json
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES = Path(__file__).parents[2] / "examples"

WARNING_ONLY = """
process agent ::=
    supports mgmt.mib.system, mgmt.mib.ip;
end process agent.
process ghost ::= supports mgmt.mib.udp; end process ghost.
system "server.example" ::=
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agent;
end system "server.example".
"""

WITH_ERROR = """
process agent ::=
    supports mgmt.mib.system, mgmt.mib.ip;
    exports mgmt.mib.ip to "public" access ReadWrite frequency >= 5 minutes;
end process agent.
system "server.example" ::=
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agent;
end system "server.example".
"""


@pytest.fixture
def warning_file(tmp_path):
    path = tmp_path / "warn.nmsl"
    path.write_text(WARNING_ONLY)
    return path


@pytest.fixture
def error_file(tmp_path):
    path = tmp_path / "error.nmsl"
    path.write_text(WITH_ERROR)
    return path


class TestExitCodes:
    def test_warnings_only_exit_zero(self, warning_file, capsys):
        assert main(["analyze", str(warning_file)]) == 0
        out = capsys.readouterr().out
        assert "warning NM101" in out

    def test_errors_gate_exit_one(self, error_file, capsys):
        assert main(["analyze", str(error_file)]) == 1
        assert "error NM202" in capsys.readouterr().out

    def test_compile_failure_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.nmsl"
        bad.write_text("process broken ::= supports")
        assert main(["analyze", str(bad)]) == 2

    def test_missing_file_exit_two(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "none.nmsl")]) == 2

    def test_multiple_files_merge(self, warning_file, error_file, capsys):
        assert main(["analyze", str(warning_file), str(error_file)]) == 1
        out = capsys.readouterr().out
        assert "NM101" in out and "NM202" in out


class TestFormats:
    def test_sarif_format_valid(self, error_file, capsys):
        assert (
            main(["analyze", str(error_file), "--format", "sarif"]) == 1
        )
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        assert sarif["runs"][0]["results"]

    def test_json_format(self, warning_file, capsys):
        assert main(["analyze", str(warning_file), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "nmslc-analyze"

    def test_select(self, warning_file, capsys):
        assert (
            main(["analyze", str(warning_file), "--select", "NM301"]) == 0
        )
        assert "no analysis findings" in capsys.readouterr().out


class TestBaselineFlow:
    def test_write_then_gate_clean(self, error_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "analyze",
                    str(error_file),
                    "--baseline",
                    str(baseline),
                    "--write-baseline",
                ]
            )
            == 0
        )
        assert "wrote" in capsys.readouterr().err
        assert baseline.exists()
        # With the baseline applied, the same error no longer gates.
        assert (
            main(["analyze", str(error_file), "--baseline", str(baseline)])
            == 0
        )
        assert "(baselined)" in capsys.readouterr().out

    def test_write_baseline_requires_path(self, error_file, capsys):
        assert main(["analyze", str(error_file), "--write-baseline"]) == 2

    def test_repo_examples_gate_clean(self, capsys):
        assert (
            main(
                [
                    "analyze",
                    str(EXAMPLES / "campus.nmsl"),
                    str(EXAMPLES / "paper_internet.nmsl"),
                    "--baseline",
                    str(EXAMPLES / "analysis-baseline.json"),
                ]
            )
            == 0
        )


class TestLintAlias:
    def test_deprecation_warning_and_exit_zero(self, warning_file, capsys):
        assert main([str(warning_file), "--lint"]) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "NM101" in captured.out
