"""The rollout state machine: two-phase apply, retries, rollback."""

import pytest

from repro.asn1.types import Asn1Module
from repro.errors import DeliveryTimeout, RolloutError
from repro.mib.instances import InstanceStore
from repro.mib.mib1 import build_mib1
from repro.rollout import (
    RetryPolicy,
    RolloutCoordinator,
    RolloutState,
    config_fingerprint,
)
from repro.rollout.state import ElementRollout
from repro.snmp.agent import NMSL_CONFIG_APPLY, SnmpAgent
from repro.snmp.codec import decode_message
from repro.snmp.messages import PduType

CONF_OLD = """view v include mgmt.mib.system
community ops v ReadOnly min-interval 60
"""

CONF_NEW = """view v include mgmt.mib.system
community fleet v ReadOnly min-interval 30
"""

FAST = RetryPolicy(max_attempts=3, exchange_retries=1, base_backoff_s=0.1)


@pytest.fixture(scope="module")
def tree():
    return build_mib1()


def make_agent(tree, name="a"):
    store = InstanceStore(tree, module=Asn1Module())
    return SnmpAgent(name, store, tree=tree)


def plain_channel(agent):
    return lambda octets: agent.handle_octets(octets)


class TestHappyPath:
    def test_all_elements_committed(self, tree):
        agents = {name: make_agent(tree, name) for name in ("a", "b", "c")}
        coordinator = RolloutCoordinator(
            channels={n: plain_channel(agent) for n, agent in agents.items()},
            configs={n: CONF_NEW for n in agents},
            policy=FAST,
        )
        report = coordinator.run()
        assert report.complete
        assert report.committed() == ("a", "b", "c")
        assert report.dead_letter() == ()
        for record in report.elements.values():
            assert record.state is RolloutState.COMMITTED
            assert record.attempts == 1
            assert record.generation == 1
            assert [r.outcome for r in record.history] == ["ok"]
        for agent in agents.values():
            assert agent.policy.communities() == ("fleet",)
            assert agent.last_good_config == CONF_NEW

    def test_chunked_staging(self, tree):
        agent = make_agent(tree)
        coordinator = RolloutCoordinator(
            channels={"a": plain_channel(agent)},
            configs={"a": CONF_NEW},
            policy=FAST,
            chunk_size=7,
        )
        report = coordinator.run()
        assert report.complete
        assert agent.policy.communities() == ("fleet",)

    def test_generation_advances_per_campaign(self, tree):
        agent = make_agent(tree)
        channels = {"a": plain_channel(agent)}
        RolloutCoordinator(channels, {"a": CONF_OLD}, policy=FAST).run()
        report = RolloutCoordinator(channels, {"a": CONF_NEW}, policy=FAST).run()
        assert report.elements["a"].generation == 2

    def test_empty_campaign(self):
        report = RolloutCoordinator(channels={}, configs={}).run()
        assert report.complete
        assert report.elements == {}


class TestRetry:
    def test_corrupted_chunk_caught_by_fingerprint_then_retried(self, tree):
        agent = make_agent(tree)
        state = {"corrupted": False}

        def channel(octets):
            message = decode_message(octets)
            binding = message.pdu.bindings[0]
            # Corrupt the first staged chunk of the first attempt only.
            if (
                not state["corrupted"]
                and message.pdu.pdu_type is PduType.SET_REQUEST
                and isinstance(binding.value, bytes)
                and binding.value.startswith(b"view")
            ):
                state["corrupted"] = True
                agent._pending_config.append(b"garbage")
                return agent.handle_octets(octets)
            return agent.handle_octets(octets)

        coordinator = RolloutCoordinator(
            channels={"a": channel}, configs={"a": CONF_NEW}, policy=FAST
        )
        report = coordinator.run()
        record = report.elements["a"]
        assert record.state is RolloutState.COMMITTED
        assert record.attempts == 2
        assert record.history[0].phase == "verify"
        assert "fingerprint mismatch" in record.history[0].outcome
        assert agent.policy.communities() == ("fleet",)

    def test_transient_timeouts_absorbed_by_retransmission(self, tree):
        agent = make_agent(tree)
        drops = {"remaining": 1}

        def flaky(octets):
            if drops["remaining"]:
                drops["remaining"] -= 1
                raise DeliveryTimeout("lost")
            return agent.handle_octets(octets)

        report = RolloutCoordinator(
            channels={"a": flaky}, configs={"a": CONF_NEW}, policy=FAST
        ).run()
        record = report.elements["a"]
        assert record.state is RolloutState.COMMITTED
        assert record.attempts == 1  # absorbed below the attempt level
        assert record.history[0].exchanges > 5

    def test_timeouts_cost_more_than_successes(self, tree):
        agent = make_agent(tree)
        drops = {"remaining": 2}

        def flaky(octets):
            if drops["remaining"]:
                drops["remaining"] -= 1
                raise DeliveryTimeout("lost")
            return agent.handle_octets(octets)

        clean = RolloutCoordinator(
            channels={"a": plain_channel(make_agent(tree))},
            configs={"a": CONF_NEW},
            policy=FAST,
        ).run()
        dirty = RolloutCoordinator(
            channels={"a": flaky}, configs={"a": CONF_NEW}, policy=FAST
        ).run()
        assert dirty.duration_s > clean.duration_s


class TestRollback:
    def make_apply_blocker(self, agent, blocked_text):
        """A channel that drops every apply of *blocked_text* (only)."""
        fingerprint = config_fingerprint(blocked_text)

        def channel(octets):
            message = decode_message(octets)
            if (
                message.pdu.pdu_type is PduType.SET_REQUEST
                and message.pdu.bindings[0].oid == NMSL_CONFIG_APPLY
                and agent.staged_digest() == fingerprint
            ):
                raise DeliveryTimeout("apply dropped")
            return agent.handle_octets(octets)

        return channel

    def test_exhaustion_rolls_back_to_last_known_good(self, tree):
        agent = make_agent(tree)
        agent.load_config(CONF_OLD, tree)
        report = RolloutCoordinator(
            channels={"a": self.make_apply_blocker(agent, CONF_NEW)},
            configs={"a": CONF_NEW},
            policy=FAST,
            last_known_good={"a": CONF_OLD},
        ).run()
        record = report.elements["a"]
        assert record.state is RolloutState.ROLLED_BACK
        assert record.attempts == FAST.max_attempts
        assert report.dead_letter() == ("a",)
        assert record.history[-1].phase == "rollback"
        assert record.history[-1].outcome == "ok"
        # The agent is back on the old configuration, atomically.
        assert agent.policy.communities() == ("ops",)
        assert agent.last_good_config == CONF_OLD

    def test_no_last_known_good_means_plain_failure(self, tree):
        agent = make_agent(tree)
        report = RolloutCoordinator(
            channels={"a": self.make_apply_blocker(agent, CONF_NEW)},
            configs={"a": CONF_NEW},
            policy=FAST,
        ).run()
        record = report.elements["a"]
        assert record.state is RolloutState.FAILED
        assert report.dead_letter() == ("a",)
        assert all(r.phase != "rollback" for r in record.history)

    def test_failed_rollback_stays_failed(self, tree):
        agent = make_agent(tree)

        def dead(octets):
            raise DeliveryTimeout("black hole")

        report = RolloutCoordinator(
            channels={"a": dead},
            configs={"a": CONF_NEW},
            policy=FAST,
            last_known_good={"a": CONF_OLD},
        ).run()
        record = report.elements["a"]
        assert record.state is RolloutState.FAILED
        rollbacks = [r for r in record.history if r.phase == "rollback"]
        assert len(rollbacks) == FAST.rollback_attempts
        assert all(r.outcome != "ok" for r in rollbacks)


class TestConcurrencyAndDeterminism:
    def test_jobs_one_serialises_elements(self, tree):
        contacts = []
        channels = {}
        for name in ("a", "b", "c"):
            agent = make_agent(tree, name)

            def send(octets, _name=name, _agent=agent):
                contacts.append(_name)
                return _agent.handle_octets(octets)

            channels[name] = send
        RolloutCoordinator(
            channels, {n: CONF_NEW for n in channels}, policy=FAST, jobs=1
        ).run()
        # With one slot, all of a's exchanges precede b's, etc.
        boundaries = [contacts.index(n) for n in ("a", "b", "c")]
        assert boundaries == sorted(boundaries)
        assert contacts == sorted(contacts)

    def test_jobs_bound_respected_under_backoff(self, tree):
        """With 2 slots and a slow first element, the third element is
        only admitted after one of the first two finishes."""
        first_contact = []
        channels = {}
        for name in ("a", "b", "c"):
            agent = make_agent(tree, name)

            def send(octets, _name=name, _agent=agent):
                if _name not in first_contact:
                    first_contact.append(_name)
                if _name == "a":
                    raise DeliveryTimeout("a is unreachable")
                return _agent.handle_octets(octets)

            channels[name] = send
        RolloutCoordinator(
            channels, {n: CONF_NEW for n in channels}, policy=FAST, jobs=2
        ).run()
        assert first_contact[:2] == ["a", "b"]

    def test_report_identical_across_repeats(self, tree):
        def run_once():
            agents = {n: make_agent(tree, n) for n in ("a", "b", "c", "d")}
            drops = {"budget": 3}

            def make_channel(agent):
                def send(octets):
                    if drops["budget"]:
                        drops["budget"] -= 1
                        raise DeliveryTimeout("lost")
                    return agent.handle_octets(octets)

                return send

            return RolloutCoordinator(
                channels={n: make_channel(a) for n, a in agents.items()},
                configs={n: CONF_NEW for n in agents},
                policy=FAST,
                jobs=2,
                seed=77,
            ).run()

        assert run_once().to_json() == run_once().to_json()


class TestGuards:
    def test_missing_channel_rejected(self, tree):
        with pytest.raises(RolloutError, match="no delivery channel"):
            RolloutCoordinator(channels={}, configs={"a": CONF_NEW})

    def test_bad_jobs_rejected(self, tree):
        agent = make_agent(tree)
        with pytest.raises(RolloutError, match="jobs"):
            RolloutCoordinator(
                channels={"a": plain_channel(agent)},
                configs={"a": CONF_NEW},
                jobs=0,
            )

    def test_illegal_transition_rejected(self):
        record = ElementRollout("a", state=RolloutState.COMMITTED)
        with pytest.raises(RolloutError, match="illegal transition"):
            RolloutCoordinator._move(record, RolloutState.PENDING)
