"""Seeded chaos suite: the rollout must converge under injected faults.

The acceptance scenario: with 20% message loss, one agent crashed
mid-apply, and one stalled past the timeout, the coordinator leaves every
reachable agent at the target configuration generation, the crashed
agent's last-known-good configuration is restored on restart, the stalled
agent lands in the dead-letter list — and the entire run is bit-identical
across repeats with the same seed.
"""

import pytest

from repro.errors import AgentDownError, SimulationError
from repro.netsim.faults import FaultInjector, FaultSpec
from repro.netsim.processes import ManagementRuntime
from repro.nmsl.compiler import NmslCompiler
from repro.rollout import RetryPolicy, RolloutState
from repro.workloads.scenarios import campus_internet

V2_MARKER = "# generation-2 rollout marker\n"
CHAOS_POLICY = RetryPolicy(max_attempts=8, exchange_retries=2)


@pytest.fixture(scope="module")
def compiler():
    return NmslCompiler()


def make_runtime(compiler):
    """A campus with a baseline configuration committed on every agent."""
    runtime = ManagementRuntime(compiler, compiler.compile(campus_internet()))
    runtime.install_configuration()
    return runtime


def v2_configs(runtime):
    return {
        target: text + "\n" + V2_MARKER
        for target, text in runtime.rollout_targets().items()
    }


def acceptance_injector(targets, seed):
    """20% loss everywhere; first target crashes mid-apply, second wedges."""
    crashed, stalled = targets[0], targets[1]
    return (
        FaultInjector(
            seed=seed,
            default=FaultSpec(loss_rate=0.2),
            per_element={
                crashed: FaultSpec(loss_rate=0.2, crash_after=4),
                stalled: FaultSpec(stall_after=0),
            },
        ),
        crashed,
        stalled,
    )


def run_acceptance(compiler, seed):
    runtime = make_runtime(compiler)
    targets = sorted(runtime.rollout_targets())
    injector, crashed, stalled = acceptance_injector(targets, seed)
    report = runtime.rollout(
        policy=CHAOS_POLICY,
        jobs=4,
        seed=seed,
        injector=injector,
        configs=v2_configs(runtime),
    )
    return runtime, report, crashed, stalled


class TestAcceptanceScenario:
    SEED = 42

    def test_reachable_agents_reach_target_generation(self, compiler):
        runtime, report, crashed, stalled = run_acceptance(compiler, self.SEED)
        reachable = sorted(set(report.elements) - {crashed, stalled})
        assert report.committed() == tuple(reachable)
        for target in reachable:
            agent = runtime.target_agent(target)
            assert agent.configs_applied == 1
            assert agent.last_good_config.endswith(V2_MARKER)
            assert report.elements[target].generation == 1

    def test_crashed_agent_restores_last_known_good_on_restart(self, compiler):
        runtime, report, crashed, _stalled = run_acceptance(compiler, self.SEED)
        agent = runtime.target_agent(crashed)
        baseline = runtime.rollout_targets()[crashed]
        assert agent.crashed
        with pytest.raises(AgentDownError):
            agent.handle_octets(b"\x30\x00")
        agent.restart()
        assert not agent.crashed
        # The half-staged v2 text is gone; the committed baseline survives.
        assert agent.last_good_config == baseline
        assert agent.staged_digest() == __import__("hashlib").sha256(
            b""
        ).hexdigest().encode("ascii")
        assert agent.policy.communities() == (
            runtime.target_agent(crashed).policy.communities()
        )

    def test_crashed_and_stalled_agents_dead_lettered(self, compiler):
        _runtime, report, crashed, stalled = run_acceptance(compiler, self.SEED)
        assert set(report.dead_letter()) == {crashed, stalled}
        assert report.elements[crashed].state in (
            RolloutState.FAILED,
            RolloutState.ROLLED_BACK,
        )
        stalled_record = report.elements[stalled]
        assert stalled_record.state is RolloutState.FAILED
        assert stalled_record.attempts == CHAOS_POLICY.max_attempts
        assert "stalled" in stalled_record.history[0].outcome

    def test_run_is_bit_identical_across_repeats(self, compiler):
        _r1, first, _c1, _s1 = run_acceptance(compiler, self.SEED)
        _r2, second, _c2, _s2 = run_acceptance(compiler, self.SEED)
        assert first.to_json() == second.to_json()

    def test_different_seed_differs(self, compiler):
        _r1, first, _c1, _s1 = run_acceptance(compiler, self.SEED)
        _r2, second, _c2, _s2 = run_acceptance(compiler, 43)
        assert first.to_json() != second.to_json()


class TestLossOnly:
    @pytest.mark.parametrize("seed", [7, 23, 1989])
    def test_converges_under_20_percent_loss(self, compiler, seed):
        runtime = make_runtime(compiler)
        report = runtime.rollout(
            policy=CHAOS_POLICY,
            jobs=4,
            seed=seed,
            injector=FaultInjector(seed=seed, default=FaultSpec(loss_rate=0.2)),
            configs=v2_configs(runtime),
        )
        assert report.complete, report.render()
        for target in report.elements:
            agent = runtime.target_agent(target)
            assert agent.last_good_config.endswith(V2_MARKER)


class TestCorruptionAndDuplication:
    def test_fingerprint_defeats_corruption_and_duplicates(self, compiler):
        runtime = make_runtime(compiler)
        injector = FaultInjector(
            seed=11,
            default=FaultSpec(corrupt_rate=0.25, duplicate_rate=0.25),
        )
        report = runtime.rollout(
            policy=CHAOS_POLICY,
            jobs=4,
            seed=11,
            injector=injector,
            configs=v2_configs(runtime),
        )
        assert report.complete, report.render()
        injected_kinds = {
            kind
            for counts in injector.injected.values()
            for kind in counts
        }
        assert injected_kinds & {"corrupt", "duplicate"}
        # No agent ever committed a corrupted text.
        for target in report.elements:
            agent = runtime.target_agent(target)
            assert agent.last_good_config == v2_configs(runtime)[target]


class TestCrashRestartMidRollout:
    def test_agent_restarting_during_campaign_converges(self, compiler):
        """A crash that heals within the retry budget still converges —
        the restarted agent loses its staged chunks but the next attempt
        restages from scratch."""
        runtime = make_runtime(compiler)
        targets = sorted(runtime.rollout_targets())
        victim = targets[0]
        injector = FaultInjector(
            seed=5,
            per_element={
                victim: FaultSpec(crash_after=4, restart_after=2)
            },
        )
        report = runtime.rollout(
            policy=CHAOS_POLICY,
            jobs=4,
            seed=5,
            injector=injector,
            configs=v2_configs(runtime),
        )
        assert report.complete, report.render()
        record = report.elements[victim]
        assert record.attempts > 1
        assert runtime.target_agent(victim).last_good_config.endswith(
            V2_MARKER
        )
        assert injector.injected[victim]["crash"] == 1
        assert injector.injected[victim]["restart"] == 1


class TestProtocolInstallSurfacesFailures:
    def test_crashed_agent_fails_install_with_element_named(self, compiler):
        runtime = ManagementRuntime(
            compiler, compiler.compile(campus_internet())
        )
        victim_id, victim = sorted(runtime.agents.items())[0]
        victim.crash()
        with pytest.raises(SimulationError, match="protocol install failed"):
            try:
                runtime.install_configuration(via_protocol=True)
            except SimulationError as exc:
                assert victim_id in str(exc)
                raise

    def test_healthy_campus_installs_and_counts(self, compiler):
        runtime = ManagementRuntime(
            compiler, compiler.compile(campus_internet())
        )
        assert runtime.install_configuration(via_protocol=True) == 5
