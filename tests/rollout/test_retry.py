"""RetryPolicy: budgets, exponential backoff, deterministic jitter."""

import pytest

from repro.errors import RolloutError
from repro.rollout import RetryPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        RetryPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"exchange_retries": -1},
            {"timeout_s": 0.0},
            {"base_backoff_s": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(RolloutError):
            RetryPolicy(**kwargs)

    def test_attempt_numbers_are_one_based(self):
        with pytest.raises(RolloutError):
            RetryPolicy().backoff(0)


class TestBackoff:
    def test_exponential_growth(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, multiplier=2.0, jitter=0.0, max_backoff_s=100.0
        )
        assert policy.backoff(1) == 1.0
        assert policy.backoff(2) == 2.0
        assert policy.backoff(3) == 4.0
        assert policy.backoff(4) == 8.0

    def test_capped_at_max_backoff(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, multiplier=10.0, jitter=0.0, max_backoff_s=5.0
        )
        assert policy.backoff(5) == 5.0

    def test_jitter_is_bounded(self):
        policy = RetryPolicy(base_backoff_s=1.0, multiplier=1.0, jitter=0.25)
        for attempt in range(1, 20):
            delay = policy.backoff(attempt, key="elem", seed=3)
            assert 1.0 <= delay < 1.25

    def test_jitter_deterministic_per_seed_key_attempt(self):
        policy = RetryPolicy(jitter=0.5)
        assert policy.backoff(2, key="a", seed=9) == policy.backoff(
            2, key="a", seed=9
        )

    def test_jitter_varies_across_keys_and_seeds(self):
        policy = RetryPolicy(jitter=0.5)
        baseline = policy.backoff(2, key="a", seed=9)
        assert policy.backoff(2, key="b", seed=9) != baseline
        assert policy.backoff(2, key="a", seed=10) != baseline

    def test_schedule_has_one_gap_per_retry(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.0)
        schedule = policy.schedule(key="x", seed=1)
        assert len(schedule) == 4
        assert list(schedule) == sorted(schedule)  # monotone growth
