"""RetryPolicy: budgets, exponential backoff, deterministic jitter."""

import pytest

from repro.errors import RolloutError
from repro.rollout import RetryPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        RetryPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"exchange_retries": -1},
            {"timeout_s": 0.0},
            {"base_backoff_s": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(RolloutError):
            RetryPolicy(**kwargs)

    def test_attempt_numbers_are_one_based(self):
        with pytest.raises(RolloutError):
            RetryPolicy().backoff(0)


class TestBackoff:
    def test_exponential_growth(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, multiplier=2.0, jitter=0.0, max_backoff_s=100.0
        )
        assert policy.backoff(1) == 1.0
        assert policy.backoff(2) == 2.0
        assert policy.backoff(3) == 4.0
        assert policy.backoff(4) == 8.0

    def test_capped_at_max_backoff(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, multiplier=10.0, jitter=0.0, max_backoff_s=5.0
        )
        assert policy.backoff(5) == 5.0

    def test_jitter_is_bounded(self):
        policy = RetryPolicy(base_backoff_s=1.0, multiplier=1.0, jitter=0.25)
        for attempt in range(1, 20):
            delay = policy.backoff(attempt, key="elem", seed=3)
            assert 1.0 <= delay < 1.25

    def test_jitter_deterministic_per_seed_key_attempt(self):
        policy = RetryPolicy(jitter=0.5)
        assert policy.backoff(2, key="a", seed=9) == policy.backoff(
            2, key="a", seed=9
        )

    def test_jitter_varies_across_keys_and_seeds(self):
        policy = RetryPolicy(jitter=0.5)
        baseline = policy.backoff(2, key="a", seed=9)
        assert policy.backoff(2, key="b", seed=9) != baseline
        assert policy.backoff(2, key="a", seed=10) != baseline

    def test_schedule_has_one_gap_per_retry(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.0)
        schedule = policy.schedule(key="x", seed=1)
        assert len(schedule) == 4
        assert list(schedule) == sorted(schedule)  # monotone growth


class TestEdgeCases:
    def test_single_attempt_policy_has_an_empty_schedule(self):
        policy = RetryPolicy(max_attempts=1)
        assert policy.schedule(key="x", seed=1) == ()

    def test_huge_attempt_numbers_stay_at_the_ceiling(self):
        policy = RetryPolicy(
            base_backoff_s=0.5, multiplier=2.0, jitter=0.0, max_backoff_s=30.0
        )
        assert policy.backoff(10_000) == 30.0

    def test_jittered_backoff_never_exceeds_ceiling_plus_jitter(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, multiplier=3.0, jitter=0.2, max_backoff_s=10.0
        )
        for attempt in range(1, 50):
            delay = policy.backoff(attempt, key="k", seed=5)
            assert delay < 10.0 * 1.2

    def test_zero_base_backoff_stays_zero_despite_jitter(self):
        policy = RetryPolicy(base_backoff_s=0.0, jitter=0.5)
        assert policy.backoff(1, key="k", seed=5) == 0.0
        assert policy.backoff(7, key="k", seed=5) == 0.0

    def test_jitter_is_a_pure_function_not_instance_state(self):
        first = RetryPolicy(jitter=0.5)
        second = RetryPolicy(jitter=0.5)
        # Draining one policy's "sequence" must not shift the other's.
        for attempt in range(1, 10):
            first.backoff(attempt, key="a", seed=1)
        assert first.backoff(3, key="a", seed=1) == second.backoff(
            3, key="a", seed=1
        )

    def test_attempt_cap_exhaustion_dead_letters_and_rolls_back(self):
        from repro.asn1.types import Asn1Module
        from repro.errors import DeliveryTimeout
        from repro.mib.instances import InstanceStore
        from repro.mib.mib1 import build_mib1
        from repro.rollout import RolloutCoordinator, RolloutState
        from repro.snmp.agent import SnmpAgent

        tree = build_mib1()
        store = InstanceStore(tree, module=Asn1Module())
        agent = SnmpAgent("a", store, tree=tree)
        calls = {"n": 0}

        def black_hole(octets):
            calls["n"] += 1
            raise DeliveryTimeout("void")

        policy = RetryPolicy(
            max_attempts=3,
            exchange_retries=1,
            base_backoff_s=0.1,
            rollback_attempts=2,
        )
        report = RolloutCoordinator(
            channels={"a": black_hole},
            configs={
                "a": "view v include mgmt.mib.system\n"
                "community fleet v ReadOnly min-interval 30\n"
            },
            last_known_good={
                "a": "view v include mgmt.mib.system\n"
                "community ops v ReadOnly min-interval 60\n"
            },
            policy=policy,
        ).run()
        record = report.elements["a"]
        assert record.state is RolloutState.FAILED
        assert record.attempts == policy.max_attempts
        assert report.dead_letter() == ("a",)
        # Each delivery attempt costs 1 + exchange_retries transmissions
        # of the first exchange; the rollback budget spends on top.
        forward = policy.max_attempts * (1 + policy.exchange_retries)
        assert calls["n"] > forward
