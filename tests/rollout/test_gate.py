"""The relational rollout gate: veto, waiver, and impacted-only staging."""

import pytest

from repro.analysis import Waiver, relational_report
from repro.consistency.impact import ImpactAnalyzer
from repro.errors import RolloutVetoed
from repro.nmsl.compiler import CompilerOptions, NmslCompiler
from repro.rollout import BLOCKING_CODES, RolloutGate

SPEC = """
process agent ::=
    supports mgmt.mib.system, mgmt.mib.ip;
end process agent.
process watcher(T: Process) ::=
    queries T requests mgmt.mib.ip frequency >= 10 minutes;
end process watcher.
system "server.example" ::=
    cpu sparc;
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agent;
end system "server.example".
system "noc.example" ::=
    cpu sparc;
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agent;
end system "noc.example".
system "idle.example" ::=
    cpu sparc;
    interface ie0 net lan type ethernet-csmacd speed 10000000 bps;
    opsys SunOS version 4.0.1;
    supports mgmt.mib.system, mgmt.mib.ip;
    process agent;
end system "idle.example".
domain servers ::=
    system server.example;
    exports mgmt.mib.ip to clients access {access} frequency >= 5 minutes;
end domain servers.
domain clients ::=
    system noc.example;
    process watcher(server.example);
end domain clients.
domain idle ::=
    system idle.example;
end domain idle.
"""

SPEC_A = SPEC.format(access="ReadOnly")
SPEC_WIDENED = SPEC.format(access="ReadWrite")


def build_gate(text_a, text_b, waiver=None):
    compiler = NmslCompiler(CompilerOptions(register_codegen=False))
    spec_a = compiler.compile(text_a, strict=False).specification
    spec_b = compiler.compile(text_b, strict=False).specification
    analyzer = ImpactAnalyzer(compiler.tree, tags=())
    analyzer.baseline(spec_a)
    impact = analyzer.analyze(spec_b)
    report = relational_report(impact)
    if waiver is not None:
        report = waiver.apply(report)
    return impact, report, RolloutGate.from_impact(impact, report)


class TestGate:
    def test_unwaived_widening_vetoes(self):
        _, report, gate = build_gate(SPEC_A, SPEC_WIDENED)
        assert not gate.permits()
        with pytest.raises(RolloutVetoed, match="NM401"):
            gate.check()
        assert {d.code for d in gate.blocking} <= set(BLOCKING_CODES)

    def test_waiver_unblocks(self):
        _, report, _ = build_gate(SPEC_A, SPEC_WIDENED)
        waiver = Waiver.from_gating(report)
        _, _, gate = build_gate(SPEC_A, SPEC_WIDENED, waiver=waiver)
        assert gate.permits()
        gate.check()  # no raise

    def test_targets_filtered_to_impacted_elements(self):
        _, _, gate = build_gate(SPEC_A, SPEC_WIDENED)
        configs = {
            "server.example": "cfg",
            "server.example/agent@server.example#0": "cfg",
            "idle.example": "cfg",
            "idle.example/agent@idle.example#0": "cfg",
        }
        staged = gate.filter_targets(configs)
        # Only the widened domain's member is staged; the untouched
        # domain's element (and its per-instance target) is skipped.
        assert set(staged) == {
            "server.example",
            "server.example/agent@server.example#0",
        }

    def test_empty_delta_stages_nothing(self):
        impact, report, gate = build_gate(SPEC_A, SPEC_A)
        assert impact.is_empty()
        assert gate.permits()
        assert gate.filter_targets({"server.example": "cfg"}) == {}


class TestCoordinatorIntegration:
    def _runtime(self, text):
        from repro.netsim.processes import ManagementRuntime

        compiler = NmslCompiler(CompilerOptions())
        result = compiler.compile(text, strict=False)
        assert not result.report.errors
        return ManagementRuntime(compiler, result)

    def test_vetoed_campaign_never_touches_an_element(self):
        runtime = self._runtime(SPEC_WIDENED)
        _, _, gate = build_gate(SPEC_A, SPEC_WIDENED)
        with pytest.raises(RolloutVetoed):
            runtime.rollout(gate=gate)

    def test_gated_campaign_stages_only_impacted(self):
        runtime = self._runtime(SPEC_WIDENED)
        _, report, _ = build_gate(SPEC_A, SPEC_WIDENED)
        waiver = Waiver.from_gating(report)
        _, _, gate = build_gate(SPEC_A, SPEC_WIDENED, waiver=waiver)
        full_targets = set(runtime.rollout_targets())
        rolled = runtime.rollout(gate=gate)
        assert rolled.complete
        touched = set(rolled.elements)
        assert touched  # the impacted subset shipped...
        assert touched < full_targets  # ...and it is a strict subset
        for target in touched:
            assert target.partition("/")[0] in gate.impacted_elements
