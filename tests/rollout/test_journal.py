"""The durable campaign journal and crash-resume.

Acceptance criteria exercised here:

* a finished journal replays to a byte-identical ``RolloutReport``;
* killing the coordinator after the N-th journal append and resuming
  from the journal yields a byte-identical report at **every** crash
  point of a clean campaign (the surviving agents keep their state —
  only the coordinator process died);
* under lossy chaos the same holds except at provably *in-doubt* crash
  points (an apply intent was journaled but no apply success), where
  resume must probe the element live and thereby consumes fault RNG;
* resume never applies a configuration twice — each agent ends at the
  same generation as the uninterrupted baseline;
* a journal from a different campaign (seed, configs, policy) is
  rejected.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asn1.types import Asn1Module
from repro.errors import CoordinatorCrash, JournalError
from repro.mib.instances import InstanceStore
from repro.mib.mib1 import build_mib1
from repro.netsim.faults import FaultInjector, FaultSpec
from repro.rollout import (
    JournalState,
    RetryPolicy,
    RolloutCoordinator,
    RolloutJournal,
)
from repro.snmp.agent import SnmpAgent

CONF_NEW = """view v include mgmt.mib.system
community fleet v ReadOnly min-interval 30
"""

FAST = RetryPolicy(max_attempts=3, exchange_retries=1, base_backoff_s=0.1)

NAMES = ("a", "b", "c")


@pytest.fixture(scope="module")
def tree():
    return build_mib1()


def fresh_fleet(tree, spec=None, seed=7):
    """Three agents, optionally behind per-element chaos."""
    agents = {}
    channels = {}
    for name in NAMES:
        store = InstanceStore(tree, module=Asn1Module())
        agent = SnmpAgent(name, store, tree=tree)
        send = agent.handle_octets
        if spec is not None:
            injector = FaultInjector(seed=seed, per_element={name: spec})
            send = injector.wrap(
                name,
                send,
                crash_hook=agent.crash,
                restart_hook=agent.restart,
            )
        agents[name] = agent
        channels[name] = send
    return agents, channels


def coordinator_for(channels, journal=None, crash_after=None, **overrides):
    kwargs = dict(
        channels=channels,
        configs={n: CONF_NEW for n in NAMES},
        policy=FAST,
        jobs=2,
        seed=42,
        journal=journal,
        crash_coordinator_after=crash_after,
    )
    kwargs.update(overrides)
    return RolloutCoordinator(**kwargs)


def in_doubt_points(journal):
    """Crash points whose interrupted attempt has an unresolved apply."""
    points = set()
    for crash_at in range(1, len(journal)):
        state = JournalState.from_records(journal.records[:crash_at])
        for element in state.elements.values():
            interrupted = element.interrupted
            if interrupted is None or not interrupted.apply_intent:
                continue
            applied = any(
                exchange.get("op") == "apply"
                and exchange.get("outcome") == "ok"
                for exchange in interrupted.exchanges
            )
            if not applied:
                points.add(crash_at)
    return points


def sweep(tree, spec):
    """Crash at every journal event; resume; compare against baseline."""
    base_journal = RolloutJournal()
    baseline = coordinator_for(
        fresh_fleet(tree, spec)[1], journal=base_journal
    ).run()
    base_json = baseline.to_json()

    mismatches = []
    for crash_at in range(1, len(base_journal)):
        agents, channels = fresh_fleet(tree, spec)
        journal = RolloutJournal()
        with pytest.raises(CoordinatorCrash):
            coordinator_for(channels, journal=journal, crash_after=crash_at).run()
        resumed = coordinator_for(channels).resume(journal)
        if resumed.to_json() != base_json:
            mismatches.append(crash_at)
        for name, record in resumed.elements.items():
            # No duplicate apply: the agent sits exactly at the reported
            # generation, however the campaign was interrupted.
            assert agents[name].configs_applied == record.generation, (
                f"crash_at={crash_at}: {name} applied "
                f"{agents[name].configs_applied} times, reported "
                f"generation {record.generation}"
            )
    return baseline, base_journal, mismatches


class TestRoundTrip:
    def test_finished_journal_replays_to_identical_report(self, tree):
        journal = RolloutJournal()
        report = coordinator_for(fresh_fleet(tree)[1], journal=journal).run()
        state = journal.replay()
        assert state.finished
        assert state.report().to_json() == report.to_json()

    def test_file_backed_journal_survives_reload(self, tree, tmp_path):
        path = tmp_path / "campaign.jsonl"
        journal = RolloutJournal(path=path, fsync=True)
        report = coordinator_for(fresh_fleet(tree)[1], journal=journal).run()
        journal.close()
        reloaded = RolloutJournal.load(path)
        assert reloaded.replay().report().to_json() == report.to_json()

    def test_unknown_record_types_are_skipped(self, tree):
        journal = RolloutJournal()
        report = coordinator_for(fresh_fleet(tree)[1], journal=journal).run()
        journal.records.insert(1, {"type": "future-extension", "x": 1})
        assert journal.replay().report().to_json() == report.to_json()


class TestCrashResume:
    def test_clean_campaign_resumes_byte_identical_everywhere(self, tree):
        baseline, journal, mismatches = sweep(tree, spec=None)
        assert baseline.complete
        assert len(journal) >= 10  # well over the three required points
        assert mismatches == []

    def test_lossy_campaign_resumes_identical_outside_in_doubt(self, tree):
        spec = FaultSpec(loss_rate=0.3)
        baseline, journal, mismatches = sweep(tree, spec)
        assert baseline.complete
        unexplained = [
            point
            for point in mismatches
            if point not in in_doubt_points(journal)
        ]
        assert unexplained == []

    def test_resume_of_finished_journal_is_a_no_op(self, tree):
        journal = RolloutJournal()
        agents, channels = fresh_fleet(tree)
        report = coordinator_for(channels, journal=journal).run()
        resumed = coordinator_for(channels).resume(journal)
        assert resumed.to_json() == report.to_json()
        for name, agent in agents.items():
            assert agent.configs_applied == 1


class TestValidation:
    def test_seed_mismatch_rejected(self, tree):
        journal = RolloutJournal()
        _, channels = fresh_fleet(tree)
        with pytest.raises(CoordinatorCrash):
            coordinator_for(channels, journal=journal, crash_after=3).run()
        with pytest.raises(JournalError):
            coordinator_for(channels, seed=43).resume(journal)

    def test_config_drift_rejected(self, tree):
        journal = RolloutJournal()
        _, channels = fresh_fleet(tree)
        with pytest.raises(CoordinatorCrash):
            coordinator_for(channels, journal=journal, crash_after=3).run()
        with pytest.raises(JournalError):
            coordinator_for(
                channels, configs={n: CONF_NEW + "# v2\n" for n in NAMES}
            ).resume(journal)

    def test_policy_mismatch_rejected(self, tree):
        journal = RolloutJournal()
        _, channels = fresh_fleet(tree)
        with pytest.raises(CoordinatorCrash):
            coordinator_for(channels, journal=journal, crash_after=3).run()
        with pytest.raises(JournalError):
            coordinator_for(
                channels, policy=RetryPolicy(max_attempts=9)
            ).resume(journal)


class TestJournalProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        chunk_size=st.integers(min_value=5, max_value=256),
        jobs=st.integers(min_value=1, max_value=4),
    )
    def test_round_trip_for_arbitrary_campaigns(self, tree, seed, chunk_size, jobs):
        journal = RolloutJournal()
        _, channels = fresh_fleet(tree)
        report = coordinator_for(
            channels,
            journal=journal,
            seed=seed,
            chunk_size=chunk_size,
            jobs=jobs,
        ).run()
        state = journal.replay()
        assert state.finished
        assert state.report().to_json() == report.to_json()
